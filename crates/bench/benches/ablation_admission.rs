//! Bench: ablation A3 — admission control (size threshold, second-hit
//! filter) in front of LRU.

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{dfn_trace, experiments};
use webcache_core::{AdmissionRule, PolicyKind};
use webcache_sim::{SimulationConfig, Simulator};
use webcache_trace::ByteSize;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = dfn_trace(scale, 1);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    let mut g = c.benchmark_group("ablation_admission");
    g.sample_size(10);
    for (name, rule) in [
        ("all", AdmissionRule::All),
        ("thold_64k", AdmissionRule::MaxSize(ByteSize::from_kib(64))),
        ("second_hit", AdmissionRule::SecondHit(1 << 16)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                Simulator::new(
                    PolicyKind::Lru.build(),
                    SimulationConfig::builder()
                        .capacity(capacity)
                        .admission_rule(rule)
                        .build(),
                )
                .run(&trace)
            })
        });
    }
    g.finish();
    println!("{}", experiments::ablation_admission(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
