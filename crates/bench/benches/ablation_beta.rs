//! Bench: ablation A1 — GD\* fixed-β vs online-adaptive β (the design
//! choice DESIGN.md calls out for the GD\* implementation).

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{dfn_trace, experiments};
use webcache_core::policy::{BetaMode, GdStar};
use webcache_core::CostModel;
use webcache_sim::{SimulationConfig, Simulator};
use webcache_trace::ByteSize;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = dfn_trace(scale, 1);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    let mut g = c.benchmark_group("ablation_beta");
    g.sample_size(10);
    g.bench_function("fixed_beta", |b| {
        b.iter(|| {
            Simulator::new(
                Box::new(GdStar::with_fixed_beta(CostModel::Constant, 1.0)),
                SimulationConfig::builder().capacity(capacity).build(),
            )
            .run(&trace)
        })
    });
    g.bench_function("adaptive_beta", |b| {
        b.iter(|| {
            Simulator::new(
                Box::new(GdStar::new(CostModel::Constant, BetaMode::default())),
                SimulationConfig::builder().capacity(capacity).build(),
            )
            .run(&trace)
        })
    });
    g.finish();
    println!("{}", experiments::ablation_beta(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
