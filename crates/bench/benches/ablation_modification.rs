//! Bench: ablation A2 — the paper's 5%-delta modification rule vs the
//! any-size-change rule of Jin & Bestavros [7, 8].

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{dfn_trace, experiments};
use webcache_core::PolicyKind;
use webcache_sim::{ModificationRule, SimulationConfig, Simulator};
use webcache_trace::ByteSize;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = dfn_trace(scale, 1);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    let mut g = c.benchmark_group("ablation_modification");
    g.sample_size(10);
    for rule in [ModificationRule::SizeDelta, ModificationRule::AnyChange] {
        g.bench_function(format!("{rule:?}"), |b| {
            b.iter(|| {
                Simulator::new(
                    PolicyKind::Lru.build(),
                    SimulationConfig::builder()
                        .capacity(capacity)
                        .modification_rule(rule)
                        .build(),
                )
                .run(&trace)
            })
        });
    }
    g.finish();
    println!("{}", experiments::ablation_modification(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
