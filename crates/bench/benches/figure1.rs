//! Bench: regenerate Figure 1 (adaptability of GD\* — cache occupancy by
//! document type under GD\*(1) and GD\*(P), DFN trace).

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{dfn_trace, experiments};
use webcache_core::CostModel;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = dfn_trace(scale, 1);
    let capacity = experiments::figure1_capacity(scale);
    let mut g = c.benchmark_group("figure1");
    g.sample_size(10);
    for cost in [CostModel::Constant, CostModel::Packet] {
        g.bench_function(format!("gdstar_{cost}"), |b| {
            b.iter(|| experiments::figure1_run(&trace, cost, capacity))
        });
    }
    g.finish();
    println!("{}", experiments::figure1(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
