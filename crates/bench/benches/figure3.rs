//! Bench: regenerate Figure 3 (DFN trace, packet cost model — per-type
//! hit rate and byte hit rate for LRU, LFU-DA, GDS(P), GD\*(P)).

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{dfn_trace, experiments};
use webcache_core::PolicyKind;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = dfn_trace(scale, 1);
    let mut g = c.benchmark_group("figure3");
    g.sample_size(10);
    g.bench_function("packet_cost_sweep", |b| {
        b.iter(|| experiments::sweep(&trace, PolicyKind::PAPER_PACKET.to_vec()))
    });
    g.finish();
    println!("{}", experiments::figure3(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
