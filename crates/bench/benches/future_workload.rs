//! Bench: extension E1 — policy performance as the workload shifts
//! towards the paper's conjectured rich-media future.

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::experiments;
use webcache_core::{CostModel, PolicyKind};
use webcache_sim::{SimulationConfig, Simulator};
use webcache_trace::ByteSize;
use webcache_workload::WorkloadProfile;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = WorkloadProfile::future().scaled(scale).build_trace(1);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    let mut g = c.benchmark_group("future_workload");
    g.sample_size(10);
    for kind in [PolicyKind::Lru, PolicyKind::GdStar(CostModel::Packet)] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                Simulator::new(
                    kind.build(),
                    SimulationConfig::builder().capacity(capacity).build(),
                )
                .run(&trace)
            })
        });
    }
    g.finish();
    println!("{}", experiments::future_workload(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
