//! Bench: extension E2 — the Breslau et al. log-like growth law of hit
//! rates in cache size, fitted over the Figure 2 sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{dfn_trace, experiments};
use webcache_core::PolicyKind;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = dfn_trace(scale, 1);
    let mut g = c.benchmark_group("loglike_growth");
    g.sample_size(10);
    g.bench_function("sweep_and_fit", |b| {
        b.iter(|| experiments::sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec()))
    });
    g.finish();
    println!("{}", experiments::loglike_growth(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
