//! Bench: extension E4 — clairvoyant (Belady-style) upper bound and the
//! fraction of it each online scheme achieves.

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{dfn_trace, experiments};
use webcache_sim::{clairvoyant_overall, SimulationConfig};
use webcache_trace::ByteSize;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = dfn_trace(scale, 1);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    let mut g = c.benchmark_group("oracle_efficiency");
    g.sample_size(10);
    g.bench_function("clairvoyant", |b| {
        b.iter(|| {
            clairvoyant_overall(
                &trace,
                &SimulationConfig::builder().capacity(capacity).build(),
            )
        })
    });
    g.finish();
    println!("{}", experiments::oracle_efficiency(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
