//! Bench: extension E3 — GD\* with per-type online β vs the single
//! global β of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{dfn_trace, experiments};
use webcache_core::policy::{BetaMode, GdStar};
use webcache_core::CostModel;
use webcache_sim::{SimulationConfig, Simulator};
use webcache_trace::ByteSize;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = dfn_trace(scale, 1);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    let mut g = c.benchmark_group("per_type_beta");
    g.sample_size(10);
    g.bench_function("global_beta", |b| {
        b.iter(|| {
            Simulator::new(
                Box::new(GdStar::new(CostModel::Constant, BetaMode::default())),
                SimulationConfig::builder().capacity(capacity).build(),
            )
            .run(&trace)
        })
    });
    g.bench_function("per_type_beta", |b| {
        b.iter(|| {
            Simulator::new(
                Box::new(GdStar::with_per_type_beta(CostModel::Constant)),
                SimulationConfig::builder().capacity(capacity).build(),
            )
            .run(&trace)
        })
    });
    g.finish();
    println!("{}", experiments::per_type_beta(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
