//! Bench: simulator throughput per replacement policy (requests per
//! second of simulated trace), hashed vs dense replay, plus raw
//! priority-queue operations over both position-index variants.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use webcache_bench::dfn_trace;
use webcache_core::pqueue::{DenseIndexedHeap, IndexedHeap};
use webcache_core::PolicyKind;
use webcache_sim::{SimulationConfig, Simulator};
use webcache_trace::{ByteSize, DenseTrace};

fn policies(c: &mut Criterion) {
    let trace = dfn_trace(1.0 / 256.0, 1);
    let dense = DenseTrace::build(&trace);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    let mut g = c.benchmark_group("policy_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for kind in PolicyKind::ALL {
        g.bench_function(format!("dense/{}", kind.label()), |b| {
            b.iter(|| {
                Simulator::new(
                    kind.build(),
                    SimulationConfig::builder().capacity(capacity).build(),
                )
                .run_dense(&dense)
            })
        });
        g.bench_function(format!("hashed/{}", kind.label()), |b| {
            b.iter(|| {
                Simulator::new(
                    kind.build(),
                    SimulationConfig::builder().capacity(capacity).build(),
                )
                .run_hashed(&trace)
            })
        });
    }
    g.finish();
}

fn pqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("indexed_heap");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("hash_positions/insert_update_pop_10k", |b| {
        b.iter(|| {
            let mut h: IndexedHeap<u64, (u64, u64)> = IndexedHeap::new();
            for i in 0..10_000u64 {
                h.insert(i, ((i * 2_654_435_761) % 65_536, i));
            }
            for i in 0..10_000u64 {
                h.update(i, ((i * 40_503) % 65_536, i));
            }
            while h.pop_min().is_some() {}
            h
        })
    });
    g.bench_function("dense_positions/insert_update_pop_10k", |b| {
        b.iter(|| {
            let mut h: DenseIndexedHeap<u64, (u64, u64)> = DenseIndexedHeap::new();
            h.reserve(10_000);
            for i in 0..10_000u64 {
                h.insert(i, ((i * 2_654_435_761) % 65_536, i));
            }
            for i in 0..10_000u64 {
                h.update(i, ((i * 40_503) % 65_536, i));
            }
            while h.pop_min().is_some() {}
            h
        })
    });
    g.finish();
}

criterion_group!(benches, policies, pqueue);
criterion_main!(benches);
