//! Bench: regenerate the Section 4.4 results (RTP trace, both cost
//! models).

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::{experiments, rtp_trace};
use webcache_core::PolicyKind;

fn bench(c: &mut Criterion) {
    let scale = 1.0 / 256.0;
    let trace = rtp_trace(scale, 1);
    let mut g = c.benchmark_group("rtp_summary");
    g.sample_size(10);
    g.bench_function("constant_cost_sweep", |b| {
        b.iter(|| experiments::sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec()))
    });
    g.bench_function("packet_cost_sweep", |b| {
        b.iter(|| experiments::sweep(&trace, PolicyKind::PAPER_PACKET.to_vec()))
    });
    g.finish();
    println!("{}", experiments::rtp_summary(scale, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
