//! Bench: regenerate Table 1 (trace properties, DFN + RTP).

use criterion::{criterion_group, criterion_main, Criterion};
use webcache_bench::experiments;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("characterize_dfn_rtp", |b| {
        b.iter(|| experiments::table1(1.0 / 256.0, 1))
    });
    g.finish();
    // Emit the artifact once so `cargo bench` output doubles as a report.
    println!("{}", experiments::table1(1.0 / 256.0, 1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
