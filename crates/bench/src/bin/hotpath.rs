//! Hot-path throughput harness: hashed vs dense replay, per policy.
//!
//! Replays the scaled DFN workload through both simulator paths and
//! reports requests per second, writing the results to a JSON file
//! (`BENCH_hotpath.json` by default) so regressions are visible in
//! review diffs. A third column replays the dense path with a
//! [`WindowedMetrics`] observer attached, putting a number on what the
//! observability layer costs when it is actually used (the no-op
//! observer is the `dense` column itself: `run_dense` monomorphizes
//! over [`NoopObserver`](webcache_sim::NoopObserver)).
//!
//! A fourth column (`instr-off`) replays the dense path through
//! [`PolicyKind::build_instrumented`] with the unit sink `()` — the
//! generic-instrumentation construction path with instrumentation
//! compiled away. It must sit within noise of `dense`; that is the
//! zero-cost claim of the observability layer, checkable in the output.
//!
//! ```text
//! hotpath [--scale DENOM] [--seed SEED] [--iters N] [--out PATH] [--quick]
//!         [--check-regress] [--tolerance FRAC]
//!
//! --scale DENOM     run at 1/DENOM of the full trace size (default 256)
//! --seed SEED       generator seed (default 20020623)
//! --iters N         timed repetitions per cell; the best is kept (default 5)
//! --out PATH        output JSON path (default BENCH_hotpath.json)
//! --quick           CI smoke mode: tiny trace (1/4096), 1 iteration, and no
//!                   JSON written unless --out is given explicitly
//! --check-regress   before writing, compare dense req/s per policy against
//!                   the committed JSON at the output path; exit non-zero
//!                   (and leave the file untouched) if any policy regressed
//!                   by more than the tolerance
//! --tolerance FRAC  allowed relative dense-path regression for
//!                   --check-regress (default 0.05)
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use webcache_bench::{dfn_trace, SEED_DEFAULT};
use webcache_core::PolicyKind;
use webcache_sim::{SimulationConfig, Simulator, WindowedMetrics};
use webcache_trace::{ByteSize, DenseTrace, Trace};

/// Seed-commit GD*(P) throughput (requests/s) on this harness's default
/// workload, recorded before the hash-free hot path landed. The issue's
/// acceptance bar is 2x this number on the dense path.
const SEED_BASELINE_GDSTAR_PACKET_RPS: u64 = 1_968_196;

struct Cell {
    label: String,
    hashed_rps: f64,
    dense_rps: f64,
    instr_off_rps: f64,
    windowed_rps: f64,
}

fn main() -> ExitCode {
    let mut scale: Option<f64> = None;
    let mut seed = SEED_DEFAULT;
    let mut iters: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut check_regress = false;
    let mut tolerance = 0.05;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(denom) if denom >= 1.0 => scale = Some(1.0 / denom),
                _ => return usage("--scale expects a denominator >= 1"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--iters" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => iters = Some(n),
                _ => return usage("--iters expects a positive integer"),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage("--out expects a path"),
            },
            "--quick" => quick = true,
            "--check-regress" => check_regress = true,
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => return usage("--tolerance expects a fraction in [0, 1)"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let scale = scale.unwrap_or(if quick { 1.0 / 4096.0 } else { 1.0 / 256.0 });
    let iters = iters.unwrap_or(if quick { 1 } else { 5 });
    // Quick mode is a smoke test: never overwrite the recorded baseline
    // unless a path is asked for explicitly.
    let out = match (out, quick) {
        (Some(path), _) => Some(path),
        (None, true) => None,
        (None, false) => Some(String::from("BENCH_hotpath.json")),
    };

    let trace = dfn_trace(scale, seed);
    let dense = DenseTrace::build(&trace);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    eprintln!(
        "# {} requests, {} distinct documents, capacity {} bytes, best of {iters}",
        trace.len(),
        dense.distinct_documents(),
        capacity.as_u64()
    );

    let mut cells = Vec::new();
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>15} {:>9}",
        "policy", "hashed req/s", "dense req/s", "instr-off req/s", "windowed req/s", "speedup"
    );
    for kind in PolicyKind::ALL {
        let cell = measure(kind, &trace, &dense, capacity, iters);
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>16.0} {:>15.0} {:>8.2}x",
            cell.label,
            cell.hashed_rps,
            cell.dense_rps,
            cell.instr_off_rps,
            cell.windowed_rps,
            cell.dense_rps / cell.hashed_rps
        );
        cells.push(cell);
    }

    if check_regress {
        let baseline_path = out.as_deref().unwrap_or("BENCH_hotpath.json");
        match check_against_baseline(&cells, baseline_path, tolerance) {
            Ok(()) => eprintln!(
                "# no dense-path regression beyond {:.0}% vs {baseline_path}",
                tolerance * 100.0
            ),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    match out {
        Some(out) => {
            let json = render_json(&cells, &trace, scale, seed, iters);
            if let Err(e) = std::fs::write(&out, json) {
                eprintln!("error: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("# wrote {out}");
        }
        None => eprintln!("# quick mode: no JSON written"),
    }
    ExitCode::SUCCESS
}

fn measure(
    kind: PolicyKind,
    trace: &Trace,
    dense: &DenseTrace,
    capacity: ByteSize,
    iters: usize,
) -> Cell {
    let requests = trace.len() as f64;
    let config = SimulationConfig::builder().capacity(capacity).build();
    // Fifty windows over the measured region, like a plotting client.
    let window = ((trace.len() as u64) / 50).max(1);
    let mut best_hashed = f64::INFINITY;
    let mut best_dense = f64::INFINITY;
    let mut best_instr_off = f64::INFINITY;
    let mut best_windowed = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(Simulator::new(kind.build(), config).run_hashed(trace));
        best_hashed = best_hashed.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        std::hint::black_box(Simulator::new(kind.build(), config).run_dense(dense));
        best_dense = best_dense.min(start.elapsed().as_secs_f64());

        // The unit-sink instrumented build: same dense replay through the
        // explicit generic construction path. Within noise of `dense` or
        // the instrumentation is not free.
        let start = Instant::now();
        std::hint::black_box(Simulator::new(kind.build_instrumented(()), config).run_dense(dense));
        best_instr_off = best_instr_off.min(start.elapsed().as_secs_f64());

        let mut metrics = WindowedMetrics::per_requests(window);
        let start = Instant::now();
        std::hint::black_box(
            Simulator::new(kind.build(), config).run_dense_observed(dense, &mut metrics),
        );
        best_windowed = best_windowed.min(start.elapsed().as_secs_f64());
        std::hint::black_box(&metrics);
    }
    Cell {
        label: kind.label(),
        hashed_rps: requests / best_hashed,
        dense_rps: requests / best_dense,
        instr_off_rps: requests / best_instr_off,
        windowed_rps: requests / best_windowed,
    }
}

/// Compares the freshly measured dense-path throughput against the
/// committed JSON at `path`, failing on any policy slower by more than
/// `tolerance` (relative).
fn check_against_baseline(cells: &[Cell], path: &str, tolerance: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("--check-regress: cannot read baseline {path}: {e}"))?;
    let value = webcache_obs::json::parse(&text)
        .map_err(|e| format!("--check-regress: {path} is not valid JSON: {e}"))?;
    let policies = value
        .get("policies")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("--check-regress: {path} has no `policies` array"))?;
    let mut failures = Vec::new();
    for cell in cells {
        let baseline = policies.iter().find_map(|p| {
            (p.get("policy")?.as_str()? == cell.label).then(|| p.get("dense_rps")?.as_f64())?
        });
        let Some(baseline) = baseline else {
            eprintln!("# check-regress: no baseline for {} (skipped)", cell.label);
            continue;
        };
        let floor = baseline * (1.0 - tolerance);
        let ratio = cell.dense_rps / baseline;
        if cell.dense_rps < floor {
            failures.push(format!(
                "{}: dense {:.0} req/s is {:.1}% of baseline {:.0}",
                cell.label,
                cell.dense_rps,
                ratio * 100.0,
                baseline
            ));
        } else {
            eprintln!(
                "# check-regress: {:<10} {:.1}% of baseline",
                cell.label,
                ratio * 100.0
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "dense path regressed beyond {:.0}% on: {}",
            tolerance * 100.0,
            failures.join("; ")
        ))
    }
}

fn render_json(cells: &[Cell], trace: &Trace, scale: f64, seed: u64, iters: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"workload\": \"dfn\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"requests\": {},", trace.len());
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(
        s,
        "  \"seed_baseline_rps_gdstar_packet\": {SEED_BASELINE_GDSTAR_PACKET_RPS},"
    );
    s.push_str("  \"policies\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"policy\": \"{}\", \"hashed_rps\": {:.0}, \"dense_rps\": {:.0}, \
             \"instr_off_rps\": {:.0}, \"windowed_rps\": {:.0}, \"speedup\": {:.3}}}{}",
            cell.label,
            cell.hashed_rps,
            cell.dense_rps,
            cell.instr_off_rps,
            cell.windowed_rps,
            cell.dense_rps / cell.hashed_rps,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "hotpath [--scale DENOM] [--seed SEED] [--iters N] [--out PATH] [--quick]\n\
         \x20       [--check-regress] [--tolerance FRAC]\n\
         \n\
         Times every replacement policy over the scaled DFN workload through\n\
         the hashed and the dense simulator paths (plus the unit-sink\n\
         instrumented build and the dense path with a windowed-metrics\n\
         observer attached) and writes the requests/s comparison to a JSON\n\
         file (default BENCH_hotpath.json). --quick runs a tiny smoke\n\
         configuration and skips the JSON unless --out is given.\n\
         --check-regress compares the dense column against the committed\n\
         JSON first and fails beyond --tolerance (default 0.05)."
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
