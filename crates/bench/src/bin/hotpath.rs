//! Hot-path throughput harness: hashed vs dense vs batched replay, per
//! policy, with a noise-immune paired regression gate.
//!
//! Replays the scaled DFN workload through the simulator paths and
//! reports requests per second, writing the results to a JSON file
//! (`BENCH_hotpath.json` by default) so regressions are visible in
//! review diffs. Columns:
//!
//! * `hashed`   — the sparse, hash-per-request replay.
//! * `dense`    — the request-at-a-time dense replay (`run_dense`; its
//!   no-op observer IS the `dense` column).
//! * `batched`  — the batched dense replay (`run_dense_batched`):
//!   deferred heap maintenance, coalesced touches, alloc-free insert.
//! * `instr-off` — dense replay through
//!   [`PolicyKind::build_instrumented`] with the unit sink `()`: the
//!   generic-instrumentation construction path with instrumentation
//!   compiled away. Must sit within noise of `dense` — that is the
//!   zero-cost claim of the observability layer.
//! * `windowed` — dense replay with a [`WindowedMetrics`] observer
//!   attached, putting a number on what observability costs when used.
//! * `recorder` — dense replay through the [`FlightSink`]-instrumented
//!   build with a [`FlightObserver`] attached (ring of 4096 decision
//!   records, reason channel drained per event): what the flight
//!   recorder costs when switched ON. The paired `recorder_overhead`
//!   column (median of `t_recorder / t_serial`) is the honest price;
//!   the recorder-OFF price is the `instr-off` column, which the
//!   `--check-regress` gate holds to the `dense` baseline.
//! * `latency-obs` — dense replay with a [`LatencyObserver`] attached
//!   (two-link latency model driven per request, log2-bucket windowed
//!   histograms): the serve daemon's tail-latency instrumentation
//!   switched ON. The paired `latency_obs_overhead` column (median of
//!   `t_latency / t_serial`) prices it; observer-OFF stays the `dense`
//!   column, which the gate holds to baseline.
//! * `conc1/2/4/8` — the concurrent sharded replay
//!   ([`ConcurrentSimulator`], 8 shards) driven by 1/2/4/8 client
//!   threads, aggregate req/s. The paired `conc8_speedup` column
//!   (median of `t_batched / t_conc8`) is the multi-thread scaling
//!   number; it is bounded by the host's core count, which is recorded
//!   in the JSON (`cores`) — a single-core container cannot show the
//!   8-core 4x bar, so the gate scales its expectation (see
//!   `conc8_bar`).
//!
//! # Paired measurement
//!
//! Every iteration interleaves, back to back in-process: a fixed
//! xorshift *anchor* spin (pure integer work, identical every run), the
//! serial dense replay, and the batched replay. From each iteration we
//! take ratios, not absolute times:
//!
//! * `batched_speedup` — median over iterations of
//!   `t_serial / t_batched` (paired: both legs saw the same machine
//!   conditions, so CPU-frequency drift and co-tenant load cancel).
//! * `dense_norm` / `batched_norm` — median of `t_anchor / t_replay`,
//!   i.e. throughput in units of "anchor spins per replay". The anchor
//!   runs in the same iteration, so a slow container slows numerator
//!   and denominator together.
//!
//! An earlier version of `--check-regress` compared absolute dense
//! req/s against the committed JSON. That was abandoned: on a loaded
//! container the same binary on the same tree varied by well over the
//! tolerance between runs, so the gate failed on an *unmodified* seed
//! tree — a gate that cries wolf is worse than no gate. The check now
//! compares the anchor-normalized medians (`dense_norm`,
//! `batched_norm`), which are stable under machine-wide slowdowns;
//! baselines that predate the paired columns are skipped with a notice
//! rather than failed.
//!
//! ```text
//! hotpath [--scale DENOM] [--seed SEED] [--iters N] [--out PATH] [--quick]
//!         [--check-regress] [--tolerance FRAC]
//!
//! --scale DENOM     run at 1/DENOM of the full trace size (default 256)
//! --seed SEED       generator seed (default 20020623)
//! --iters N         timed repetitions per cell; rps columns keep the best,
//!                   paired columns the median (default 9)
//! --out PATH        output JSON path (default BENCH_hotpath.json)
//! --quick           CI mode: same trace, 5 iterations instead of 9, and no
//!                   JSON written unless --out is given explicitly
//! --check-regress   before writing, compare the paired normalized columns
//!                   against the committed JSON at the output path; exit
//!                   non-zero (and leave the file untouched) if the
//!                   geometric mean over all policies regressed beyond the
//!                   tolerance, or any single cell beyond 4x the tolerance;
//!                   also enforce the absolute speedup floors: batched >=
//!                   0.97x serial (0.90x for the parity-ceiling GreedyDual
//!                   cells, exempt by name) and GD*(P) conc8 >= the
//!                   core-scaled concurrency bar
//! --tolerance FRAC  allowed relative regression of the paired-ratio
//!                   geometric mean for --check-regress (default 0.05);
//!                   individual cells get 4x this slack
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use webcache_bench::{dfn_trace, SEED_DEFAULT};
use webcache_core::PolicyKind;
use webcache_obs::{FlightSink, ReasonChannel, SharedRecorder};
use webcache_sim::latency_obs::DEFAULT_LATENCY_WINDOWS;
use webcache_sim::{
    ConcurrentSimulator, FlightObserver, LatencyModel, LatencyObserver, NoopObserver, ShardedTrace,
    SimulationConfig, Simulator, WindowedMetrics, DEFAULT_BATCH_SIZE,
};
use webcache_trace::{ByteSize, DenseTrace, Trace};

/// Seed-commit GD*(P) throughput (requests/s) on this harness's default
/// workload, recorded before the hash-free hot path landed. The issue's
/// acceptance bar was 2x this number on the dense path.
const SEED_BASELINE_GDSTAR_PACKET_RPS: u64 = 1_968_196;

/// GD*(P) dense req/s recorded by this harness just before the batched
/// replay engine landed. The batched column's acceptance bar is 1.5x
/// this number.
const PREV_BASELINE_GDSTAR_PACKET_DENSE_RPS: u64 = 5_641_442;

/// Anchor spin steps per trace request: enough integer work that the
/// anchor is measured over milliseconds, small enough to keep the
/// harness fast.
const ANCHOR_STEPS_PER_REQUEST: u64 = 16;

/// Shard count of the concurrent columns (the issue's acceptance
/// configuration: 8 clients over 8 shards).
const CONC_SHARDS: usize = 8;

/// Flight-recorder ring capacity of the `recorder` column — the serve
/// daemon's default (`--flight-capacity`).
const RECORDER_CAPACITY: usize = 4096;

/// Client-thread counts of the concurrent columns.
const CONC_CLIENTS: [usize; 4] = [1, 2, 4, 8];

/// Policies whose batched replay measures at **parity** with the serial
/// dense loop on this workload, not above it — the documented ceiling
/// for the heap-backed GreedyDual family. Deferred heap maintenance
/// converts eager sifts into pending-buffer bookkeeping plus the same
/// sifts at flush; unlike the list-based policies (LRU, SLRU, FIFO),
/// nothing is actually saved, so `batched_speedup` oscillates around
/// 1.0 with the run-to-run noise (measured 0.95–1.04 across repeated
/// runs, with or without load). ARC and S3-FIFO join the list for the
/// complementary reason: their `set_batched` is a no-op (ghost-list /
/// FIFO-queue bookkeeping runs identically per request in both modes),
/// so their paired column is parity by construction. The explicit gate
/// below holds these cells to [`PARITY_FLOOR`] instead of
/// [`SPEEDUP_FLOOR`] — an exemption by name, not per-cell slack.
const PARITY_CEILING: [&str; 8] = [
    "GDS(1)", "GDS(P)", "GDSF(1)", "GDSF(P)", "GD*(1)", "GD*(P)", "ARC", "S3-FIFO",
];

/// Minimum paired `batched_speedup` for policies where batching is a
/// real win (list-based bookkeeping skipped wholesale): a strict > 1
/// expectation with a 3% noise margin.
const SPEEDUP_FLOOR: f64 = 0.97;

/// Minimum paired `batched_speedup` for the [`PARITY_CEILING`]
/// policies: parity within a 10% noise margin. Falling below this means
/// batching actively *hurts* a heap policy — a real regression, not
/// ceiling noise.
const PARITY_FLOOR: f64 = 0.90;

struct Cell {
    label: String,
    hashed_rps: f64,
    dense_rps: f64,
    batched_rps: f64,
    instr_off_rps: f64,
    windowed_rps: f64,
    /// Dense replay with the flight recorder ON (instrumented sink +
    /// observer + ring).
    recorder_rps: f64,
    /// Median over iterations of paired `t_recorder / t_serial`: the
    /// relative cost of switching the flight recorder on.
    recorder_overhead: f64,
    /// Median over iterations of `t_anchor / t_recorder`.
    recorder_norm: f64,
    /// Dense replay with the latency observer ON (two-link model +
    /// windowed percentile histograms per document type).
    latency_obs_rps: f64,
    /// Median over iterations of paired `t_latency / t_serial`: the
    /// relative cost of switching the latency observer on.
    latency_obs_overhead: f64,
    /// Median over iterations of paired `t_serial / t_batched`.
    batched_speedup: f64,
    /// Median over iterations of `t_anchor / t_serial`.
    dense_norm: f64,
    /// Median over iterations of `t_anchor / t_batched`.
    batched_norm: f64,
    /// Concurrent sharded replay req/s, one per [`CONC_CLIENTS`] entry,
    /// at [`CONC_SHARDS`] shards.
    conc_rps: [f64; CONC_CLIENTS.len()],
    /// Median over iterations of paired `t_batched / t_conc8`: aggregate
    /// speedup of the 8-client sharded replay over the single-thread
    /// batched loop. Bounded by available hardware parallelism.
    conc8_speedup: f64,
    /// Median over iterations of `t_anchor / t_conc8`.
    conc8_norm: f64,
}

fn main() -> ExitCode {
    let mut scale: Option<f64> = None;
    let mut seed = SEED_DEFAULT;
    let mut iters: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut check_regress = false;
    let mut tolerance = 0.05;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(denom) if denom >= 1.0 => scale = Some(1.0 / denom),
                _ => return usage("--scale expects a denominator >= 1"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--iters" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => iters = Some(n),
                _ => return usage("--iters expects a positive integer"),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage("--out expects a path"),
            },
            "--quick" => quick = true,
            "--check-regress" => check_regress = true,
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => return usage("--tolerance expects a fraction in [0, 1)"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    // Quick mode keeps the full trace scale: the paired normalized
    // columns depend on the workload (hit ratio, eviction mix), so a
    // smaller quick trace could not be compared against the committed
    // full-scale baseline. Quickness comes from fewer iterations.
    let scale = scale.unwrap_or(1.0 / 256.0);
    // Paired columns are medians; odd sample counts give a clean one.
    // A full replay is ~3ms, so samples are cheap even in quick mode.
    let iters = iters.unwrap_or(if quick { 5 } else { 9 });
    // Quick mode is a smoke test: never overwrite the recorded baseline
    // unless a path is asked for explicitly.
    let out = match (out, quick) {
        (Some(path), _) => Some(path),
        (None, true) => None,
        (None, false) => Some(String::from("BENCH_hotpath.json")),
    };

    let trace = dfn_trace(scale, seed);
    let dense = DenseTrace::build(&trace);
    // The shard split is a fixed function of (trace, shard count) —
    // built once, outside every timed region, exactly as a server
    // resolves routing at startup.
    let sharded = ShardedTrace::build(&dense, CONC_SHARDS).expect("power-of-two shard count");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05) as u64);
    eprintln!(
        "# {} requests, {} distinct documents, capacity {} bytes, best of {iters}, \
         batch {DEFAULT_BATCH_SIZE}, {cores} core(s), {CONC_SHARDS} shards",
        trace.len(),
        dense.distinct_documents(),
        capacity.as_u64()
    );

    let mut cells = Vec::new();
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>16} {:>15} {:>15} {:>14} {:>9} {:>9} {:>9}",
        "policy",
        "hashed req/s",
        "dense req/s",
        "batched req/s",
        "instr-off req/s",
        "windowed req/s",
        "recorder req/s",
        "lat-obs req/s",
        "paired",
        "rec-cost",
        "lat-cost"
    );
    for kind in PolicyKind::ALL {
        let cell = measure(kind, &trace, &dense, &sharded, capacity, iters);
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>14.0} {:>16.0} {:>15.0} {:>15.0} {:>14.0} {:>8.2}x {:>8.2}x {:>8.2}x",
            cell.label,
            cell.hashed_rps,
            cell.dense_rps,
            cell.batched_rps,
            cell.instr_off_rps,
            cell.windowed_rps,
            cell.recorder_rps,
            cell.latency_obs_rps,
            cell.batched_speedup,
            cell.recorder_overhead,
            cell.latency_obs_overhead
        );
        cells.push(cell);
    }

    println!(
        "\n{:<10} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "policy", "conc1 req/s", "conc2 req/s", "conc4 req/s", "conc8 req/s", "conc8-paired"
    );
    for cell in &cells {
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>11.2}x",
            cell.label,
            cell.conc_rps[0],
            cell.conc_rps[1],
            cell.conc_rps[2],
            cell.conc_rps[3],
            cell.conc8_speedup
        );
    }

    if let Some(gdsp) = cells.iter().find(|c| c.label == "GD*(P)") {
        eprintln!(
            "# GD*(P): batched {:.0} req/s = {:.2}x the pre-batching dense baseline \
             ({PREV_BASELINE_GDSTAR_PACKET_DENSE_RPS} req/s), {:.1}x the seed hashed \
             baseline ({SEED_BASELINE_GDSTAR_PACKET_RPS} req/s)",
            gdsp.batched_rps,
            gdsp.batched_rps / PREV_BASELINE_GDSTAR_PACKET_DENSE_RPS as f64,
            gdsp.batched_rps / SEED_BASELINE_GDSTAR_PACKET_RPS as f64,
        );
        eprintln!(
            "# GD*(P): 8-client/{CONC_SHARDS}-shard {:.0} req/s = {:.2}x single-thread \
             batched (paired); acceptance bar 4x applies on hosts with >= 8 cores, this \
             host has {cores} — scaled bar {:.2}x",
            gdsp.conc_rps[3],
            gdsp.conc8_speedup,
            conc8_bar(cores),
        );
    }

    if check_regress {
        let baseline_path = out.as_deref().unwrap_or("BENCH_hotpath.json");
        let mut verdict = check_against_baseline(&cells, baseline_path, tolerance, trace.len())
            .and_then(|()| check_speedup_bars(&cells, cores));
        if let Err(msg) = &verdict {
            // A co-tenant burst lasting longer than one cell's measurement
            // window defeats both the anchor (ALU-bound, blind to memory
            // contention) and the median. Such bursts do not reproduce;
            // real regressions do — so one full re-measurement separates
            // them.
            eprintln!("# check-regress: failed ({msg}); re-measuring once to rule out a burst");
            cells.clear();
            for kind in PolicyKind::ALL {
                cells.push(measure(kind, &trace, &dense, &sharded, capacity, iters));
            }
            verdict = check_against_baseline(&cells, baseline_path, tolerance, trace.len())
                .and_then(|()| check_speedup_bars(&cells, cores));
        }
        match verdict {
            Ok(()) => eprintln!(
                "# no paired-column regression beyond {:.0}% vs {baseline_path}",
                tolerance * 100.0
            ),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    match out {
        Some(out) => {
            let json = render_json(&cells, &trace, scale, seed, iters, cores);
            if let Err(e) = std::fs::write(&out, json) {
                eprintln!("error: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("# wrote {out}");
        }
        None => eprintln!("# quick mode: no JSON written"),
    }
    ExitCode::SUCCESS
}

/// Fixed xorshift64 spin: pure, deterministic integer work used as the
/// in-iteration time anchor. Identical on every run of the same
/// workload, so `t_anchor / t_replay` depends only on the binary, not
/// on the machine's momentary load.
fn anchor_spin(steps: u64) -> u64 {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut acc = 0u64;
    for _ in 0..steps {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    acc
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// The scaled acceptance bar for the paired `conc8_speedup` of GD*(P):
/// 4x on hosts with the 8 cores the 8-client configuration asks for,
/// half the available cores when there are fewer (perfect scaling never
/// happens; half is comfortably below the measured ~0.8x/core), and on
/// a single core — where client threads merely take turns — parity
/// minus the thread-handoff overhead.
fn conc8_bar(cores: usize) -> f64 {
    match cores.min(CONC_SHARDS) {
        1 => 0.70,
        n => (n as f64 / 2.0).max(1.0),
    }
}

/// The explicit absolute expectations on the paired speedup columns:
///
/// * `batched_speedup` ≥ [`SPEEDUP_FLOOR`] for every policy where
///   batching is a claimed win, ≥ [`PARITY_FLOOR`] for the
///   [`PARITY_CEILING`] heap-backed GreedyDual cells (see there).
/// * GD*(P) `conc8_speedup` ≥ [`conc8_bar`] for this host's core count
///   — on an 8-core host that is the issue's 4x acceptance bar.
fn check_speedup_bars(cells: &[Cell], cores: usize) -> Result<(), String> {
    let mut failures = Vec::new();
    for cell in cells {
        let exempt = PARITY_CEILING.contains(&cell.label.as_str());
        let floor = if exempt { PARITY_FLOOR } else { SPEEDUP_FLOOR };
        if cell.batched_speedup < floor {
            failures.push(format!(
                "{}: batched_speedup {:.3} below the {} floor {:.2}",
                cell.label,
                cell.batched_speedup,
                if exempt { "parity-ceiling" } else { "speedup" },
                floor
            ));
        }
    }
    let bar = conc8_bar(cores);
    if let Some(gdsp) = cells.iter().find(|c| c.label == "GD*(P)") {
        if gdsp.conc8_speedup < bar {
            failures.push(format!(
                "GD*(P): conc8_speedup {:.3} below the {cores}-core bar {bar:.2}",
                gdsp.conc8_speedup
            ));
        }
    }
    if failures.is_empty() {
        eprintln!(
            "# speedup bars: all policies at or above their floors \
             (win {SPEEDUP_FLOOR:.2}, parity ceiling {PARITY_FLOOR:.2}, conc8 {bar:.2})"
        );
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn measure(
    kind: PolicyKind,
    trace: &Trace,
    dense: &DenseTrace,
    sharded: &ShardedTrace,
    capacity: ByteSize,
    iters: usize,
) -> Cell {
    let requests = trace.len() as f64;
    let config = SimulationConfig::builder().capacity(capacity).build();
    // Fifty windows over the measured region, like a plotting client.
    let window = ((trace.len() as u64) / 50).max(1);
    let anchor_steps = (trace.len() as u64).max(1) * ANCHOR_STEPS_PER_REQUEST;
    let mut best_hashed = f64::INFINITY;
    let mut best_dense = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    let mut best_instr_off = f64::INFINITY;
    let mut best_windowed = f64::INFINITY;
    let mut best_latency_obs = f64::INFINITY;
    let mut best_recorder = f64::INFINITY;
    let mut latency_obs_overheads = Vec::with_capacity(iters);
    let mut recorder_overheads = Vec::with_capacity(iters);
    let mut recorder_norms = Vec::with_capacity(iters);
    let mut speedups = Vec::with_capacity(iters);
    let mut dense_norms = Vec::with_capacity(iters);
    let mut batched_norms = Vec::with_capacity(iters);
    let mut best_conc = [f64::INFINITY; CONC_CLIENTS.len()];
    let mut conc8_speedups = Vec::with_capacity(iters);
    let mut conc8_norms = Vec::with_capacity(iters);
    // Untimed warm-up: pages in the trace arrays, ramps the CPU out of
    // its idle frequency state and warms the branch predictors. Without
    // it the first timed iteration of the first policy is consistently
    // 10-25% slow, which a short median cannot reject.
    std::hint::black_box(anchor_spin(anchor_steps));
    std::hint::black_box(Simulator::new(kind.build(), config).run_dense(dense));
    std::hint::black_box(Simulator::new(kind.build(), config).run_dense_batched(dense));
    std::hint::black_box(ConcurrentSimulator::new(kind, config).run_sharded(
        dense,
        sharded,
        CONC_SHARDS,
    ));
    for _ in 0..iters {
        // The paired triple runs back to back so all three legs see the
        // same machine conditions: anchor, serial, batched.
        let start = Instant::now();
        std::hint::black_box(anchor_spin(anchor_steps));
        let t_anchor = start.elapsed().as_secs_f64();

        let start = Instant::now();
        std::hint::black_box(Simulator::new(kind.build(), config).run_dense(dense));
        let t_serial = start.elapsed().as_secs_f64();
        best_dense = best_dense.min(t_serial);

        let start = Instant::now();
        std::hint::black_box(Simulator::new(kind.build(), config).run_dense_batched(dense));
        let t_batched = start.elapsed().as_secs_f64();
        best_batched = best_batched.min(t_batched);

        speedups.push(t_serial / t_batched);
        dense_norms.push(t_anchor / t_serial);
        batched_norms.push(t_anchor / t_batched);

        // The concurrent legs stay inside the paired triple's iteration
        // so `t_batched / t_conc8` compares legs that saw the same
        // machine conditions.
        for (slot, &clients) in CONC_CLIENTS.iter().enumerate() {
            let start = Instant::now();
            std::hint::black_box(
                ConcurrentSimulator::new(kind, config).run_sharded(dense, sharded, clients),
            );
            let t_conc = start.elapsed().as_secs_f64();
            best_conc[slot] = best_conc[slot].min(t_conc);
            if clients == 8 {
                conc8_speedups.push(t_batched / t_conc);
                conc8_norms.push(t_anchor / t_conc);
            }
        }

        let start = Instant::now();
        std::hint::black_box(Simulator::new(kind.build(), config).run_hashed(trace));
        best_hashed = best_hashed.min(start.elapsed().as_secs_f64());

        // The unit-sink instrumented build: same dense replay through the
        // explicit generic construction path. Within noise of `dense` or
        // the instrumentation is not free.
        let start = Instant::now();
        std::hint::black_box(Simulator::new(kind.build_instrumented(()), config).run_dense(dense));
        best_instr_off = best_instr_off.min(start.elapsed().as_secs_f64());

        let mut metrics = WindowedMetrics::per_requests(window);
        let start = Instant::now();
        std::hint::black_box(
            Simulator::new(kind.build(), config).run_dense_observed(dense, &mut metrics),
        );
        best_windowed = best_windowed.min(start.elapsed().as_secs_f64());
        std::hint::black_box(&metrics);

        // Latency observer ON: the two-link model priced per request
        // into windowed log2-bucket histograms — the serve daemon's
        // tail-latency instrumentation. Paired against `t_serial` from
        // this same iteration.
        let mut latency =
            LatencyObserver::new(LatencyModel::campus_2001(), DEFAULT_LATENCY_WINDOWS);
        let start = Instant::now();
        std::hint::black_box(
            Simulator::new(kind.build(), config).run_dense_observed(dense, &mut latency),
        );
        let t_latency = start.elapsed().as_secs_f64();
        best_latency_obs = best_latency_obs.min(t_latency);
        latency_obs_overheads.push(t_latency / t_serial);
        std::hint::black_box(&latency);

        // Recorder ON: the instrumented build pushes eviction reasons
        // through the sink channel and the flight observer drains them
        // into the ring — the serve daemon's serial-mode hot path.
        let evictions = ReasonChannel::new();
        let mut flight = FlightObserver::with_reasons(
            SharedRecorder::new(RECORDER_CAPACITY),
            evictions.clone(),
            ReasonChannel::new(),
        );
        let start = Instant::now();
        std::hint::black_box(
            Simulator::new(kind.build_instrumented(FlightSink::new(evictions)), config)
                .run_dense_observed(dense, &mut flight),
        );
        let t_recorder = start.elapsed().as_secs_f64();
        best_recorder = best_recorder.min(t_recorder);
        recorder_overheads.push(t_recorder / t_serial);
        recorder_norms.push(t_anchor / t_recorder);
        std::hint::black_box(&flight);
    }
    // Keep the batched replay honest: the timed runs above are
    // black-boxed, so re-check equality here once per cell.
    debug_assert_eq!(
        Simulator::new(kind.build(), config).run_dense(dense),
        Simulator::new(kind.build(), config).run_dense_batched_sized(
            dense,
            DEFAULT_BATCH_SIZE,
            &mut NoopObserver
        )
    );
    Cell {
        label: kind.label(),
        hashed_rps: requests / best_hashed,
        dense_rps: requests / best_dense,
        batched_rps: requests / best_batched,
        instr_off_rps: requests / best_instr_off,
        windowed_rps: requests / best_windowed,
        latency_obs_rps: requests / best_latency_obs,
        latency_obs_overhead: median(&mut latency_obs_overheads),
        recorder_rps: requests / best_recorder,
        recorder_overhead: median(&mut recorder_overheads),
        recorder_norm: median(&mut recorder_norms),
        batched_speedup: median(&mut speedups),
        dense_norm: median(&mut dense_norms),
        batched_norm: median(&mut batched_norms),
        conc_rps: std::array::from_fn(|i| requests / best_conc[i]),
        conc8_speedup: median(&mut conc8_speedups),
        conc8_norm: median(&mut conc8_norms),
    }
}

/// Compares the freshly measured paired normalized columns against the
/// committed JSON at `path`, failing on any policy whose `dense_norm`
/// or `batched_norm` fell by more than `tolerance` (relative).
///
/// Baseline entries that predate the paired columns (no `dense_norm`)
/// are skipped with a notice, so the gate is a no-op until a paired
/// baseline is committed. A baseline recorded over a different request
/// count is skipped entirely: the normalized columns depend on the
/// workload, so comparing across workloads would only produce noise.
///
/// Two bounds are enforced. The *geometric mean* of all fresh/baseline
/// ratios (both norm columns, every policy) must stay within
/// `tolerance`: averaging ~26 cells shrinks per-cell timing jitter
/// about five-fold, so the tight bound is trustworthy even on a noisy
/// container, and any broad regression moves it. Each *individual*
/// cell gets a bound of `4 * tolerance` — wide enough for the
/// 10-15% per-cell jitter measured on an idle container, tight enough
/// to catch a single policy falling off a cliff.
fn check_against_baseline(
    cells: &[Cell],
    path: &str,
    tolerance: f64,
    requests: usize,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("--check-regress: cannot read baseline {path}: {e}"))?;
    let value = webcache_obs::json::parse(&text)
        .map_err(|e| format!("--check-regress: {path} is not valid JSON: {e}"))?;
    if let Some(base_requests) = value.get("requests").and_then(|v| v.as_f64()) {
        if base_requests as usize != requests {
            eprintln!(
                "# check-regress: baseline covers {} requests, this run {} — \
                 different workloads, nothing to compare (skipped)",
                base_requests as usize, requests
            );
            return Ok(());
        }
    }
    // The conc8 column scales with hardware parallelism, so it is only
    // comparable against a baseline recorded on the same core count.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let conc_comparable = value.get("cores").and_then(|v| v.as_f64()) == Some(cores as f64);
    if !conc_comparable {
        eprintln!(
            "# check-regress: baseline recorded on a different core count — \
             conc8_norm not compared"
        );
    }
    let policies = value
        .get("policies")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("--check-regress: {path} has no `policies` array"))?;
    let cell_tolerance = 4.0 * tolerance;
    let mut failures = Vec::new();
    let mut log_ratio_sum = 0.0;
    let mut ratio_count = 0usize;
    for cell in cells {
        let baseline = policies
            .iter()
            .find(|p| p.get("policy").and_then(|v| v.as_str()) == Some(&cell.label));
        let Some(baseline) = baseline else {
            eprintln!("# check-regress: no baseline for {} (skipped)", cell.label);
            continue;
        };
        let norms = baseline
            .get("dense_norm")
            .and_then(|v| v.as_f64())
            .zip(baseline.get("batched_norm").and_then(|v| v.as_f64()));
        let Some((base_dense, base_batched)) = norms else {
            eprintln!(
                "# check-regress: baseline for {} has no paired columns (skipped)",
                cell.label
            );
            continue;
        };
        let mut columns = vec![
            ("dense_norm", cell.dense_norm, base_dense),
            ("batched_norm", cell.batched_norm, base_batched),
        ];
        if conc_comparable {
            if let Some(base_conc) = baseline.get("conc8_norm").and_then(|v| v.as_f64()) {
                columns.push(("conc8_norm", cell.conc8_norm, base_conc));
            }
        }
        for (what, fresh, base) in columns {
            log_ratio_sum += (fresh / base).ln();
            ratio_count += 1;
            if fresh < base * (1.0 - cell_tolerance) {
                failures.push(format!(
                    "{}: {what} {:.3} is {:.1}% of baseline {:.3}",
                    cell.label,
                    fresh,
                    fresh / base * 100.0,
                    base
                ));
            }
        }
        eprintln!(
            "# check-regress: {:<10} dense_norm {:.1}%, batched_norm {:.1}% of baseline",
            cell.label,
            cell.dense_norm / base_dense * 100.0,
            cell.batched_norm / base_batched * 100.0
        );
    }
    if ratio_count > 0 {
        let geomean = (log_ratio_sum / ratio_count as f64).exp();
        eprintln!(
            "# check-regress: geometric mean of {ratio_count} paired ratios: {:.1}% \
             of baseline (bound {:.1}%)",
            geomean * 100.0,
            (1.0 - tolerance) * 100.0
        );
        if geomean < 1.0 - tolerance {
            failures.push(format!(
                "geometric mean of paired ratios {:.3} fell below {:.3}",
                geomean,
                1.0 - tolerance
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "paired columns regressed (geomean bound {:.0}%, per-cell bound {:.0}%): {}",
            tolerance * 100.0,
            cell_tolerance * 100.0,
            failures.join("; ")
        ))
    }
}

fn render_json(
    cells: &[Cell],
    trace: &Trace,
    scale: f64,
    seed: u64,
    iters: usize,
    cores: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"workload\": \"dfn\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"requests\": {},", trace.len());
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(s, "  \"batch_size\": {DEFAULT_BATCH_SIZE},");
    // Concurrent columns depend on hardware parallelism; the recording
    // host's core count makes the conc8 numbers interpretable.
    let _ = writeln!(s, "  \"cores\": {cores},");
    let _ = writeln!(s, "  \"conc_shards\": {CONC_SHARDS},");
    let _ = writeln!(
        s,
        "  \"seed_baseline_rps_gdstar_packet\": {SEED_BASELINE_GDSTAR_PACKET_RPS},"
    );
    let _ = writeln!(
        s,
        "  \"prev_baseline_dense_rps_gdstar_packet\": {PREV_BASELINE_GDSTAR_PACKET_DENSE_RPS},"
    );
    s.push_str("  \"policies\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"policy\": \"{}\", \"hashed_rps\": {:.0}, \"dense_rps\": {:.0}, \
             \"batched_rps\": {:.0}, \"instr_off_rps\": {:.0}, \"windowed_rps\": {:.0}, \
             \"recorder_rps\": {:.0}, \"recorder_overhead\": {:.3}, \
             \"recorder_norm\": {:.4}, \
             \"latency_obs_rps\": {:.0}, \"latency_obs_overhead\": {:.3}, \
             \"speedup\": {:.3}, \"batched_speedup\": {:.3}, \"dense_norm\": {:.4}, \
             \"batched_norm\": {:.4}, \"conc1_rps\": {:.0}, \"conc2_rps\": {:.0}, \
             \"conc4_rps\": {:.0}, \"conc8_rps\": {:.0}, \"conc8_speedup\": {:.3}, \
             \"conc8_norm\": {:.4}}}{}",
            cell.label,
            cell.hashed_rps,
            cell.dense_rps,
            cell.batched_rps,
            cell.instr_off_rps,
            cell.windowed_rps,
            cell.recorder_rps,
            cell.recorder_overhead,
            cell.recorder_norm,
            cell.latency_obs_rps,
            cell.latency_obs_overhead,
            cell.dense_rps / cell.hashed_rps,
            cell.batched_speedup,
            cell.dense_norm,
            cell.batched_norm,
            cell.conc_rps[0],
            cell.conc_rps[1],
            cell.conc_rps[2],
            cell.conc_rps[3],
            cell.conc8_speedup,
            cell.conc8_norm,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "hotpath [--scale DENOM] [--seed SEED] [--iters N] [--out PATH] [--quick]\n\
         \x20       [--check-regress] [--tolerance FRAC]\n\
         \n\
         Times every replacement policy over the scaled DFN workload through\n\
         the hashed, dense and batched simulator paths (plus the unit-sink\n\
         instrumented build, the dense path with a windowed-metrics\n\
         observer attached, and the flight-recorder-ON path: instrumented\n\
         sink + decision ring) and writes the requests/s comparison to a JSON\n\
         file (default BENCH_hotpath.json). Serial and batched replays are\n\
         interleaved with a fixed spin anchor every iteration; the paired\n\
         medians (batched_speedup, dense_norm, batched_norm) are immune to\n\
         machine-wide load swings. --quick keeps the same trace but takes\n\
         5 samples instead of 9 and skips the JSON unless --out is given.\n\
         --check-regress compares the normalized paired columns against the\n\
         committed JSON first: the geometric mean over all policies must\n\
         stay within --tolerance (default 0.05), each single cell within\n\
         4x that."
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
