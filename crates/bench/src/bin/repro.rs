//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT ...] [--scale DENOM] [--seed SEED]
//!
//! EXPERIMENT: table1 table2 table3 table4 table5
//!             figure1 figure2 figure3 rtp
//!             ablation-beta ablation-modification all   (default: all)
//! --scale DENOM   run at 1/DENOM of the full trace size (default 32)
//! --seed SEED     generator seed (default 20020623)
//! ```

use std::process::ExitCode;

use webcache_bench::{experiments, SCALE_DEFAULT, SEED_DEFAULT};

fn main() -> ExitCode {
    let mut scale = SCALE_DEFAULT;
    let mut seed = SEED_DEFAULT;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(denom) if denom >= 1.0 => scale = 1.0 / denom,
                _ => return usage("--scale expects a denominator ≥ 1"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "figure1",
            "figure2",
            "figure3",
            "rtp",
            "ablation-beta",
            "ablation-modification",
            "ablation-admission",
            "future",
            "loglike",
            "per-type-beta",
            "oracle",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    eprintln!("# scale = {scale:.6} (1/{:.0}), seed = {seed}", 1.0 / scale);
    for name in &wanted {
        let output = match name.as_str() {
            "table1" => experiments::table1(scale, seed),
            "table2" => experiments::table2(scale, seed),
            "table3" => experiments::table3(scale, seed),
            "table4" => experiments::table4(scale, seed),
            "table5" => experiments::table5(scale, seed),
            "figure1" => experiments::figure1(scale, seed),
            "figure2" => experiments::figure2(scale, seed),
            "figure3" => experiments::figure3(scale, seed),
            "rtp" => experiments::rtp_summary(scale, seed),
            "ablation-beta" => experiments::ablation_beta(scale, seed),
            "ablation-modification" => experiments::ablation_modification(scale, seed),
            "ablation-admission" => experiments::ablation_admission(scale, seed),
            "future" => experiments::future_workload(scale, seed),
            "loglike" => experiments::loglike_growth(scale, seed),
            "per-type-beta" => experiments::per_type_beta(scale, seed),
            "oracle" => experiments::oracle_efficiency(scale, seed),
            other => return usage(&format!("unknown experiment `{other}`")),
        };
        println!("{output}");
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT ...] [--scale DENOM] [--seed SEED]\n\
         experiments: table1..table5 figure1..figure3 rtp ablation-beta \
         ablation-modification future all"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
