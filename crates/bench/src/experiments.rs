//! One function per reproduced table/figure.
//!
//! Each function returns the rendered plain-text artifact; the repro
//! binary prints it and EXPERIMENTS.md archives it. See DESIGN.md § 4 for
//! the experiment index.

use webcache_core::policy::{BetaMode, GdStar};
use webcache_core::{CostModel, PolicyKind};
use webcache_sim::report::{figure, figure_panel, Metric};
use webcache_sim::{
    CacheSizeSweep, ModificationRule, SimulationConfig, SimulationReport, Simulator,
};
use webcache_stats::{Table, TraceCharacterization};
use webcache_trace::{ByteSize, DocumentType, Trace};

use crate::{dfn_trace, rtp_trace};

/// Table 1: properties of the DFN and RTP traces.
pub fn table1(scale: f64, seed: u64) -> String {
    let dfn = TraceCharacterization::measure(&dfn_trace(scale, seed));
    let rtp = TraceCharacterization::measure(&rtp_trace(scale, seed));
    let mut t = Table::new(vec!["Property".into(), "DFN".into(), "RTP".into()]).with_title(
        format!("Table 1. Properties of DFN and RTP trace (scale {scale:.5})"),
    );
    type Row = (&'static str, Box<dyn Fn(&TraceCharacterization) -> String>);
    let rows: [Row; 4] = [
        (
            "Distinct Documents",
            Box::new(|c: &TraceCharacterization| c.properties.distinct_documents.to_string()),
        ),
        (
            "Overall Size (GB)",
            Box::new(|c| format!("{:.3}", c.properties.overall_size.as_gib())),
        ),
        (
            "Total Requests",
            Box::new(|c| c.properties.total_requests.to_string()),
        ),
        (
            "Requested Data (GB)",
            Box::new(|c| format!("{:.3}", c.properties.requested_bytes.as_gib())),
        ),
    ];
    for (label, get) in rows {
        t.push_row(vec![label.to_owned(), get(&dfn), get(&rtp)]);
    }
    t.render()
}

/// Table 2: DFN workload characteristics broken down into document types.
pub fn table2(scale: f64, seed: u64) -> String {
    TraceCharacterization::measure(&dfn_trace(scale, seed))
        .breakdown_table("Table 2. DFN Trace")
        .render()
}

/// Table 3: RTP workload characteristics broken down into document types.
pub fn table3(scale: f64, seed: u64) -> String {
    TraceCharacterization::measure(&rtp_trace(scale, seed))
        .breakdown_table("Table 3. RTP Trace")
        .render()
}

/// Table 4: DFN per-type size statistics and temporal locality.
pub fn table4(scale: f64, seed: u64) -> String {
    TraceCharacterization::measure(&dfn_trace(scale, seed))
        .statistics_table("Table 4. DFN Trace")
        .render()
}

/// Table 5: RTP per-type size statistics and temporal locality.
pub fn table5(scale: f64, seed: u64) -> String {
    TraceCharacterization::measure(&rtp_trace(scale, seed))
        .statistics_table("Table 5. RTP Trace")
        .render()
}

/// The cache size of the Figure 1 experiment: 1 GB at full scale.
pub fn figure1_capacity(scale: f64) -> ByteSize {
    ByteSize::new((ByteSize::from_gib(1).as_f64() * scale).round().max(1024.0) as u64)
}

/// Runs one GD\* variant for Figure 1 and returns its report.
pub fn figure1_run(trace: &Trace, cost: CostModel, capacity: ByteSize) -> SimulationReport {
    let config = SimulationConfig::builder()
        .capacity(capacity)
        .occupancy_samples(50)
        .build();
    Simulator::new(Box::new(GdStar::new(cost, BetaMode::default())), config).run(trace)
}

/// Figure 1: adaptability of GD\* — occupancy of the web cache by the
/// different document types, GD\*(1) vs GD\*(P) on the DFN trace.
pub fn figure1(scale: f64, seed: u64) -> String {
    let trace = dfn_trace(scale, seed);
    let capacity = figure1_capacity(scale);
    let requested = trace.requested_bytes_by_type();
    let total_bytes = trace.requested_bytes().as_f64();
    let requests = trace.requests_by_type();
    let total_reqs = trace.len() as f64;

    let mut out = format!(
        "Figure 1. Occupation of web cache by the different document types\n\
         (DFN trace, cache size {capacity}, GD* adaptive beta)\n\n"
    );
    for cost in [CostModel::Constant, CostModel::Packet] {
        let report = figure1_run(&trace, cost, capacity);
        let mut t = Table::new(vec![
            "Type".into(),
            "req share %".into(),
            "byte share %".into(),
            "mean cached docs %".into(),
            "mean cached bytes %".into(),
            "byte-frac spread".into(),
        ])
        .with_title(format!("GD*({})", cost.tag()));
        for ty in DocumentType::ALL {
            t.push_row(vec![
                ty.label().to_owned(),
                format!("{:.2}", requests[ty] as f64 / total_reqs * 100.0),
                format!("{:.2}", requested[ty].as_f64() / total_bytes * 100.0),
                format!("{:.2}", report.occupancy.mean_document_fraction(ty) * 100.0),
                format!("{:.2}", report.occupancy.mean_byte_fraction(ty) * 100.0),
                format!("{:.3}", report.occupancy.byte_fraction_spread(ty)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Runs the Figure 2/3 sweep grid for the given policies.
pub fn sweep(trace: &Trace, policies: Vec<PolicyKind>) -> webcache_sim::SweepReport {
    let capacities = CacheSizeSweep::paper_capacities(trace);
    CacheSizeSweep::new(policies, capacities).run(trace)
}

/// Figure 2: DFN trace, constant cost model — hit rate and byte hit rate
/// per document type for LRU, LFU-DA, GDS(1), GD\*(1).
pub fn figure2(scale: f64, seed: u64) -> String {
    let trace = dfn_trace(scale, seed);
    let report = sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec());
    figure(
        &report,
        "Figure 2. DFN trace: breakdown of hit rates under constant cost model",
    )
}

/// Figure 3: DFN trace, packet cost model — hit rate and byte hit rate
/// per document type for LRU, LFU-DA, GDS(P), GD\*(P).
pub fn figure3(scale: f64, seed: u64) -> String {
    let trace = dfn_trace(scale, seed);
    let report = sweep(&trace, PolicyKind::PAPER_PACKET.to_vec());
    figure(
        &report,
        "Figure 3. DFN trace: breakdown of hit rates under packet cost model",
    )
}

/// Section 4.4: the RTP results under both cost models (the paper
/// summarizes these textually; we print the full panels).
pub fn rtp_summary(scale: f64, seed: u64) -> String {
    let trace = rtp_trace(scale, seed);
    let constant = sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec());
    let packet = sweep(&trace, PolicyKind::PAPER_PACKET.to_vec());
    let mut out = figure(&constant, "Section 4.4 (RTP trace): constant cost model");
    out.push_str(&figure(
        &packet,
        "Section 4.4 (RTP trace): packet cost model",
    ));
    out
}

/// Ablation A1: GD\* with fixed β values vs the online-adaptive
/// estimator, DFN trace, constant cost.
pub fn ablation_beta(scale: f64, seed: u64) -> String {
    let trace = dfn_trace(scale, seed);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05).round() as u64);
    let config = SimulationConfig::builder().capacity(capacity).build();
    let mut t = Table::new(vec![
        "beta mode".into(),
        "hit rate".into(),
        "byte hit rate".into(),
        "image HR".into(),
        "multimedia BHR".into(),
    ])
    .with_title(format!(
        "Ablation A1. GD*(1) beta sensitivity (DFN, cache {capacity})"
    ));
    let mut run = |label: String, mode: BetaMode| {
        let report =
            Simulator::new(Box::new(GdStar::new(CostModel::Constant, mode)), config).run(&trace);
        let overall = report.overall();
        t.push_row(vec![
            label,
            format!("{:.4}", overall.hit_rate()),
            format!("{:.4}", overall.byte_hit_rate()),
            format!("{:.4}", report.by_type()[DocumentType::Image].hit_rate()),
            format!(
                "{:.4}",
                report.by_type()[DocumentType::MultiMedia].byte_hit_rate()
            ),
        ]);
    };
    for beta in [0.25, 0.5, 1.0, 2.0, 4.0] {
        run(format!("fixed {beta}"), BetaMode::Fixed(beta));
    }
    run("adaptive".to_owned(), BetaMode::default());
    t.render()
}

/// Ablation A2: the paper's 5%-delta modification rule vs the
/// any-size-change rule of Jin & Bestavros [7, 8].
pub fn ablation_modification(scale: f64, seed: u64) -> String {
    let trace = dfn_trace(scale, seed);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05).round() as u64);
    let mut t = Table::new(vec![
        "rule".into(),
        "policy".into(),
        "hit rate".into(),
        "byte hit rate".into(),
        "modification misses".into(),
        "multimedia BHR".into(),
    ])
    .with_title(format!(
        "Ablation A2. Modification-detection rule (DFN, cache {capacity})"
    ));
    for rule in [ModificationRule::SizeDelta, ModificationRule::AnyChange] {
        for kind in [PolicyKind::Lru, PolicyKind::GdStar(CostModel::Constant)] {
            let config = SimulationConfig::builder()
                .capacity(capacity)
                .modification_rule(rule)
                .build();
            let report = Simulator::new(kind.build(), config).run(&trace);
            let overall = report.overall();
            t.push_row(vec![
                format!("{rule:?}"),
                kind.label(),
                format!("{:.4}", overall.hit_rate()),
                format!("{:.4}", overall.byte_hit_rate()),
                overall.modification_misses.to_string(),
                format!(
                    "{:.4}",
                    report.by_type()[DocumentType::MultiMedia].byte_hit_rate()
                ),
            ]);
        }
    }
    t.render()
}

/// Ablation A3: admission control in front of LRU — the size-threshold
/// (LRU-THOLD) and second-hit filters of the proxy literature, compared
/// against plain LRU and GD\*(1) on the DFN workload.
pub fn ablation_admission(scale: f64, seed: u64) -> String {
    use webcache_core::AdmissionRule;

    let trace = dfn_trace(scale, seed);
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05).round() as u64);
    let mut t = Table::new(vec![
        "configuration".into(),
        "hit rate".into(),
        "byte hit rate".into(),
        "image HR".into(),
        "multimedia BHR".into(),
    ])
    .with_title(format!(
        "Ablation A3. Admission control (DFN, cache {capacity})"
    ));
    let mut run = |label: &str, kind: PolicyKind, rule: AdmissionRule| {
        let config = SimulationConfig::builder()
            .capacity(capacity)
            .admission_rule(rule)
            .build();
        let report = Simulator::new(kind.build(), config).run(&trace);
        let overall = report.overall();
        t.push_row(vec![
            label.to_owned(),
            format!("{:.4}", overall.hit_rate()),
            format!("{:.4}", overall.byte_hit_rate()),
            format!("{:.4}", report.by_type()[DocumentType::Image].hit_rate()),
            format!(
                "{:.4}",
                report.by_type()[DocumentType::MultiMedia].byte_hit_rate()
            ),
        ]);
    };
    run("LRU", PolicyKind::Lru, AdmissionRule::All);
    run(
        "LRU + THOLD 64KiB",
        PolicyKind::Lru,
        AdmissionRule::MaxSize(ByteSize::from_kib(64)),
    );
    run(
        "LRU + second-hit",
        PolicyKind::Lru,
        AdmissionRule::SecondHit(1 << 16),
    );
    run(
        "GD*(1)",
        PolicyKind::GdStar(CostModel::Constant),
        AdmissionRule::All,
    );
    t.render()
}

/// Extension E1: the paper's future-workload conjecture. Walks the DFN
/// mix towards the rich-media future profile and tracks how each
/// scheme's overall hit rate and multi-media byte hit rate respond.
pub fn future_workload(scale: f64, seed: u64) -> String {
    use webcache_workload::{blend, WorkloadProfile};

    let dfn = WorkloadProfile::dfn();
    let future = WorkloadProfile::future();
    let mut t_table = Table::new(vec![
        "mm+app req share".into(),
        "LRU HR".into(),
        "GD*(1) HR".into(),
        "GD*(P) HR".into(),
        "LRU BHR".into(),
        "GD*(1) BHR".into(),
        "GD*(P) BHR".into(),
    ])
    .with_title(
        "Extension E1. Policy performance as the workload shifts towards \
         multi media / application (DFN -> FUTURE)",
    );
    for step in 0..=4 {
        let t = step as f64 / 4.0;
        let profile = blend(&dfn, &future, t).scaled(scale);
        let trace = profile.build_trace(seed);
        let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05).round() as u64);
        let mm_app_share = {
            let reqs = trace.requests_by_type();
            (reqs[DocumentType::MultiMedia] + reqs[DocumentType::Application]) as f64
                / trace.len() as f64
        };
        let mut row = vec![format!("{:.3}", mm_app_share)];
        let mut rates = Vec::new();
        for kind in [
            PolicyKind::Lru,
            PolicyKind::GdStar(CostModel::Constant),
            PolicyKind::GdStar(CostModel::Packet),
        ] {
            let report = Simulator::new(
                kind.build(),
                SimulationConfig::builder().capacity(capacity).build(),
            )
            .run(&trace);
            rates.push((
                report.overall().hit_rate(),
                report.overall().byte_hit_rate(),
            ));
        }
        for &(hr, _) in &rates {
            row.push(format!("{hr:.4}"));
        }
        for &(_, bhr) in &rates {
            row.push(format!("{bhr:.4}"));
        }
        t_table.push_row(row);
    }
    t_table.render()
}

/// Extension E2: the log-like growth law. Breslau et al. (the paper's
/// reference \[3\]) showed hit rate and byte hit rate grow roughly
/// logarithmically in cache size; this experiment fits `HR = a·ln C + b`
/// over the Figure 2 sweep and reports the per-policy goodness of fit.
pub fn loglike_growth(scale: f64, seed: u64) -> String {
    use webcache_stats::regression::fit_line;

    let trace = dfn_trace(scale, seed);
    let report = sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec());
    let mut t = Table::new(vec![
        "policy".into(),
        "HR slope /ln(C)".into(),
        "HR R^2".into(),
        "BHR slope /ln(C)".into(),
        "BHR R^2".into(),
    ])
    .with_title(
        "Extension E2. Log-like growth of hit rates in cache size          (fit over the Figure 2 sweep, excluding the saturated largest size)",
    );
    for policy in report.policies() {
        let fit_of = |series: Vec<(ByteSize, f64)>| {
            let pts: Vec<(f64, f64)> = series
                .iter()
                .take(series.len().saturating_sub(1))
                .map(|&(c, v)| (c.as_f64().ln(), v))
                .collect();
            fit_line(&pts)
        };
        let hr = fit_of(report.hit_rate_series(policy, None));
        let bhr = fit_of(report.byte_hit_rate_series(policy, None));
        let fmt = |f: Option<webcache_stats::LineFit>, slope: bool| match f {
            Some(f) => format!("{:.4}", if slope { f.slope } else { f.r_squared }),
            None => "-".into(),
        };
        t.push_row(vec![
            policy.label(),
            fmt(hr, true),
            fmt(hr, false),
            fmt(bhr, true),
            fmt(bhr, false),
        ]);
    }
    t.render()
}

/// Extension E3: per-type β for GD\*. Section 4.4 attributes GD\*'s RTP
/// losses to per-type β values that diverge from the image-dominated
/// global estimate; this experiment runs GD\* with one online β per
/// document type and compares against the paper's single-β variant on
/// both workloads.
pub fn per_type_beta(scale: f64, seed: u64) -> String {
    let mut t = Table::new(vec![
        "trace / cost".into(),
        "GD* HR".into(),
        "GD*/type HR".into(),
        "GD* BHR".into(),
        "GD*/type BHR".into(),
        "GD* mm BHR".into(),
        "GD*/type mm BHR".into(),
    ])
    .with_title("Extension E3. GD* with per-type online beta vs the single global beta");
    for (name, trace) in [
        ("DFN", dfn_trace(scale, seed)),
        ("RTP", rtp_trace(scale, seed)),
    ] {
        let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05).round() as u64);
        for cost in [CostModel::Constant, CostModel::Packet] {
            let run = |policy: GdStar| {
                Simulator::new(
                    Box::new(policy),
                    SimulationConfig::builder().capacity(capacity).build(),
                )
                .run(&trace)
            };
            let global = run(GdStar::new(cost, BetaMode::default()));
            let typed = run(GdStar::with_per_type_beta(cost));
            t.push_row(vec![
                format!("{name} / GD*({})", cost.tag()),
                format!("{:.4}", global.overall().hit_rate()),
                format!("{:.4}", typed.overall().hit_rate()),
                format!("{:.4}", global.overall().byte_hit_rate()),
                format!("{:.4}", typed.overall().byte_hit_rate()),
                format!(
                    "{:.4}",
                    global.by_type()[DocumentType::MultiMedia].byte_hit_rate()
                ),
                format!(
                    "{:.4}",
                    typed.by_type()[DocumentType::MultiMedia].byte_hit_rate()
                ),
            ]);
        }
    }
    t.render()
}

/// Extension E4: clairvoyant efficiency. How close does each online
/// scheme come to the Belady-style offline upper bound, per cost model
/// and cache size? "87 % of clairvoyant" contextualizes every absolute
/// hit rate in the study.
pub fn oracle_efficiency(scale: f64, seed: u64) -> String {
    use webcache_sim::clairvoyant_overall;

    let trace = dfn_trace(scale, seed);
    let overall = trace.overall_size();
    let mut t = Table::new(vec![
        "cache size".into(),
        "clairvoyant HR".into(),
        "LRU".into(),
        "LFU-DA".into(),
        "GDS(1)".into(),
        "GD*(1)".into(),
    ])
    .with_title(
        "Extension E4. Fraction of the clairvoyant (Belady-style) hit rate          achieved by each online scheme (DFN)",
    );
    for frac in [0.01, 0.05, 0.20] {
        let capacity = ByteSize::new((overall.as_f64() * frac).round() as u64);
        let config = SimulationConfig::builder().capacity(capacity).build();
        let oracle = clairvoyant_overall(&trace, &config).hit_rate();
        let mut row = vec![
            format!("{capacity} ({:.0}%)", frac * 100.0),
            format!("{oracle:.4}"),
        ];
        for kind in PolicyKind::PAPER_CONSTANT {
            let hr = Simulator::new(kind.build(), config)
                .run(&trace)
                .overall()
                .hit_rate();
            row.push(format!("{:.1}%", hr / oracle * 100.0));
        }
        t.push_row(row);
    }
    t.render()
}

/// A single-panel summary used by smoke tests: overall hit rate of every
/// paper policy at 5% cache size.
pub fn overall_panel(trace: &Trace, policies: Vec<PolicyKind>) -> String {
    let capacity = ByteSize::new((trace.overall_size().as_f64() * 0.05).round() as u64);
    let report = CacheSizeSweep::new(policies, vec![capacity]).run(trace);
    figure_panel(&report, Metric::HitRate, None).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: f64 = 1.0 / 1024.0;

    #[test]
    fn tables_render() {
        for text in [
            table1(S, 1),
            table2(S, 1),
            table3(S, 1),
            table4(S, 1),
            table5(S, 1),
        ] {
            assert!(text.lines().count() >= 6, "{text}");
        }
    }

    #[test]
    fn figure1_reports_both_cost_models() {
        let text = figure1(S, 1);
        assert!(text.contains("GD*(1)"));
        assert!(text.contains("GD*(P)"));
    }

    #[test]
    fn ablations_render() {
        assert!(ablation_beta(S, 1).contains("adaptive"));
        assert!(ablation_modification(S, 1).contains("AnyChange"));
    }
}
