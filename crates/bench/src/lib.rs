//! # webcache-bench
//!
//! The reproduction harness: one function per table and figure of the
//! paper, shared between the Criterion benches (`cargo bench -p
//! webcache-bench`) and the `repro` binary
//! (`cargo run --release -p webcache-bench --bin repro -- <experiment>`).
//!
//! All experiments run on synthetic DFN/RTP workloads at a configurable
//! scale; `SCALE_DEFAULT` (1/32) keeps a full figure sweep within
//! laptop-scale minutes while preserving the workloads' relative shape.
//! Absolute hit-rate numbers shift with scale (smaller traces have
//! smaller working sets); the paper-vs-measured comparison in
//! EXPERIMENTS.md is therefore about orderings, gaps and crossovers, not
//! absolute values.

#![warn(missing_docs)]

pub mod experiments;

use webcache_trace::Trace;
use webcache_workload::WorkloadProfile;

/// Default trace scale for benches and the repro binary.
pub const SCALE_DEFAULT: f64 = 1.0 / 32.0;

/// Default generator seed (any fixed value reproduces the same numbers).
pub const SEED_DEFAULT: u64 = 20020623; // DSN 2002 conference date.

/// The DFN-like workload at the given scale.
pub fn dfn_trace(scale: f64, seed: u64) -> Trace {
    WorkloadProfile::dfn().scaled(scale).build_trace(seed)
}

/// The RTP-like workload at the given scale.
pub fn rtp_trace(scale: f64, seed: u64) -> Trace {
    WorkloadProfile::rtp().scaled(scale).build_trace(seed)
}
