//! Minimal `--flag value` argument parsing.
//!
//! The CLI's entire surface is `--key value` pairs plus boolean
//! `--switch`es, so a small hand-rolled parser keeps the workspace free
//! of an argument-parsing dependency.

use std::collections::HashMap;
use std::fmt;

/// A parsed argument list: `--key value` pairs and boolean switches.
/// Flags declared repeatable collect every occurrence in order.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, Vec<String>>,
    switches: Vec<String>,
}

/// Errors produced while parsing or querying arguments.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A non-flag token appeared where a `--flag` was expected.
    Unexpected(String),
    /// The same flag appeared twice.
    Duplicate(String),
    /// A required flag is absent.
    Missing(&'static str),
    /// A flag's value failed to parse.
    Invalid {
        /// The flag name.
        flag: String,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Unexpected(tok) => write!(f, "unexpected argument `{tok}`"),
            ArgError::Duplicate(flag) => write!(f, "flag `--{flag}` given twice"),
            ArgError::Missing(flag) => write!(f, "missing required flag `--{flag}`"),
            ArgError::Invalid { flag, message } => {
                write!(f, "bad value for `--{flag}`: {message}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token list. `switches` declares the boolean flags this
    /// subcommand accepts; every other `--flag` must be followed by a
    /// value. Declaring switches per subcommand means a switch that
    /// belongs to a *different* subcommand errors here instead of
    /// silently swallowing the next token as its value.
    ///
    /// # Errors
    ///
    /// Fails on bare tokens, duplicated flags, a trailing flag with no
    /// value, or a value that itself looks like a flag (the usual shape
    /// of a misplaced switch).
    pub fn parse(tokens: &[String], switches: &[&str]) -> Result<Args, ArgError> {
        Args::parse_with_repeats(tokens, switches, &[])
    }

    /// Like [`Args::parse`], but the flags in `repeatable` may appear
    /// any number of times; their values accumulate in command-line
    /// order (read them back with [`Args::get_all`]). Every other flag
    /// keeps the appear-at-most-once rule.
    ///
    /// # Errors
    ///
    /// As [`Args::parse`].
    pub fn parse_with_repeats(
        tokens: &[String],
        switches: &[&str],
        repeatable: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.iter();
        while let Some(token) = iter.next() {
            let Some(flag) = token.strip_prefix("--") else {
                return Err(ArgError::Unexpected(token.clone()));
            };
            if switches.contains(&flag) {
                if args.switches.iter().any(|s| s == flag) {
                    return Err(ArgError::Duplicate(flag.to_owned()));
                }
                args.switches.push(flag.to_owned());
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(ArgError::Invalid {
                    flag: flag.to_owned(),
                    message: "expected a value (is this switch supported by this subcommand?)"
                        .to_owned(),
                });
            };
            if value.starts_with("--") {
                return Err(ArgError::Invalid {
                    flag: flag.to_owned(),
                    message: format!(
                        "expected a value, found flag `{value}` (is `--{flag}` a switch of \
                         another subcommand?)"
                    ),
                });
            }
            let slot = args.values.entry(flag.to_owned()).or_default();
            if !slot.is_empty() && !repeatable.contains(&flag) {
                return Err(ArgError::Duplicate(flag.to_owned()));
            }
            slot.push(value.clone());
        }
        Ok(args)
    }

    /// An optional string value (the first occurrence, for repeatable
    /// flags).
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values
            .get(flag)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    /// Every value a repeatable flag was given, in command-line order
    /// (empty when absent).
    pub fn get_all(&self, flag: &str) -> &[String] {
        self.values.get(flag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A required string value.
    ///
    /// # Errors
    ///
    /// [`ArgError::Missing`] when absent.
    pub fn require(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag).ok_or(ArgError::Missing(flag))
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }

    /// An optional value parsed with `FromStr`.
    ///
    /// # Errors
    ///
    /// [`ArgError::Invalid`] when present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.get(flag) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|e| ArgError::Invalid {
                flag: flag.to_owned(),
                message: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = Args::parse(&toks("--profile dfn --seed 7 --csv"), &["csv"]).unwrap();
        assert_eq!(a.get("profile"), Some("dfn"));
        assert_eq!(a.get_parsed::<u64>("seed").unwrap(), Some(7));
        assert!(a.switch("csv"));
        assert!(!a.switch("quiet"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn rejects_bare_tokens() {
        assert_eq!(
            Args::parse(&toks("dfn"), &[]).unwrap_err(),
            ArgError::Unexpected("dfn".into())
        );
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            Args::parse(&toks("--seed 1 --seed 2"), &[]).unwrap_err(),
            ArgError::Duplicate("seed".into())
        );
        assert_eq!(
            Args::parse(&toks("--csv --csv"), &["csv"]).unwrap_err(),
            ArgError::Duplicate("csv".into())
        );
    }

    #[test]
    fn repeatable_flags_accumulate_in_order() {
        let a = Args::parse_with_repeats(
            &toks("--policy tinylfu+slru --policy arc --seed 7"),
            &[],
            &["policy"],
        )
        .unwrap();
        assert_eq!(a.get_all("policy"), ["tinylfu+slru", "arc"]);
        assert_eq!(a.get("policy"), Some("tinylfu+slru"), "first occurrence");
        assert_eq!(a.get_all("seed"), ["7"]);
        assert_eq!(a.get_all("absent"), [] as [&str; 0]);
        // Non-repeatable flags still reject duplicates.
        assert_eq!(
            Args::parse_with_repeats(&toks("--seed 1 --seed 2"), &[], &["policy"]).unwrap_err(),
            ArgError::Duplicate("seed".into())
        );
    }

    #[test]
    fn rejects_trailing_flag() {
        let err = Args::parse(&toks("--out"), &[]).unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
    }

    #[test]
    fn undeclared_switch_errors_instead_of_eating_a_flag() {
        // `--csv` is not a switch of this (hypothetical) subcommand: it
        // must not silently consume `--policy` as its value.
        let err = Args::parse(&toks("--csv --policy lru"), &["progress"]).unwrap_err();
        match err {
            ArgError::Invalid { flag, message } => {
                assert_eq!(flag, "csv");
                assert!(message.contains("--policy"), "{message}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        // Trailing undeclared switch: also an error.
        let err = Args::parse(&toks("--policy lru --csv"), &["progress"]).unwrap_err();
        assert!(
            matches!(err, ArgError::Invalid { ref flag, .. } if flag == "csv"),
            "{err:?}"
        );
    }

    #[test]
    fn same_name_is_switch_or_value_flag_per_subcommand() {
        let a = Args::parse(&toks("--json --window 5"), &["json"]).unwrap();
        assert!(a.switch("json"));
        let b = Args::parse(&toks("--json out.json"), &[]).unwrap();
        assert_eq!(b.get("json"), Some("out.json"));
        assert!(!b.switch("json"));
    }

    #[test]
    fn require_and_parse_errors() {
        let a = Args::parse(&toks("--seed notanumber"), &[]).unwrap();
        assert_eq!(a.require("out"), Err(ArgError::Missing("out")));
        assert!(a.get_parsed::<u64>("seed").is_err());
        assert!(a.require("seed").is_ok());
    }

    #[test]
    fn error_messages_are_actionable() {
        assert_eq!(
            ArgError::Missing("out").to_string(),
            "missing required flag `--out`"
        );
        assert!(ArgError::Duplicate("x".into())
            .to_string()
            .contains("twice"));
    }
}
