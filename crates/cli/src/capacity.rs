//! Human-friendly cache-capacity parsing.

use webcache_trace::ByteSize;

/// A capacity specification: absolute bytes or a fraction of the
/// workload's overall size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacitySpec {
    /// An absolute byte count.
    Bytes(ByteSize),
    /// A fraction in `(0, 1]` of the trace's overall size.
    FractionOfTrace(f64),
}

impl CapacitySpec {
    /// Resolves the specification against a trace's overall size.
    pub fn resolve(self, overall: ByteSize) -> ByteSize {
        match self {
            CapacitySpec::Bytes(b) => b,
            CapacitySpec::FractionOfTrace(f) => {
                ByteSize::new((overall.as_f64() * f).round().max(1.0) as u64)
            }
        }
    }
}

/// Parses a capacity string: raw bytes (`1048576`), binary units
/// (`64KiB`, `32MiB`, `2GiB`, case-insensitive, `KB`/`MB`/`GB` accepted
/// as synonyms), or a percentage of the trace (`5%`, `0.5%`).
///
/// # Errors
///
/// Returns a human-readable message for malformed input.
///
/// ```
/// use webcache_cli::parse_capacity;
/// use webcache_cli::capacity::CapacitySpec;
/// use webcache_trace::ByteSize;
///
/// assert_eq!(
///     parse_capacity("64KiB").unwrap(),
///     CapacitySpec::Bytes(ByteSize::from_kib(64))
/// );
/// assert_eq!(
///     parse_capacity("5%").unwrap(),
///     CapacitySpec::FractionOfTrace(0.05)
/// );
/// ```
pub fn parse_capacity(raw: &str) -> Result<CapacitySpec, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err("empty capacity".to_owned());
    }
    if let Some(pct) = raw.strip_suffix('%') {
        let value: f64 = pct
            .trim()
            .parse()
            .map_err(|_| format!("bad percentage `{raw}`"))?;
        if !(value > 0.0 && value <= 100.0) {
            return Err(format!("percentage must be in (0, 100], got `{raw}`"));
        }
        return Ok(CapacitySpec::FractionOfTrace(value / 100.0));
    }

    let lower = raw.to_ascii_lowercase();
    let (digits, multiplier) =
        if let Some(d) = lower.strip_suffix("kib").or(lower.strip_suffix("kb")) {
            (d, 1024u64)
        } else if let Some(d) = lower.strip_suffix("mib").or(lower.strip_suffix("mb")) {
            (d, 1024 * 1024)
        } else if let Some(d) = lower.strip_suffix("gib").or(lower.strip_suffix("gb")) {
            (d, 1024 * 1024 * 1024)
        } else if let Some(d) = lower.strip_suffix('b') {
            (d, 1)
        } else {
            (lower.as_str(), 1)
        };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad capacity `{raw}`"))?;
    if value.is_nan() || value <= 0.0 {
        return Err(format!("capacity must be positive, got `{raw}`"));
    }
    Ok(CapacitySpec::Bytes(ByteSize::new(
        (value * multiplier as f64).round() as u64,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_bytes() {
        assert_eq!(
            parse_capacity("1048576").unwrap(),
            CapacitySpec::Bytes(ByteSize::from_mib(1))
        );
        assert_eq!(
            parse_capacity("100B").unwrap(),
            CapacitySpec::Bytes(ByteSize::new(100))
        );
    }

    #[test]
    fn units_case_insensitive() {
        for (s, bytes) in [
            ("64KiB", 64 * 1024),
            ("64kb", 64 * 1024),
            ("32MiB", 32 << 20),
            ("32mb", 32 << 20),
            ("2GiB", 2u64 << 30),
            ("2gb", 2u64 << 30),
            ("1.5kib", 1536),
        ] {
            assert_eq!(
                parse_capacity(s).unwrap(),
                CapacitySpec::Bytes(ByteSize::new(bytes)),
                "{s}"
            );
        }
    }

    #[test]
    fn percentages() {
        assert_eq!(
            parse_capacity("5%").unwrap(),
            CapacitySpec::FractionOfTrace(0.05)
        );
        assert_eq!(
            parse_capacity("0.5 %").unwrap(),
            CapacitySpec::FractionOfTrace(0.005)
        );
        assert!(parse_capacity("0%").is_err());
        assert!(parse_capacity("150%").is_err());
    }

    #[test]
    fn resolution() {
        let overall = ByteSize::from_mib(100);
        assert_eq!(
            CapacitySpec::FractionOfTrace(0.05).resolve(overall),
            ByteSize::from_mib(5)
        );
        assert_eq!(
            CapacitySpec::Bytes(ByteSize::new(42)).resolve(overall),
            ByteSize::new(42)
        );
    }

    #[test]
    fn garbage_is_rejected() {
        for s in ["", "MiB", "abc", "-5", "1..2kb"] {
            assert!(parse_capacity(s).is_err(), "{s}");
        }
    }
}
