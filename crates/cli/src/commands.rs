//! Subcommand implementations.

use std::fs;

use webcache_core::{PolicyKind, PolicySpec};
use webcache_obs::{chrome_trace_json, PolicyProbe, Registry, TraceClock, TraceRecorder};
use webcache_sim::report::{
    figure_panel, occupancy_csv, sweep_csv, window_csv, window_json, Metric,
};
use webcache_sim::{
    clairvoyant, simulate_hierarchy, CacheSizeSweep, HierarchyConfig, LatencyModel,
    ProfileObserver, SimulationConfig, Simulator, WindowSpec, WindowedMetrics,
};
use webcache_stats::{Table, TraceCharacterization};
use webcache_trace::{format as trace_format, preprocess, squid, ByteSize, DocumentType, Trace};
use webcache_workload::WorkloadProfile;

use crate::args::Args;
use crate::capacity::{parse_capacity, CapacitySpec};
use crate::CliError;

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Parses one `[admission+]replacement` policy spec, turning the parse
/// error into a usage error. The single policy-parsing path of every
/// subcommand.
fn parse_spec(name: &str) -> Result<PolicySpec, CliError> {
    name.parse::<PolicySpec>().map_err(|e| usage(e.to_string()))
}

/// Loads a trace, auto-detecting the binary format by its magic.
pub(crate) fn load_trace(path: &str) -> Result<Trace, CliError> {
    let bytes = fs::read(path)?;
    if bytes.starts_with(&webcache_trace::format_bin::MAGIC) {
        Ok(webcache_trace::format_bin::from_bytes(&bytes)?)
    } else {
        Ok(trace_format::read_trace(bytes.as_slice())?)
    }
}

/// Serializes a trace in the requested format (`text` default, `bin`
/// for the fixed-width binary format).
fn encode_trace(trace: &Trace, format: Option<&str>) -> Result<Vec<u8>, CliError> {
    match format.unwrap_or("text") {
        "text" => {
            let mut buf = Vec::new();
            trace_format::write_trace(&mut buf, trace)?;
            Ok(buf)
        }
        "bin" => Ok(webcache_trace::format_bin::to_bytes(trace)),
        other => Err(usage(format!("unknown format `{other}` (text|bin)"))),
    }
}

fn load_squid(path: &str) -> Result<(Trace, preprocess::PreprocessStats), CliError> {
    let text = fs::read_to_string(path)?;
    let entries = squid::parse_log(&text)?;
    Ok(preprocess::preprocess(&entries))
}

/// Loads a trace from `--trace FILE` or `--squid FILE`.
fn input_trace(args: &Args) -> Result<(Trace, String), CliError> {
    match (args.get("trace"), args.get("squid")) {
        (Some(path), None) => Ok((load_trace(path)?, path.to_owned())),
        (None, Some(path)) => Ok((load_squid(path)?.0, path.to_owned())),
        _ => Err(usage("give exactly one of --trace FILE or --squid FILE")),
    }
}

/// `webcache generate`.
pub fn generate(args: &Args) -> Result<String, CliError> {
    let profile = match args.require("profile")?.to_ascii_lowercase().as_str() {
        "dfn" => WorkloadProfile::dfn(),
        "rtp" => WorkloadProfile::rtp(),
        other => return Err(usage(format!("unknown profile `{other}` (dfn|rtp)"))),
    };
    let denom: f64 = args.get_parsed("scale")?.unwrap_or(256.0);
    if denom < 1.0 {
        return Err(usage("--scale expects a denominator ≥ 1"));
    }
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(1);
    let out = args.require("out")?;

    let trace = profile.scaled(1.0 / denom).build_trace(seed);
    let buf = encode_trace(&trace, args.get("format"))?;
    fs::write(out, buf)?;
    Ok(format!(
        "wrote {} requests ({} distinct documents, {}) to {out}\n",
        trace.len(),
        trace.distinct_documents(),
        trace.requested_bytes(),
    ))
}

/// `webcache characterize`.
pub fn characterize(args: &Args) -> Result<String, CliError> {
    let (trace, default_name) = input_trace(args)?;
    let name = args.get("name").unwrap_or(&default_name).to_owned();
    let ch = TraceCharacterization::measure(&trace);
    Ok(format!(
        "{}\n{}\n{}",
        ch.properties_table(&name),
        ch.breakdown_table(&name),
        ch.statistics_table(&name),
    ))
}

/// `webcache simulate`.
pub fn simulate(args: &Args) -> Result<String, CliError> {
    let (trace, _) = input_trace(args)?;
    let policy_name = args.require("policy")?;
    let is_oracle = policy_name.eq_ignore_ascii_case("oracle")
        || policy_name.eq_ignore_ascii_case("clairvoyant");
    let policy = if is_oracle {
        None
    } else {
        Some(parse_spec(policy_name)?)
    };
    let cap_spec = match args.get("capacity") {
        Some(raw) => parse_capacity(raw).map_err(usage)?,
        None => CapacitySpec::FractionOfTrace(0.05),
    };
    let capacity = cap_spec.resolve(trace.overall_size());
    let warmup: f64 = args.get_parsed("warmup")?.unwrap_or(0.10);
    if !(0.0..1.0).contains(&warmup) {
        return Err(usage("--warmup expects a fraction in [0, 1)"));
    }
    let occupancy: usize = args.get_parsed("occupancy")?.unwrap_or(0);

    let config = SimulationConfig::builder()
        .capacity(capacity)
        .warmup_fraction(warmup)
        .occupancy_samples(occupancy)
        .build();
    let (label, by_type, occupancy_series) = match policy {
        Some(spec) => {
            let report = Simulator::from_spec(spec, config).run(&trace);
            (
                report.policy.clone(),
                *report.by_type(),
                Some(report.occupancy),
            )
        }
        None => ("clairvoyant".to_owned(), clairvoyant(&trace, &config), None),
    };

    let mut table = Table::new(vec![
        "Type".into(),
        "requests".into(),
        "hits".into(),
        "hit rate".into(),
        "byte hit rate".into(),
        "mod misses".into(),
    ])
    .with_title(format!("{label} @ {capacity} (warm-up {warmup})"));
    let mut overall = webcache_sim::HitStats::default();
    for (_, s) in by_type.iter() {
        overall += *s;
    }
    for ty in DocumentType::ALL {
        let s = by_type[ty];
        table.push_row(vec![
            ty.label().to_owned(),
            s.requests.to_string(),
            s.hits.to_string(),
            format!("{:.4}", s.hit_rate()),
            format!("{:.4}", s.byte_hit_rate()),
            s.modification_misses.to_string(),
        ]);
    }
    table.push_row(vec![
        "Overall".to_owned(),
        overall.requests.to_string(),
        overall.hits.to_string(),
        format!("{:.4}", overall.hit_rate()),
        format!("{:.4}", overall.byte_hit_rate()),
        overall.modification_misses.to_string(),
    ]);
    let mut out = if args.switch("markdown") {
        table.to_markdown()
    } else {
        table.render()
    };
    let latency = LatencyModel::campus_2001().estimate_stats(&overall);
    out.push_str(&format!(
        "\nestimated user latency (campus-2001 link model): mean {:.1} ms/request, \
         {:.1}% saved vs no cache\n",
        latency.mean_ms(),
        latency.savings() * 100.0,
    ));
    if occupancy > 0 {
        if let Some(series) = &occupancy_series {
            out.push('\n');
            out.push_str(&occupancy_csv(series));
        }
    }
    Ok(out)
}

/// `webcache hierarchy`.
pub fn hierarchy(args: &Args) -> Result<String, CliError> {
    let (trace, _) = input_trace(args)?;
    let overall = trace.overall_size();
    let leaves: usize = args.get_parsed("leaves")?.unwrap_or(4);
    if leaves == 0 {
        return Err(usage("--leaves must be at least 1"));
    }
    let leaf_capacity = match args.get("leaf-capacity") {
        Some(raw) => parse_capacity(raw).map_err(usage)?.resolve(overall),
        None => ByteSize::new((overall.as_f64() * 0.01).round().max(1.0) as u64),
    };
    let parent_capacity = match args.get("parent-capacity") {
        Some(raw) => parse_capacity(raw).map_err(usage)?.resolve(overall),
        None => ByteSize::new((overall.as_f64() * 0.10).round().max(1.0) as u64),
    };
    let mut config = HierarchyConfig::new(leaves, leaf_capacity, parent_capacity);
    if let Some(name) = args.get("leaf-policy") {
        config = config.with_leaf_policy(parse_spec(name)?);
    }
    if let Some(name) = args.get("parent-policy") {
        config = config.with_parent_policy(parse_spec(name)?);
    }
    let report = simulate_hierarchy(&trace, config);
    Ok(format!(
        "hierarchy: {leaves} leaves @ {leaf_capacity} ({}) -> parent @ {parent_capacity} ({})\n\
         leaf   hit rate {:.4} ({} requests)\n\
         parent hit rate {:.4} ({} leaf misses)\n\
         combined: hit rate {:.4}, byte hit rate {:.4}\n",
        config.leaf_policy.label(),
        config.parent_policy.label(),
        report.leaf.hit_rate(),
        report.leaf.requests,
        report.parent.hit_rate(),
        report.parent.requests,
        report.combined_hit_rate(),
        report.combined_byte_hit_rate(),
    ))
}

/// `webcache sweep`.
pub fn sweep(args: &Args) -> Result<String, CliError> {
    let (trace, _) = input_trace(args)?;
    let policies = parse_policies(args)?;
    let capacities: Vec<ByteSize> = match args.get("fractions") {
        None => CacheSizeSweep::paper_capacities(&trace),
        Some(list) => {
            let overall = trace.overall_size();
            list.split(',')
                .map(|f| {
                    let frac: f64 = f
                        .trim()
                        .parse()
                        .map_err(|_| usage(format!("bad fraction `{f}`")))?;
                    if !(frac > 0.0 && frac <= 1.0) {
                        return Err(usage(format!("fraction out of (0, 1]: `{f}`")));
                    }
                    Ok(ByteSize::new(
                        (overall.as_f64() * frac).round().max(1.0) as u64
                    ))
                })
                .collect::<Result<_, _>>()?
        }
    };

    if args.switch("batched") && args.switch("serial") {
        return Err(usage("give at most one of --batched and --serial"));
    }
    let shards: usize = args.get_parsed("shards")?.unwrap_or(1);
    webcache_core::validate_shard_count(shards).map_err(|e| usage(format!("--shards: {e}")))?;
    let sweep = CacheSizeSweep::new(policies, capacities)
        .with_batched(!args.switch("serial"))
        .with_shards(shards);
    let report = if args.switch("progress") {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        sweep.run_with_progress(&trace, threads, |p| {
            eprintln!(
                "[{}/{}] worker {} finished {} @ {} ({:.0} req/s)",
                p.completed,
                p.total,
                p.worker,
                p.policy.label(),
                p.capacity,
                p.requests_per_sec,
            );
        })
    } else {
        sweep.run(&trace)
    };
    if args.switch("csv") {
        return Ok(sweep_csv(&report));
    }
    let mut out = String::new();
    for metric in [Metric::HitRate, Metric::ByteHitRate] {
        out.push_str(&figure_panel(&report, metric, None).render());
        out.push('\n');
        for ty in DocumentType::MAIN {
            out.push_str(&figure_panel(&report, metric, Some(ty)).render());
            out.push('\n');
        }
    }
    Ok(out)
}

/// `webcache stats`.
pub fn stats(args: &Args) -> Result<String, CliError> {
    let (trace, _) = input_trace(args)?;
    let policy = parse_spec(args.require("policy")?)?;
    let cap_spec = match args.get("capacity") {
        Some(raw) => parse_capacity(raw).map_err(usage)?,
        None => CapacitySpec::FractionOfTrace(0.05),
    };
    let capacity = cap_spec.resolve(trace.overall_size());
    let warmup: f64 = args.get_parsed("warmup")?.unwrap_or(0.10);
    if !(0.0..1.0).contains(&warmup) {
        return Err(usage("--warmup expects a fraction in [0, 1)"));
    }

    let window_spec = match (args.get_parsed::<u64>("window")?, args.get("window-bytes")) {
        (Some(_), Some(_)) => {
            return Err(usage("give at most one of --window and --window-bytes"));
        }
        (Some(0), None) => return Err(usage("--window must be at least 1 request")),
        (Some(n), None) => WindowSpec::Requests(n),
        (None, Some(raw)) => {
            let bytes = parse_capacity(raw)
                .map_err(usage)?
                .resolve(trace.overall_size());
            if bytes.is_zero() {
                return Err(usage("--window-bytes must be positive"));
            }
            WindowSpec::Bytes(bytes)
        }
        (None, None) => {
            // Default: a tenth of the measured region per window.
            let warmup_end = ((trace.len() as f64) * warmup).floor() as usize;
            let measured = trace.len().saturating_sub(warmup_end);
            WindowSpec::Requests(((measured / 10).max(1)) as u64)
        }
    };

    let config = SimulationConfig::builder()
        .capacity(capacity)
        .warmup_fraction(warmup)
        .build();
    let mut metrics = WindowedMetrics::new(window_spec);
    Simulator::from_spec(policy, config).run_observed(&trace, &mut metrics);

    let want_json = args.switch("json");
    let want_csv = args.switch("csv");
    let mut out = String::new();
    if want_json || !want_csv {
        out.push_str(&window_json(&metrics));
    }
    if want_csv || !want_json {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&window_csv(&metrics));
    }
    Ok(out)
}

/// Collects the policy list: the `--policies a,b,c` comma list merged
/// with every repeated `--policy SPEC` occurrence, in command-line
/// order; defaults to the paper's constant-cost four when neither flag
/// is given. Every entry goes through the spec grammar, so composed
/// admission specs (`tinylfu+slru`) work wherever a policy list does.
fn parse_policies(args: &Args) -> Result<Vec<PolicySpec>, CliError> {
    let mut specs: Vec<PolicySpec> = Vec::new();
    if let Some(list) = args.get("policies") {
        for name in list.split(',') {
            specs.push(parse_spec(name.trim())?);
        }
    }
    for name in args.get_all("policy") {
        specs.push(parse_spec(name)?);
    }
    if specs.is_empty() {
        specs = PolicyKind::PAPER_CONSTANT
            .iter()
            .map(|&k| k.into())
            .collect();
    }
    Ok(specs)
}

/// `webcache profile`.
///
/// Runs an instrumented replay (policy-internal heap costs and inflation
/// via [`PolicyProbe`], request outcomes via [`ProfileObserver`]) plus a
/// span-timed capacity sweep, then writes three artifacts to `--out-dir`:
/// `trace.json` (chrome://tracing / Perfetto), `metrics.prom` (Prometheus
/// text exposition) and `metrics.json` (the same registry as JSON).
pub fn profile(args: &Args) -> Result<String, CliError> {
    let out_dir = std::path::Path::new(args.get("out-dir").unwrap_or("profile-out"));
    let quick = args.switch("quick");

    let clock = TraceClock::new();
    let mut main = TraceRecorder::new(&clock, 0, "main");

    // Input: an explicit trace, or a synthetic DFN workload.
    let trace = match (args.get("trace"), args.get("squid")) {
        (None, None) => {
            let denom: f64 =
                args.get_parsed("scale")?
                    .unwrap_or(if quick { 4096.0 } else { 256.0 });
            if denom < 1.0 {
                return Err(usage("--scale expects a denominator ≥ 1"));
            }
            let seed: u64 = args.get_parsed("seed")?.unwrap_or(1);
            main.span("generate-trace", |_| {
                WorkloadProfile::dfn().scaled(1.0 / denom).build_trace(seed)
            })
        }
        _ => main.span("load-trace", |_| input_trace(args))?.0,
    };

    let policies = parse_policies(args)?;
    let cap_spec = match args.get("capacity") {
        Some(raw) => parse_capacity(raw).map_err(usage)?,
        None => CapacitySpec::FractionOfTrace(0.05),
    };
    let capacity = cap_spec.resolve(trace.overall_size());
    let config = SimulationConfig::builder()
        .capacity(capacity)
        .warmup_fraction(0.10)
        .build();

    // Instrumented replay: the probe sees each policy from the inside
    // (heap costs, inflation), the observer from the outside (hits,
    // misses, eviction pressure); both export through one registry.
    let registry = Registry::new();
    main.span("replay", |main| {
        for &policy in &policies {
            let label = policy.label();
            main.span(label.clone(), |_| {
                let probe = PolicyProbe::register(&registry, &label);
                let mut obs = ProfileObserver::register(&registry, &label);
                let mut config = config;
                config.admission_rule = policy.admission_or(config.admission_rule);
                Simulator::new(policy.replacement.build_instrumented(probe), config)
                    .run_observed(&trace, &mut obs);
            });
        }
    });

    // Span-timed sweep: one chrome-trace track per worker, one span per
    // policy × capacity cell.
    let overall = trace.overall_size();
    let fractions: &[f64] = if quick {
        &[0.01, 0.05]
    } else {
        &[0.01, 0.05, 0.20]
    };
    let capacities: Vec<ByteSize> = fractions
        .iter()
        .map(|f| ByteSize::new((overall.as_f64() * f).round().max(1.0) as u64))
        .collect();
    let cells = policies.len() * capacities.len();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    let workers = threads.clamp(1, cells);
    let mut worker_recorders: Vec<TraceRecorder> = (0..workers)
        .map(|i| TraceRecorder::new(&clock, i as u32 + 1, format!("sweep-worker-{i}")))
        .collect();
    main.begin("sweep");
    // The sweep's *timing* is the product here; its report is discarded
    // (`webcache sweep` renders it).
    let _ = CacheSizeSweep::new(policies.clone(), capacities).run_with_progress_recorded(
        &trace,
        threads,
        |_| {},
        &mut worker_recorders,
    );
    main.end();

    let (prom, metrics_json) = main.span("export", |_| {
        (registry.prometheus_text(), registry.json_snapshot())
    });

    let mut recorders = vec![main];
    recorders.extend(worker_recorders);
    let trace_json = chrome_trace_json(&recorders);

    fs::create_dir_all(out_dir)?;
    let trace_path = out_dir.join("trace.json");
    let prom_path = out_dir.join("metrics.prom");
    let json_path = out_dir.join("metrics.json");
    fs::write(&trace_path, &trace_json)?;
    fs::write(&prom_path, &prom)?;
    fs::write(&json_path, &metrics_json)?;

    let spans: usize = recorders.iter().map(|r| r.events().len()).sum();
    Ok(format!(
        "profiled {} requests @ {capacity}: {} policies replayed instrumented, \
         {cells} sweep cells on {workers} workers\n\
         {} spans -> {}\n\
         {} metric series -> {} / {}\n",
        trace.len(),
        policies.len(),
        spans,
        trace_path.display(),
        registry.len(),
        prom_path.display(),
        json_path.display(),
    ))
}

/// `webcache convert`.
pub fn convert(args: &Args) -> Result<String, CliError> {
    let out = args.require("out")?;
    match (args.get("trace"), args.get("squid")) {
        (None, Some(input)) => {
            let (trace, stats) = load_squid(input)?;
            let buf = encode_trace(&trace, args.get("format"))?;
            fs::write(out, buf)?;
            Ok(format!(
                "converted {} log entries -> {} cacheable requests ({} dynamic, {} status, \
                 {} method, {} unsized dropped) -> {out}\n",
                stats.input,
                stats.output,
                stats.dropped_dynamic,
                stats.dropped_status,
                stats.dropped_method,
                stats.dropped_unsized,
            ))
        }
        (Some(input), None) => {
            // Re-encode an existing trace (e.g. text -> bin).
            let trace = load_trace(input)?;
            let buf = encode_trace(&trace, args.get("format"))?;
            fs::write(out, buf)?;
            Ok(format!(
                "converted {} requests ({} distinct documents, {}) -> {out}\n",
                trace.len(),
                trace.distinct_documents(),
                trace.requested_bytes(),
            ))
        }
        _ => Err(usage("give exactly one of --trace FILE or --squid FILE")),
    }
}
