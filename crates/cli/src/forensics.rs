//! Post-mortem bundles and the `webcache inspect` reader.
//!
//! A **bundle** is a directory written by `webcache serve` when an
//! anomaly detector logs a warning: the flight recorder's retained
//! decision records (`flight.jsonl`), the full metrics registry at the
//! moment of detection (`registry.json`), and a small `manifest.json`
//! identifying the trigger. Bundles are rate limited exactly like the
//! warn log (one per anomaly cooldown) and capped by `--max-bundles`.
//!
//! `webcache inspect --bundle DIR` reads a bundle (or a bare
//! `flight.jsonl`) back and reports eviction forensics: per-type
//! eviction-age and reuse-distance-at-eviction histograms, wasted
//! evictions (victim re-requested within `--window`), the top-regret
//! documents, and the policy reason payloads attached to evictions.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use webcache_obs::flight::{DecisionRecord, EventKind, FlightRecorder, ReasonKind};
use webcache_trace::DocumentType;

use crate::args::Args;
use crate::CliError;

/// Everything the bundle manifest records about the trigger.
#[derive(Debug)]
pub struct BundleMeta<'a> {
    /// Anomaly kind label (e.g. `hit_rate_collapse`).
    pub kind: &'a str,
    /// Document-type label of the trigger (`overall` for cache-wide
    /// detectors).
    pub doc_type: &'a str,
    /// Bundle sequence number within this serve run.
    pub seq: u32,
    /// Policy spec label of the replay.
    pub policy: &'a str,
    /// Configured cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Wall-clock milliseconds since the Unix epoch at detection.
    pub unix_ms: u128,
}

/// Writes one post-mortem bundle directory under `dir` and returns its
/// path. The directory name is `bundle-<unix_ms>-<seq>-<kind>`, so
/// bundles sort chronologically.
///
/// # Errors
///
/// Propagates filesystem failures creating or writing the bundle.
pub fn write_bundle(
    dir: &Path,
    meta: &BundleMeta<'_>,
    flight_jsonl: &str,
    registry_json: &str,
) -> std::io::Result<PathBuf> {
    let name = format!("bundle-{:013}-{:03}-{}", meta.unix_ms, meta.seq, meta.kind);
    let path = dir.join(name);
    fs::create_dir_all(&path)?;
    fs::write(path.join("flight.jsonl"), flight_jsonl)?;
    fs::write(path.join("registry.json"), registry_json)?;
    let manifest = format!(
        "{{\"kind\": \"{}\", \"doc_type\": \"{}\", \"seq\": {}, \"unix_ms\": {}, \
         \"policy\": \"{}\", \"capacity_bytes\": {}, \"records\": {}}}\n",
        meta.kind,
        meta.doc_type,
        meta.seq,
        meta.unix_ms,
        meta.policy,
        meta.capacity_bytes,
        flight_jsonl.lines().count(),
    );
    fs::write(path.join("manifest.json"), manifest)?;
    Ok(path)
}

/// `webcache inspect --bundle DIR [--window N] [--top N]`.
///
/// # Errors
///
/// [`CliError::Usage`] for missing flags or unparsable records; I/O
/// errors reading the bundle.
pub fn inspect(args: &Args) -> Result<String, CliError> {
    let bundle = args.require("bundle")?;
    let window: u64 = args.get_parsed("window")?.unwrap_or(1024);
    let top: usize = args.get_parsed("top")?.unwrap_or(10);
    let path = Path::new(bundle);
    let jsonl_path = if path.is_dir() {
        path.join("flight.jsonl")
    } else {
        path.to_path_buf()
    };
    let text = fs::read_to_string(&jsonl_path)?;
    let records = FlightRecorder::parse_jsonl(&text)
        .map_err(|e| CliError::Usage(format!("{}: {e}", jsonl_path.display())))?;
    if records.is_empty() {
        return Err(CliError::Usage(format!(
            "{}: no decision records",
            jsonl_path.display()
        )));
    }
    let manifest = path
        .is_dir()
        .then(|| fs::read_to_string(path.join("manifest.json")).ok())
        .flatten();
    let report = analyze(&records, window);
    Ok(render(
        &jsonl_path.display().to_string(),
        manifest.as_deref(),
        &report,
        window,
        top,
    ))
}

/// Histogram over power-of-two buckets: `buckets[i]` counts values in
/// `[2^(i-1)+1, 2^i]` (bucket 0 is exactly `0..=1`).
const BUCKETS: usize = 24;

fn bucket(value: u64) -> usize {
    ((64 - value.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
}

fn bucket_label(i: usize) -> String {
    format!("≤{}", 1u64 << i)
}

/// Per-document-type eviction forensics.
#[derive(Debug, Default, Clone)]
struct TypeForensics {
    evictions: u64,
    wasted: u64,
    /// Requests between a victim's (latest) insert and its eviction.
    age_histogram: [u64; BUCKETS],
    /// Requests between an eviction and the victim's next request
    /// (evictions never re-requested inside the record set are counted
    /// separately in `never_reused`).
    reuse_histogram: [u64; BUCKETS],
    never_reused: u64,
}

/// One document's accumulated regret.
#[derive(Debug, Clone)]
struct DocRegret {
    doc: u64,
    doc_type: u8,
    wasted: u64,
    min_reuse_distance: u64,
}

/// Everything `inspect` reports, computed in one pass (plus a per-doc
/// access index for reuse distances).
#[derive(Debug)]
struct ForensicsReport {
    records: usize,
    evictions: u64,
    evictions_with_reason: u64,
    reason_counts: Vec<(ReasonKind, u64)>,
    per_type: Vec<(DocumentType, TypeForensics)>,
    top_regret: Vec<DocRegret>,
}

fn analyze(records: &[DecisionRecord], window: u64) -> ForensicsReport {
    use std::collections::HashMap;

    // Per-doc request indices of accesses (hit/miss/mod-miss), in order,
    // for next-access-after-eviction lookups.
    let mut accesses: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut last_insert: HashMap<u64, u64> = HashMap::new();
    for r in records {
        match r.event {
            EventKind::Hit | EventKind::Miss | EventKind::ModificationMiss => {
                accesses.entry(r.doc).or_default().push(r.index);
            }
            EventKind::Insert => {
                last_insert.insert(r.doc, r.index);
            }
            _ => {}
        }
    }

    let mut per_type: Vec<TypeForensics> = vec![TypeForensics::default(); DocumentType::ALL.len()];
    let mut reason_counts: HashMap<ReasonKind, u64> = HashMap::new();
    let mut regret: HashMap<u64, DocRegret> = HashMap::new();
    let mut evictions = 0u64;
    let mut evictions_with_reason = 0u64;
    // Replay in order so "last insert before this eviction" is exact.
    let mut insert_at: HashMap<u64, u64> = HashMap::new();
    for r in records {
        match r.event {
            EventKind::Insert => {
                insert_at.insert(r.doc, r.index);
            }
            EventKind::Evict => {
                evictions += 1;
                if r.reason.kind != ReasonKind::None {
                    evictions_with_reason += 1;
                }
                *reason_counts.entry(r.reason.kind).or_default() += 1;
                let t = (r.doc_type as usize).min(DocumentType::ALL.len() - 1);
                let forensics = &mut per_type[t];
                forensics.evictions += 1;
                if let Some(&inserted) = insert_at.get(&r.doc) {
                    forensics.age_histogram[bucket(r.index.saturating_sub(inserted))] += 1;
                }
                // Reuse distance: the victim's next access strictly after
                // the eviction.
                let next = accesses.get(&r.doc).and_then(|idx| {
                    let at = idx.partition_point(|&i| i <= r.index);
                    idx.get(at).copied()
                });
                match next {
                    Some(next) => {
                        let distance = next - r.index;
                        forensics.reuse_histogram[bucket(distance)] += 1;
                        if distance <= window {
                            forensics.wasted += 1;
                            let entry = regret.entry(r.doc).or_insert(DocRegret {
                                doc: r.doc,
                                doc_type: r.doc_type,
                                wasted: 0,
                                min_reuse_distance: u64::MAX,
                            });
                            entry.wasted += 1;
                            entry.min_reuse_distance = entry.min_reuse_distance.min(distance);
                        }
                    }
                    None => forensics.never_reused += 1,
                }
            }
            _ => {}
        }
    }

    let mut reason_counts: Vec<(ReasonKind, u64)> = reason_counts.into_iter().collect();
    reason_counts.sort_by_key(|&(kind, count)| (std::cmp::Reverse(count), kind.label()));
    let mut top_regret: Vec<DocRegret> = regret.into_values().collect();
    top_regret.sort_by_key(|d| (std::cmp::Reverse(d.wasted), d.min_reuse_distance, d.doc));

    ForensicsReport {
        records: records.len(),
        evictions,
        evictions_with_reason,
        reason_counts,
        per_type: DocumentType::ALL
            .iter()
            .map(|&ty| (ty, per_type[ty.index()].clone()))
            .collect(),
        top_regret,
    }
}

fn render_histogram(out: &mut String, histogram: &[u64; BUCKETS]) {
    let mut any = false;
    for (i, &count) in histogram.iter().enumerate() {
        if count > 0 {
            let _ = write!(out, " {}:{}", bucket_label(i), count);
            any = true;
        }
    }
    if !any {
        out.push_str(" (none)");
    }
}

fn render(
    source: &str,
    manifest: Option<&str>,
    report: &ForensicsReport,
    window: u64,
    top: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "bundle: {source}");
    if let Some(manifest) = manifest {
        let _ = writeln!(out, "manifest: {}", manifest.trim_end());
    }
    let _ = writeln!(
        out,
        "records: {} ({} evictions, {} with a policy reason payload)",
        report.records, report.evictions, report.evictions_with_reason
    );

    let _ = writeln!(out, "\neviction reasons:");
    if report.reason_counts.is_empty() {
        let _ = writeln!(out, "  (no evictions)");
    }
    for &(kind, count) in &report.reason_counts {
        let _ = writeln!(out, "  {:<14} {count}", kind.label());
    }

    let _ = writeln!(
        out,
        "\nwasted evictions (victim re-requested within {window} requests):"
    );
    let _ = writeln!(
        out,
        "  {:<13} {:>9} {:>7} {:>12} {:>6}",
        "type", "evictions", "wasted", "never-reused", "rate"
    );
    for (ty, f) in &report.per_type {
        let rate = if f.evictions > 0 {
            f.wasted as f64 / f.evictions as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:<13} {:>9} {:>7} {:>12} {:>5.1}%",
            ty.label(),
            f.evictions,
            f.wasted,
            f.never_reused,
            100.0 * rate
        );
    }

    let _ = writeln!(
        out,
        "\neviction age (requests resident before eviction), per type:"
    );
    for (ty, f) in &report.per_type {
        if f.evictions == 0 {
            continue;
        }
        let _ = write!(out, "  {:<13}", ty.label());
        render_histogram(&mut out, &f.age_histogram);
        out.push('\n');
    }

    let _ = writeln!(
        out,
        "\nreuse distance at eviction (requests until the victim returns), per type:"
    );
    for (ty, f) in &report.per_type {
        if f.evictions == 0 {
            continue;
        }
        let _ = write!(out, "  {:<13}", ty.label());
        render_histogram(&mut out, &f.reuse_histogram);
        out.push('\n');
    }

    let _ = writeln!(out, "\ntop regret documents (most wasted evictions first):");
    if report.top_regret.is_empty() {
        let _ = writeln!(out, "  (no wasted evictions in the record window)");
    }
    for d in report.top_regret.iter().take(top) {
        let ty = DocumentType::ALL
            .get(d.doc_type as usize)
            .map_or("?", |t| t.label());
        let _ = writeln!(
            out,
            "  doc {:<12} ({ty}): {} wasted eviction{}, min reuse distance {}",
            d.doc,
            d.wasted,
            if d.wasted == 1 { "" } else { "s" },
            d.min_reuse_distance
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use webcache_obs::flight::Reason;

    fn rec(index: u64, doc: u64, event: EventKind, reason: Reason) -> DecisionRecord {
        DecisionRecord {
            index,
            doc,
            doc_type: DocumentType::Html.index() as u8,
            size: 100,
            event,
            reason,
        }
    }

    /// doc 1: inserted at 0, evicted at 5 (age 5), re-requested at 7
    /// (reuse distance 2 → wasted). doc 2: inserted at 1, evicted at 6,
    /// never again (never_reused).
    fn sample() -> Vec<DecisionRecord> {
        vec![
            rec(0, 1, EventKind::Miss, Reason::none()),
            rec(0, 1, EventKind::Insert, Reason::none()),
            rec(1, 2, EventKind::Miss, Reason::none()),
            rec(1, 2, EventKind::Insert, Reason::none()),
            rec(5, 1, EventKind::Evict, Reason::greedy_dual(1.5, 0.5)),
            rec(6, 2, EventKind::Evict, Reason::greedy_dual(2.0, 1.5)),
            rec(7, 1, EventKind::Miss, Reason::none()),
        ]
    }

    #[test]
    fn analyze_finds_wasted_and_never_reused_evictions() {
        let report = analyze(&sample(), 16);
        assert_eq!(report.evictions, 2);
        assert_eq!(report.evictions_with_reason, 2);
        assert_eq!(report.reason_counts, vec![(ReasonKind::GreedyDual, 2)]);
        let html = &report.per_type[DocumentType::Html.index()].1;
        assert_eq!(html.evictions, 2);
        assert_eq!(html.wasted, 1);
        assert_eq!(html.never_reused, 1);
        // Age 5 lands in the ≤8 bucket (index 3); reuse distance 2 in ≤2.
        assert_eq!(html.age_histogram[bucket(5)], 2, "both victims aged 5");
        assert_eq!(html.reuse_histogram[bucket(2)], 1);
        assert_eq!(report.top_regret.len(), 1);
        assert_eq!(report.top_regret[0].doc, 1);
        assert_eq!(report.top_regret[0].min_reuse_distance, 2);
    }

    #[test]
    fn tight_window_discounts_late_reuse() {
        let report = analyze(&sample(), 1);
        let html = &report.per_type[DocumentType::Html.index()].1;
        assert_eq!(html.wasted, 0, "distance 2 > window 1");
        assert!(report.top_regret.is_empty());
    }

    #[test]
    fn render_mentions_every_section() {
        let report = analyze(&sample(), 16);
        let text = render("test.jsonl", None, &report, 16, 10);
        for needle in [
            "records: 7 (2 evictions, 2 with a policy reason payload)",
            "greedy_dual",
            "wasted evictions",
            "eviction age",
            "reuse distance at eviction",
            "top regret documents",
            "doc 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn bundle_round_trips_through_inspect() {
        let dir =
            std::env::temp_dir().join(format!("webcache-forensics-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let jsonl: String = sample()
            .iter()
            .map(|r| format!("{}\n", r.to_json()))
            .collect();
        let meta = BundleMeta {
            kind: "hit_rate_collapse",
            doc_type: "HTML",
            seq: 0,
            policy: "LRU",
            capacity_bytes: 4096,
            unix_ms: 1_700_000_000_000,
        };
        let bundle = write_bundle(&dir, &meta, &jsonl, "{\"metrics\": []}").unwrap();
        assert!(bundle
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("bundle-1700000000000-000-hit_rate_collapse"));

        let args = Args::parse(
            &[
                "--bundle".to_string(),
                bundle.display().to_string(),
                "--window".to_string(),
                "16".to_string(),
            ],
            &[],
        )
        .unwrap();
        let text = inspect(&args).unwrap();
        assert!(
            text.contains("2 evictions, 2 with a policy reason payload"),
            "{text}"
        );
        assert!(text.contains("\"kind\": \"hit_rate_collapse\""), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }
}
