//! # webcache-cli
//!
//! The library behind the `webcache` command-line tool. All subcommands
//! are plain functions from parsed arguments to output text, so the
//! whole surface is unit-testable; the binary is a thin wrapper.
//!
//! ```text
//! webcache generate     --profile dfn --scale 256 --seed 1 --out trace.wct
//! webcache characterize --trace trace.wct [--name DFN]
//! webcache characterize --squid access.log
//! webcache simulate     --trace trace.wct --policy 'gd*(p)' --capacity 64MiB
//! webcache simulate     --trace trace.wct --policy tinylfu+slru
//! webcache sweep        --trace trace.wct --policies lru,lfu-da,gds1,gd*1 [--csv]
//! webcache sweep        --trace trace.wct --policy tinylfu+slru --policy arc --policy s3fifo
//! webcache stats        --trace trace.wct --policy lru --window 5000 --json
//! webcache convert      --squid access.log --out trace.wct
//! ```

#![warn(missing_docs)]

pub mod args;
pub mod capacity;
mod commands;
pub mod forensics;
pub mod serve;
pub mod top;

pub use args::{ArgError, Args};
pub use capacity::parse_capacity;
pub use serve::{serve_with, ServeOptions};

use std::fmt;

/// Errors surfaced to the command-line user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Trace parsing failure.
    Trace(webcache_trace::TraceError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "i/o: {e}"),
            CliError::Trace(e) => write!(f, "trace: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<webcache_trace::TraceError> for CliError {
    fn from(e: webcache_trace::TraceError) -> Self {
        CliError::Trace(e)
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.to_string())
    }
}

const USAGE: &str = "\
webcache — trace-driven web cache replacement evaluation

subcommands:
  generate     --profile dfn|rtp [--scale DENOM] [--seed N] --out FILE
               [--format text|bin]
               synthesize a workload trace
  characterize (--trace FILE | --squid FILE) [--name NAME]
               print the Section-2 tables (properties, per-type mix,
               size statistics, alpha, beta)
  simulate     --trace FILE --policy SPEC [--capacity SIZE|PCT%]
               [--warmup FRAC] [--occupancy N]
               run one policy over a trace and report per-type rates
  sweep        --trace FILE [--policies a,b,c] [--policy SPEC ...]
               [--fractions f1,f2,...]
               [--csv] [--progress] [--batched | --serial] [--shards N]
               policy x cache-size grid (the Figure 2/3 engine);
               --progress reports per-cell completion on stderr;
               batched replay is the default (identical results,
               faster for the heap-backed policies) — --serial forces
               the request-at-a-time loop; --shards N (power of two)
               runs every cell through an N-shard engine to quantify
               the eviction-quality cost of sharding (--shards 1 is
               bit-identical to the default); --policy is repeatable
               and takes full specs (--policy tinylfu+slru --policy arc)
  stats        --trace FILE --policy SPEC [--capacity SIZE|PCT%]
               [--warmup FRAC] [--window N | --window-bytes SIZE]
               [--json] [--csv]
               windowed per-type hit-rate / byte-hit-rate time series
               plus eviction and admission churn (JSON and CSV;
               default window: a tenth of the measured region)
  convert      (--squid FILE | --trace FILE) --out FILE
               [--format text|bin]
               preprocess a Squid access.log into the compact format,
               or re-encode an existing trace (e.g. text -> bin)
  profile      [--trace FILE | --squid FILE] [--policies a,b,c]
               [--policy SPEC ...]
               [--capacity SIZE|PCT%] [--scale DENOM] [--seed N]
               [--out-dir DIR] [--quick]
               instrumented replay + span-timed sweep; writes
               trace.json (chrome://tracing / Perfetto), metrics.prom
               (Prometheus text) and metrics.json to --out-dir
               (default profile-out); with no input trace a synthetic
               DFN workload is generated (--quick: a smaller one)
  hierarchy    --trace FILE [--leaves N] [--leaf-capacity SIZE|PCT%]
               [--parent-capacity SIZE|PCT%] [--leaf-policy P]
               [--parent-policy P]
               simulate institutional leaves behind a backbone parent
  serve        (--trace FILE | --workload dfn|rtp) [--policy SPEC]
               [--capacity SIZE|PCT%] [--warmup FRAC] [--scale DENOM]
               [--seed N] [--rate REQ_PER_SEC] [--passes N]
               [--port PORT] [--log-level trace|debug|info|warn|error]
               [--log-file FILE] [--anomaly-window N] [--quick]
               [--shards N] [--clients M] [--flight-capacity N]
               [--bundle-dir DIR] [--max-bundles N]
               [--slo-hit-rate FRAC] [--slo-p99-ms MS] [--slo-window N]
               [--slo-burn MULT] [--dash-history N]
               replay continuously while answering GET /metrics
               (Prometheus text), /healthz, /snapshot, /debug/flight,
               /debug/doc?id=N, /query?metric=NAME&last=N (trailing
               window of any metric from the per-pass snapshot ring,
               depth --dash-history, default 120) and /dash (live HTML
               dashboard with sparklines) on 127.0.0.1:9184; JSONL
               event log on stderr or --log-file; online anomaly
               detectors raise webcache_anomaly_total and rate-limited
               warn records; online regret metrics (wasted evictions,
               gap to clairvoyant) export as webcache_regret_*; the
               flight recorder keeps the last --flight-capacity
               (default 4096) eviction/admission decision records with
               policy reason payloads; with --bundle-dir, an anomaly
               warning writes a post-mortem bundle (flight.jsonl +
               registry.json + manifest.json, at most --max-bundles,
               default 8); --shards N (power of two) with --clients M
               replays through the concurrent sharded engine and
               exports per-shard balance metrics (per-event observers
               are single-stream and stay off; flight recording stays
               on, without reason payloads); modeled per-request
               latency (two-link model: hits ride the fast local link,
               misses the slow origin link) exports p50/p90/p99/p999
               gauges per document type from windowed histograms;
               per-shard lock wait/hold histograms and contention
               ratios export as webcache_shard_lock_*; --slo-hit-rate
               and/or --slo-p99-ms arm multi-window burn-rate alerts
               (threshold --slo-burn, default 2.0x; long window
               --slo-window passes, default 12) that log once per
               breach episode and write a post-mortem bundle when
               --bundle-dir is set; Ctrl-C shuts down cleanly
  top          [--host H] [--port PORT] [--once] [--interval SECS]
               [--frames N]
               live terminal status view of a serve daemon (polls
               /snapshot): replay progress, modeled-latency quantiles
               per document type, per-shard lock contention, SLO burn
               rates; --once prints a single frame and exits
  inspect      --bundle DIR_OR_JSONL [--window N] [--top N]
               eviction forensics over a post-mortem bundle (or a bare
               flight.jsonl): per-type eviction-age and
               reuse-distance-at-eviction histograms, wasted evictions
               within --window (default 1024), top-regret documents,
               and the policy reason payloads behind evictions
  help         print this text

policies: every SPEC is [admission+]replacement
  replacement: lru fifo lfu size lfu-da slru lru2 arc s3fifo gds(1)
               gds(p) gdsf(1) gdsf(p) gd*(1) gd*(p)
  admission:   tinylfu (frequency-sketch W-TinyLFU gate),
               2hit[:WINDOW] (second-hit, default window 4096),
               max:BYTES (size ceiling), all (the default)
  examples:    lru  tinylfu+slru  2hit:1024+lru  max:65536+gd*(p)
  `simulate --policy oracle` runs the clairvoyant (Belady-style)
  upper bound
capacities: raw bytes (1048576), units (64KiB, 32MiB, 1GiB) or a
            percentage of the trace's overall size (5%)
";

/// Runs a full command line (without the program name), returning the
/// text to print on stdout.
///
/// # Errors
///
/// Returns [`CliError::Usage`] on malformed command lines and wraps I/O
/// and parse failures otherwise.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Ok(USAGE.to_owned());
    };
    // Boolean switches are declared per subcommand so that a switch of
    // one subcommand given to another errors instead of silently eating
    // the next flag as its value.
    match command.as_str() {
        "generate" => commands::generate(&Args::parse(rest, &[])?),
        "characterize" => commands::characterize(&Args::parse(rest, &[])?),
        "simulate" => commands::simulate(&Args::parse(rest, &["markdown"])?),
        "sweep" => commands::sweep(&Args::parse_with_repeats(
            rest,
            &["csv", "progress", "batched", "serial"],
            &["policy"],
        )?),
        "stats" => commands::stats(&Args::parse(rest, &["json", "csv"])?),
        "convert" => commands::convert(&Args::parse(rest, &[])?),
        "hierarchy" => commands::hierarchy(&Args::parse(rest, &[])?),
        "profile" => commands::profile(&Args::parse_with_repeats(rest, &["quick"], &["policy"])?),
        "serve" => serve::serve(&Args::parse(rest, &["quick"])?),
        "top" => top::top(&Args::parse(rest, &["once"])?),
        "inspect" => forensics::inspect(&Args::parse(rest, &[])?),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_and_help_print_usage() {
        assert!(run(&[]).unwrap().contains("subcommands"));
        assert!(run(&argv("help")).unwrap().contains("policies:"));
    }

    #[test]
    fn unknown_subcommand_errors() {
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }
}
