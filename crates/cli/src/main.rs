//! `webcache` — command-line front end for the webcache workspace.
//!
//! See `webcache help` for usage; all logic lives in the library so it
//! can be tested without spawning processes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match webcache_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `webcache help` for usage");
            ExitCode::from(2)
        }
    }
}
