//! `webcache serve` — the live observability daemon.
//!
//! Runs a continuous replay ([`ReplayLoop`]) on a background thread
//! while the calling thread answers HTTP requests. Every endpoint lives
//! in one routing table ([`route_paths`] lists them):
//!
//! * `GET /metrics` — Prometheus text exposition of the live registry
//!   (simulator counters, anomaly totals, regret gauges, serve-loop
//!   gauges);
//! * `GET /healthz` — liveness plus replay progress as JSON;
//! * `GET /snapshot` — the full registry snapshot as JSON;
//! * `GET /debug/flight` — the flight recorder's retained decision
//!   records (merged across shards, ordered by request index) as JSON;
//! * `GET /debug/doc?id=N` — the retained decision history of one
//!   document as JSON.
//!
//! The replay is fed either by one fixed trace file replayed pass after
//! pass, or by the endless [`WorkloadStream`] generator (one epoch per
//! pass). Observers — profiling counters, the anomaly detectors, the
//! regret tracker, the flight recorder, the structured event log —
//! persist across passes, so EWMA baselines, rings and totals accumulate
//! for the daemon's lifetime. With `--bundle-dir` set, an anomaly that
//! logs a warning also snapshots the flight ring and the registry into a
//! post-mortem bundle (see [`crate::forensics`]), rate limited by the
//! anomaly cooldown and capped by `--max-bundles`.
//!
//! Shutdown is cooperative: SIGINT (or anything else raising the shared
//! flag) stops the HTTP accept loop within one poll interval and the
//! replay loop at the next pass boundary; [`serve_with`] then joins both
//! and returns a summary.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use webcache_core::PolicySpec;
use webcache_obs::{
    merge_sorted, Counter, FlightSink, Gauge, HttpRequest, HttpResponse, HttpServer, Level, Logger,
    ReasonChannel, Registry, SharedRecorder,
};
use webcache_sim::{
    AnomalyConfig, AnomalyObserver, AnomalyTrigger, FixedSource, FlightObserver, LiveStatus,
    LogObserver, ProfileObserver, RegretConfig, RegretTracker, ReplayLoop, ShardedReplayLoop,
    SimulationConfig, Simulator, TraceSource,
};
use webcache_trace::{DenseTrace, Trace};
use webcache_workload::{WorkloadProfile, WorkloadStream};

use crate::args::Args;
use crate::capacity::{parse_capacity, CapacitySpec};
use crate::forensics::{self, BundleMeta};
use crate::CliError;

/// Default listen port (loopback only).
pub const DEFAULT_PORT: u16 = 9184;

/// Default flight-recorder ring capacity (decision records retained).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Default cap on post-mortem bundles written per serve run.
pub const DEFAULT_MAX_BUNDLES: usize = 8;

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Raised by the SIGINT handler; [`sigint_flag`] hands it to callers.
#[cfg(unix)]
static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    SIGINT_FLAG.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs the SIGINT handler (idempotent) and returns the flag it
/// raises. The handler only stores to an atomic — async-signal-safe —
/// and the serve loops poll the flag, so Ctrl-C lands at the next poll
/// interval / pass boundary rather than tearing the process down.
#[cfg(unix)]
pub fn sigint_flag() -> &'static AtomicBool {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
    &SIGINT_FLAG
}

/// What feeds the replay loop.
enum Source {
    /// One trace file, replayed on every pass.
    Fixed(FixedSource),
    /// The endless workload generator, one epoch per pass. The stream
    /// is boxed to keep the two variants comparably sized.
    Stream {
        stream: Box<WorkloadStream>,
        per_pass: usize,
        /// Epoch 0, pre-generated to resolve the cache capacity.
        pending: Option<Trace>,
        dense: Option<DenseTrace>,
    },
}

impl TraceSource for Source {
    fn next_pass(&mut self, pass: u64) -> Option<&DenseTrace> {
        match self {
            Source::Fixed(fixed) => fixed.next_pass(pass),
            Source::Stream {
                stream,
                per_pass,
                pending,
                dense,
            } => {
                let trace = pending
                    .take()
                    .unwrap_or_else(|| stream.take_trace(*per_pass));
                if trace.is_empty() {
                    return None;
                }
                *dense = Some(DenseTrace::build(&trace));
                dense.as_ref()
            }
        }
    }
}

/// Everything `serve` needs, resolved from the command line. Built by
/// [`ServeOptions::from_args`] so the end-to-end tests exercise the same
/// parsing as the binary.
pub struct ServeOptions {
    source: Source,
    spec: PolicySpec,
    config: SimulationConfig,
    rate: Option<f64>,
    max_passes: Option<u64>,
    port: u16,
    logger: Logger,
    anomaly: AnomalyConfig,
    shards: usize,
    clients: usize,
    flight_capacity: usize,
    bundle_dir: Option<PathBuf>,
    max_bundles: usize,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("spec", &self.spec)
            .field("port", &self.port)
            .field("rate", &self.rate)
            .field("max_passes", &self.max_passes)
            .field("shards", &self.shards)
            .field("clients", &self.clients)
            .field("flight_capacity", &self.flight_capacity)
            .field("bundle_dir", &self.bundle_dir)
            .finish_non_exhaustive()
    }
}

impl ServeOptions {
    /// Resolves options from parsed arguments. See the usage text for
    /// the flag reference.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on contradictory or malformed flags, I/O
    /// errors from reading `--trace` or opening `--log-file`.
    pub fn from_args(args: &Args) -> Result<ServeOptions, CliError> {
        let quick = args.switch("quick");
        let level = match args.get("log-level") {
            None => Level::Info,
            Some(raw) => Level::parse(raw)
                .ok_or_else(|| usage(format!("unknown log level `{raw}` (trace..error)")))?,
        };
        let logger = match args.get("log-file") {
            Some(path) => Logger::to_file(std::path::Path::new(path), level)?,
            None => Logger::stderr(level),
        };

        // The replay source: a trace file, or the endless generator.
        let (source, reference_trace_bytes) = match (args.get("trace"), args.get("workload")) {
            (Some(path), None) => {
                let trace = crate::commands::load_trace(path)?;
                if trace.is_empty() {
                    return Err(usage(format!("trace `{path}` is empty")));
                }
                let bytes = trace.overall_size();
                (Source::Fixed(FixedSource::new(&trace)), bytes)
            }
            (None, Some(name)) => {
                let profile = match name.to_ascii_lowercase().as_str() {
                    "dfn" => WorkloadProfile::dfn(),
                    "rtp" => WorkloadProfile::rtp(),
                    other => return Err(usage(format!("unknown workload `{other}` (dfn|rtp)"))),
                };
                let denom: f64 =
                    args.get_parsed("scale")?
                        .unwrap_or(if quick { 4096.0 } else { 256.0 });
                if denom < 1.0 {
                    return Err(usage("--scale expects a denominator ≥ 1"));
                }
                let seed: u64 = args.get_parsed("seed")?.unwrap_or(1);
                let mut stream = WorkloadStream::new(profile.scaled(1.0 / denom), seed);
                let per_pass = stream.epoch_len();
                let first = stream.take_trace(per_pass);
                let bytes = first.overall_size();
                (
                    Source::Stream {
                        stream: Box::new(stream),
                        per_pass,
                        pending: Some(first),
                        dense: None,
                    },
                    bytes,
                )
            }
            _ => {
                return Err(usage(
                    "give exactly one of --trace FILE or --workload dfn|rtp",
                ))
            }
        };

        let policy_name = args.get("policy").unwrap_or("lru");
        let spec: PolicySpec = policy_name
            .parse()
            .map_err(|e: webcache_core::ParseSpecError| usage(e.to_string()))?;
        let cap_spec = match args.get("capacity") {
            Some(raw) => parse_capacity(raw).map_err(usage)?,
            None => CapacitySpec::FractionOfTrace(0.05),
        };
        let capacity = cap_spec.resolve(reference_trace_bytes);
        let warmup: f64 = args.get_parsed("warmup")?.unwrap_or(0.10);
        if !(0.0..1.0).contains(&warmup) {
            return Err(usage("--warmup expects a fraction in [0, 1)"));
        }
        let rate: Option<f64> = args.get_parsed("rate")?;
        // NaN slips through a plain `<= 0.0` check and would blow up the
        // pacer's Duration math — demand a finite positive rate.
        if rate.is_some_and(|r| !r.is_finite() || r <= 0.0) {
            return Err(usage("--rate expects a finite requests/second > 0"));
        }
        let shards: usize = args.get_parsed("shards")?.unwrap_or(1);
        webcache_core::validate_shard_count(shards).map_err(|e| usage(format!("--shards: {e}")))?;
        let clients: usize = args.get_parsed("clients")?.unwrap_or(1);
        if clients == 0 {
            return Err(usage("--clients expects a thread count ≥ 1"));
        }
        let max_passes: Option<u64> = args.get_parsed("passes")?;
        let port: u16 = args.get_parsed("port")?.unwrap_or(DEFAULT_PORT);
        let mut anomaly = AnomalyConfig::default();
        if let Some(window) = args.get_parsed::<u64>("anomaly-window")? {
            if window == 0 {
                return Err(usage("--anomaly-window expects a positive request count"));
            }
            anomaly.window = window;
        }
        let flight_capacity: usize = args
            .get_parsed("flight-capacity")?
            .unwrap_or(DEFAULT_FLIGHT_CAPACITY);
        if flight_capacity == 0 {
            return Err(usage("--flight-capacity expects a positive record count"));
        }
        let bundle_dir: Option<PathBuf> = args.get("bundle-dir").map(PathBuf::from);
        let max_bundles: usize = args
            .get_parsed("max-bundles")?
            .unwrap_or(DEFAULT_MAX_BUNDLES);
        if max_bundles == 0 {
            return Err(usage("--max-bundles expects a bundle count ≥ 1"));
        }

        Ok(ServeOptions {
            source,
            spec,
            config: SimulationConfig::builder()
                .capacity(capacity)
                .warmup_fraction(warmup)
                .build(),
            rate,
            max_passes,
            port,
            logger,
            anomaly,
            shards,
            clients,
            flight_capacity,
            bundle_dir,
            max_bundles,
        })
    }
}

/// Everything a route handler can reach: shared read-only views of the
/// daemon's state.
struct RouteContext<'a> {
    registry: &'a Registry,
    status: &'a LiveStatus,
    policy: &'a str,
    started: Instant,
    /// One flight ring per shard (exactly one in serial mode).
    flight: &'a [SharedRecorder],
}

/// One servable endpoint: its path and its handler.
type Route = (
    &'static str,
    fn(&RouteContext<'_>, &HttpRequest) -> HttpResponse,
);

/// The routing table. Adding an endpoint means adding a row here — the
/// dispatcher, the per-path request counters and the 404 coverage test
/// all iterate this table.
const ROUTES: [Route; 5] = [
    ("/metrics", route_metrics),
    ("/healthz", route_healthz),
    ("/snapshot", route_snapshot),
    ("/debug/flight", route_debug_flight),
    ("/debug/doc", route_debug_doc),
];

/// The endpoint paths served, in routing-table order (also the `path`
/// label values of `webcache_http_requests_total`).
pub fn route_paths() -> impl Iterator<Item = &'static str> {
    ROUTES.iter().map(|(path, _)| *path)
}

fn route_metrics(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    HttpResponse::text(ctx.registry.prometheus_text())
}

fn route_snapshot(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    HttpResponse::json(ctx.registry.json_snapshot())
}

fn route_healthz(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    HttpResponse::json(format!(
        "{{\"status\": \"ok\", \"replaying\": {}, \"passes\": {}, \
         \"requests_replayed\": {}, \"last_pass_req_per_sec\": {:.1}, \
         \"uptime_ms\": {}, \"policy\": \"{}\"}}",
        ctx.status.replaying(),
        ctx.status.passes(),
        ctx.status.requests(),
        ctx.status.last_pass_req_per_sec(),
        ctx.started.elapsed().as_millis(),
        ctx.policy,
    ))
}

/// Renders decision records as a JSON array body.
fn records_json(records: &[webcache_obs::DecisionRecord]) -> String {
    let rendered: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    rendered.join(", ")
}

fn route_debug_flight(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    let records = merge_sorted(ctx.flight);
    let total: u64 = ctx.flight.iter().map(SharedRecorder::total).sum();
    let capacity: usize = ctx.flight.iter().map(SharedRecorder::capacity).sum();
    HttpResponse::json(format!(
        "{{\"total\": {total}, \"capacity\": {capacity}, \"shards\": {}, \"records\": [{}]}}",
        ctx.flight.len(),
        records_json(&records),
    ))
}

fn route_debug_doc(ctx: &RouteContext<'_>, req: &HttpRequest) -> HttpResponse {
    let id = req.query.as_deref().and_then(|q| {
        q.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=')?;
            (key == "id").then(|| value.parse::<u64>().ok()).flatten()
        })
    });
    let Some(id) = id else {
        return HttpResponse::status(400, "expected ?id=<numeric document id>\n");
    };
    let mut records: Vec<webcache_obs::DecisionRecord> = ctx
        .flight
        .iter()
        .flat_map(|r| r.records_for_doc(id))
        .collect();
    records.sort_by_key(|r| r.index);
    HttpResponse::json(format!(
        "{{\"doc\": {id}, \"records\": [{}]}}",
        records_json(&records),
    ))
}

/// Routes one HTTP request through [`ROUTES`].
fn respond(req: &HttpRequest, ctx: &RouteContext<'_>, http_counters: &[Counter]) -> HttpResponse {
    match ROUTES.iter().position(|(path, _)| *path == req.path) {
        Some(i) => {
            http_counters[i].inc();
            (ROUTES[i].1)(ctx, req)
        }
        None => {
            http_counters[ROUTES.len()].inc();
            HttpResponse::not_found()
        }
    }
}

/// `webcache serve` with an injectable shutdown flag and readiness
/// callback (the binary passes [`sigint_flag`]; tests pass their own
/// flag, port 0, and collect the bound address from `on_ready`).
///
/// Returns after the flag rises (or the HTTP listener fails): the HTTP
/// loop stops within one poll interval, the replay loop at the current
/// pass boundary, and both are joined.
///
/// # Errors
///
/// Propagates listener bind/accept failures.
pub fn serve_with(
    opts: ServeOptions,
    shutdown: &AtomicBool,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<String, CliError> {
    let ServeOptions {
        mut source,
        spec,
        config,
        rate,
        max_passes,
        port,
        logger,
        anomaly,
        shards,
        clients,
        flight_capacity,
        bundle_dir,
        max_bundles,
    } = opts;
    let server = HttpServer::bind(("127.0.0.1", port))?;
    let addr = server.local_addr();
    let started = Instant::now();

    let registry = Registry::new();
    let label = spec.label();
    let build_info = registry.gauge(
        "webcache_build_info",
        "Build metadata carried in labels; the value is always 1.",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("features", "default"),
        ],
    );
    build_info.set(1.0);
    let passes_total = registry.counter(
        "webcache_serve_passes_total",
        "Completed replay passes.",
        &[],
    );
    let requests_total = registry.counter(
        "webcache_serve_requests_total",
        "Requests replayed across all passes.",
        &[],
    );
    let rps_gauge = registry.gauge(
        "webcache_serve_last_pass_req_per_sec",
        "Replay throughput of the last completed pass.",
        &[],
    );
    let hit_rate_gauge = registry.gauge(
        "webcache_serve_last_pass_hit_rate",
        "Overall hit rate of the last completed pass.",
        &[],
    );
    let replaying_gauge = registry.gauge(
        "webcache_serve_replaying",
        "1 while the replay loop is running, else 0.",
        &[],
    );
    let http_counters: Vec<Counter> = route_paths()
        .chain(std::iter::once("other"))
        .map(|path| {
            registry.counter(
                "webcache_http_requests_total",
                "HTTP requests served, by path.",
                &[("path", path)],
            )
        })
        .collect();

    // Per-shard balance metrics, registered even for the single-shard
    // daemon so the exposition surface is stable across configurations.
    let shard_labels: Vec<String> = (0..shards).map(|s| s.to_string()).collect();
    let shard_metrics: Vec<(Counter, Counter, Gauge)> = shard_labels
        .iter()
        .map(|s| {
            let labels = [("shard", s.as_str())];
            (
                registry.counter(
                    "webcache_serve_shard_requests_total",
                    "Requests routed to the shard, across all passes.",
                    &labels,
                ),
                registry.counter(
                    "webcache_serve_shard_bytes_total",
                    "Bytes requested from the shard, across all passes.",
                    &labels,
                ),
                registry.gauge(
                    "webcache_serve_shard_hit_rate",
                    "Shard hit rate over the last completed pass.",
                    &labels,
                ),
            )
        })
        .collect();
    let request_imbalance_gauge = registry.gauge(
        "webcache_serve_shard_request_imbalance",
        "Max/mean per-shard request count of the last pass (1.0 = even).",
        &[],
    );
    let byte_imbalance_gauge = registry.gauge(
        "webcache_serve_shard_byte_imbalance",
        "Max/mean per-shard requested bytes of the last pass (1.0 = even).",
        &[],
    );

    // One flight ring per shard; serial mode uses ring 0. HTTP handlers
    // snapshot the rings while the replay thread records into them.
    let recorders: Vec<SharedRecorder> = (0..shards)
        .map(|_| SharedRecorder::new(flight_capacity))
        .collect();

    let profile_obs = ProfileObserver::register(&registry, &label);
    let mut anomaly_obs = AnomalyObserver::register(&registry, logger.clone(), anomaly);
    if let Some(dir) = bundle_dir {
        // Post-mortem bundles: triggered when an anomaly logs a warning
        // (same rate limit), snapshotting the flight ring and the full
        // registry at the moment of detection.
        let registry = registry.clone();
        let recorders = recorders.clone();
        let logger = logger.clone();
        let policy = label.clone();
        let capacity_bytes = config.capacity.as_u64();
        let mut seq: u32 = 0;
        anomaly_obs.set_trigger(AnomalyTrigger::new(move |kind, doc_type| {
            if seq as usize >= max_bundles {
                return;
            }
            let unix_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0);
            let records = merge_sorted(&recorders);
            let jsonl: String = records
                .iter()
                .map(|r| format!("{}\n", r.to_json()))
                .collect();
            let meta = BundleMeta {
                kind: kind.label(),
                doc_type,
                seq,
                policy: &policy,
                capacity_bytes,
                unix_ms,
            };
            match forensics::write_bundle(&dir, &meta, &jsonl, &registry.json_snapshot()) {
                Ok(path) => {
                    seq += 1;
                    logger.info(
                        "serve",
                        "post-mortem bundle written",
                        &[
                            ("path", path.display().to_string().into()),
                            ("kind", kind.label().into()),
                            ("records", (records.len() as u64).into()),
                        ],
                    );
                }
                Err(e) => logger.warn(
                    "serve",
                    "post-mortem bundle write failed",
                    &[("error", e.to_string().into())],
                ),
            }
        }));
    }
    let log_obs = LogObserver::new(logger.clone());
    let regret_obs = RegretTracker::with_registry(RegretConfig::default(), &registry);
    let evict_reasons = ReasonChannel::new();
    let admit_reasons = ReasonChannel::new();
    // The flight observer is first in the chain so the ring already
    // holds the current event when the anomaly trigger snapshots it.
    let flight_obs = FlightObserver::with_reasons(
        recorders[0].clone(),
        evict_reasons.clone(),
        admit_reasons.clone(),
    );
    let mut observer = (
        flight_obs,
        (regret_obs, (profile_obs, (anomaly_obs, log_obs))),
    );

    // Concurrent mode trades the per-event observers (profiler, anomaly
    // detectors, regret tracker, event log — single-stream by design)
    // for client-thread parallelism and per-shard balance metrics; the
    // flight recorders stay on via per-shard observers, without reason
    // channels (the sharded caches are not sink-instrumented).
    let concurrent = shards > 1 || clients > 1;
    let replay = ReplayLoop {
        config,
        spec,
        rate,
        max_passes,
    };
    let sharded_replay = ShardedReplayLoop {
        config,
        spec,
        rate,
        max_passes,
        shards,
        clients,
    };
    let status = LiveStatus::new();
    logger.info(
        "serve",
        "listening",
        &[
            ("addr", addr.to_string().into()),
            ("policy", label.as_str().into()),
        ],
    );
    replaying_gauge.set(1.0);

    let shard_recorders = recorders.clone();
    let (summary, http_served) = std::thread::scope(|scope| {
        let replay_logger = logger.clone();
        let replay_handle = {
            let status = &status;
            let passes_total = passes_total.clone();
            let requests_total = requests_total.clone();
            let rps_gauge = rps_gauge.clone();
            let hit_rate_gauge = hit_rate_gauge.clone();
            let replaying_gauge = replaying_gauge.clone();
            let shard_metrics = &shard_metrics;
            let request_imbalance_gauge = request_imbalance_gauge.clone();
            let byte_imbalance_gauge = byte_imbalance_gauge.clone();
            scope.spawn(move || {
                let summary = if concurrent {
                    sharded_replay
                        .run_observed(
                            &mut source,
                            status,
                            shutdown,
                            |shard| FlightObserver::new(shard_recorders[shard].clone()),
                            |pass| {
                                let hit_rate = pass.report.overall().hit_rate();
                                passes_total.inc();
                                requests_total.add(pass.requests);
                                rps_gauge.set(pass.req_per_sec);
                                hit_rate_gauge.set(hit_rate);
                                for summary in &pass.report.per_shard {
                                    let (requests, bytes, rate) = &shard_metrics[summary.shard];
                                    requests.add(summary.requests);
                                    bytes.add(summary.bytes_requested);
                                    rate.set(if summary.requests > 0 {
                                        summary.hits as f64 / summary.requests as f64
                                    } else {
                                        0.0
                                    });
                                }
                                let balance = pass.report.balance();
                                request_imbalance_gauge.set(balance.request_imbalance);
                                byte_imbalance_gauge.set(balance.byte_imbalance);
                                replay_logger.info(
                                    "serve",
                                    "pass complete",
                                    &[
                                        ("pass", pass.pass.into()),
                                        ("requests", pass.requests.into()),
                                        ("req_per_sec", pass.req_per_sec.into()),
                                        ("hit_rate", hit_rate.into()),
                                        ("request_imbalance", balance.request_imbalance.into()),
                                    ],
                                );
                            },
                        )
                        .expect("shard count validated in from_args")
                } else {
                    // Instrumented serial replay: the policy pushes its
                    // eviction reasons and the cache its admission
                    // verdicts into the channels the flight observer
                    // drains.
                    replay.run_with(
                        &mut source,
                        &mut observer,
                        status,
                        shutdown,
                        move || {
                            let mut sim = Simulator::from_spec_instrumented(
                                spec,
                                config,
                                FlightSink::new(evict_reasons.clone()),
                            );
                            sim.set_admit_reasons(admit_reasons.clone());
                            sim
                        },
                        |pass| {
                            let hit_rate = pass.report.overall().hit_rate();
                            passes_total.inc();
                            requests_total.add(pass.requests);
                            rps_gauge.set(pass.req_per_sec);
                            hit_rate_gauge.set(hit_rate);
                            replay_logger.info(
                                "serve",
                                "pass complete",
                                &[
                                    ("pass", pass.pass.into()),
                                    ("requests", pass.requests.into()),
                                    ("req_per_sec", pass.req_per_sec.into()),
                                    ("hit_rate", hit_rate.into()),
                                ],
                            );
                        },
                    )
                };
                replaying_gauge.set(0.0);
                summary
            })
        };
        on_ready(addr);
        let served = server.serve(shutdown, |req| {
            let ctx = RouteContext {
                registry: &registry,
                status: &status,
                policy: &label,
                started,
                flight: &recorders,
            };
            respond(req, &ctx, &http_counters)
        });
        let summary = replay_handle.join().expect("replay thread");
        served.map(|n| (summary, n))
    })?;

    logger.info(
        "serve",
        "shut down",
        &[
            ("passes", summary.passes.into()),
            ("requests_replayed", summary.requests.into()),
            ("http_requests", http_served.into()),
        ],
    );
    Ok(format!(
        "served {http_served} HTTP requests on {addr}; replayed {} requests over {} passes\n",
        summary.requests, summary.passes,
    ))
}

/// `webcache serve` as invoked by the binary: SIGINT-driven shutdown.
pub fn serve(args: &Args) -> Result<String, CliError> {
    let opts = ServeOptions::from_args(args)?;
    #[cfg(unix)]
    let shutdown = sigint_flag();
    #[cfg(not(unix))]
    let shutdown = {
        static NEVER: AtomicBool = AtomicBool::new(false);
        &NEVER
    };
    serve_with(opts, shutdown, |_| {})
}
