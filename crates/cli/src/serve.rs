//! `webcache serve` — the live observability daemon.
//!
//! Runs a continuous replay ([`ReplayLoop`]) on a background thread
//! while the calling thread answers HTTP requests. Every endpoint lives
//! in one routing table ([`route_paths`] lists them):
//!
//! * `GET /metrics` — Prometheus text exposition of the live registry
//!   (simulator counters, anomaly totals, regret gauges, serve-loop
//!   gauges);
//! * `GET /healthz` — liveness plus replay progress as JSON;
//! * `GET /snapshot` — the full registry snapshot as JSON;
//! * `GET /debug/flight` — the flight recorder's retained decision
//!   records (merged across shards, ordered by request index) as JSON;
//! * `GET /debug/doc?id=N` — the retained decision history of one
//!   document as JSON;
//! * `GET /query?metric=NAME&last=N` — the trailing window of any
//!   registered metric from the in-process snapshot ring as JSON;
//! * `GET /dash` — a self-contained, self-refreshing HTML dashboard
//!   with inline-SVG sparklines rendered from the snapshot ring.
//!
//! Every pass boundary also drives the tail-latency machinery: the
//! [`LatencyObserver`] rotates its windowed percentile histograms and
//! republishes per-document-type `p50/p90/p99/p999` gauges, the
//! [`SloTracker`] folds the pass into its burn-rate windows (a breach
//! entering both the short and long window fires once and, with
//! `--bundle-dir`, writes a post-mortem bundle through the same writer
//! as the anomaly trigger), per-shard lock contention gauges refresh
//! from the [`ShardLockProbe`]s, and the registry is sampled into the
//! [`SnapshotRing`] that backs `/query` and `/dash`.
//!
//! The replay is fed either by one fixed trace file replayed pass after
//! pass, or by the endless [`WorkloadStream`] generator (one epoch per
//! pass). Observers — profiling counters, the anomaly detectors, the
//! regret tracker, the flight recorder, the structured event log —
//! persist across passes, so EWMA baselines, rings and totals accumulate
//! for the daemon's lifetime. With `--bundle-dir` set, an anomaly that
//! logs a warning also snapshots the flight ring and the registry into a
//! post-mortem bundle (see [`crate::forensics`]), rate limited by the
//! anomaly cooldown and capped by `--max-bundles`.
//!
//! Shutdown is cooperative: SIGINT (or anything else raising the shared
//! flag) stops the HTTP accept loop within one poll interval and the
//! replay loop at the next pass boundary; [`serve_with`] then joins both
//! and returns a summary.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use webcache_core::{PolicySpec, ShardLockProbe};
use webcache_obs::{
    merge_sorted, Counter, FlightSink, Gauge, HttpRequest, HttpResponse, HttpServer, Level, Logger,
    ReasonChannel, Registry, SharedRecorder, SnapshotRing,
};
use webcache_sim::latency_obs::DEFAULT_LATENCY_WINDOWS;
use webcache_sim::{
    AnomalyConfig, AnomalyObserver, AnomalyTrigger, FixedSource, FlightObserver, LatencyModel,
    LatencyObserver, LiveStatus, LogObserver, ProfileObserver, RegretConfig, RegretTracker,
    ReplayLoop, ShardedReplayLoop, SimulationConfig, Simulator, SloConfig, SloTracker, SloTrigger,
    TraceSource,
};
use webcache_trace::{DenseTrace, Trace};
use webcache_workload::{WorkloadProfile, WorkloadStream};

use crate::args::Args;
use crate::capacity::{parse_capacity, CapacitySpec};
use crate::forensics::{self, BundleMeta};
use crate::CliError;

/// Default listen port (loopback only).
pub const DEFAULT_PORT: u16 = 9184;

/// Default flight-recorder ring capacity (decision records retained).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Default cap on post-mortem bundles written per serve run.
pub const DEFAULT_MAX_BUNDLES: usize = 8;

/// Default snapshot-ring depth backing `/query` and `/dash` (one
/// snapshot per completed pass).
pub const DEFAULT_DASH_HISTORY: usize = 120;

/// Points returned by `/query` when `last` is not given.
pub const DEFAULT_QUERY_LAST: usize = 32;

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Raised by the SIGINT handler; [`sigint_flag`] hands it to callers.
#[cfg(unix)]
static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    SIGINT_FLAG.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs the SIGINT handler (idempotent) and returns the flag it
/// raises. The handler only stores to an atomic — async-signal-safe —
/// and the serve loops poll the flag, so Ctrl-C lands at the next poll
/// interval / pass boundary rather than tearing the process down.
#[cfg(unix)]
pub fn sigint_flag() -> &'static AtomicBool {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
    &SIGINT_FLAG
}

/// What feeds the replay loop.
enum Source {
    /// One trace file, replayed on every pass.
    Fixed(FixedSource),
    /// The endless workload generator, one epoch per pass. The stream
    /// is boxed to keep the two variants comparably sized.
    Stream {
        stream: Box<WorkloadStream>,
        per_pass: usize,
        /// Epoch 0, pre-generated to resolve the cache capacity.
        pending: Option<Trace>,
        dense: Option<DenseTrace>,
    },
}

impl TraceSource for Source {
    fn next_pass(&mut self, pass: u64) -> Option<&DenseTrace> {
        match self {
            Source::Fixed(fixed) => fixed.next_pass(pass),
            Source::Stream {
                stream,
                per_pass,
                pending,
                dense,
            } => {
                let trace = pending
                    .take()
                    .unwrap_or_else(|| stream.take_trace(*per_pass));
                if trace.is_empty() {
                    return None;
                }
                *dense = Some(DenseTrace::build(&trace));
                dense.as_ref()
            }
        }
    }
}

/// Everything `serve` needs, resolved from the command line. Built by
/// [`ServeOptions::from_args`] so the end-to-end tests exercise the same
/// parsing as the binary.
pub struct ServeOptions {
    source: Source,
    spec: PolicySpec,
    config: SimulationConfig,
    rate: Option<f64>,
    max_passes: Option<u64>,
    port: u16,
    logger: Logger,
    anomaly: AnomalyConfig,
    shards: usize,
    clients: usize,
    flight_capacity: usize,
    bundle_dir: Option<PathBuf>,
    max_bundles: usize,
    slo: SloConfig,
    dash_history: usize,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("spec", &self.spec)
            .field("port", &self.port)
            .field("rate", &self.rate)
            .field("max_passes", &self.max_passes)
            .field("shards", &self.shards)
            .field("clients", &self.clients)
            .field("flight_capacity", &self.flight_capacity)
            .field("bundle_dir", &self.bundle_dir)
            .field("slo", &self.slo)
            .field("dash_history", &self.dash_history)
            .finish_non_exhaustive()
    }
}

impl ServeOptions {
    /// Resolves options from parsed arguments. See the usage text for
    /// the flag reference.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on contradictory or malformed flags, I/O
    /// errors from reading `--trace` or opening `--log-file`.
    pub fn from_args(args: &Args) -> Result<ServeOptions, CliError> {
        let quick = args.switch("quick");
        let level = match args.get("log-level") {
            None => Level::Info,
            Some(raw) => Level::parse(raw)
                .ok_or_else(|| usage(format!("unknown log level `{raw}` (trace..error)")))?,
        };
        let logger = match args.get("log-file") {
            Some(path) => Logger::to_file(std::path::Path::new(path), level)?,
            None => Logger::stderr(level),
        };

        // The replay source: a trace file, or the endless generator.
        let (source, reference_trace_bytes) = match (args.get("trace"), args.get("workload")) {
            (Some(path), None) => {
                let trace = crate::commands::load_trace(path)?;
                if trace.is_empty() {
                    return Err(usage(format!("trace `{path}` is empty")));
                }
                let bytes = trace.overall_size();
                (Source::Fixed(FixedSource::new(&trace)), bytes)
            }
            (None, Some(name)) => {
                let profile = match name.to_ascii_lowercase().as_str() {
                    "dfn" => WorkloadProfile::dfn(),
                    "rtp" => WorkloadProfile::rtp(),
                    other => return Err(usage(format!("unknown workload `{other}` (dfn|rtp)"))),
                };
                let denom: f64 =
                    args.get_parsed("scale")?
                        .unwrap_or(if quick { 4096.0 } else { 256.0 });
                if denom < 1.0 {
                    return Err(usage("--scale expects a denominator ≥ 1"));
                }
                let seed: u64 = args.get_parsed("seed")?.unwrap_or(1);
                let mut stream = WorkloadStream::new(profile.scaled(1.0 / denom), seed);
                let per_pass = stream.epoch_len();
                let first = stream.take_trace(per_pass);
                let bytes = first.overall_size();
                (
                    Source::Stream {
                        stream: Box::new(stream),
                        per_pass,
                        pending: Some(first),
                        dense: None,
                    },
                    bytes,
                )
            }
            _ => {
                return Err(usage(
                    "give exactly one of --trace FILE or --workload dfn|rtp",
                ))
            }
        };

        let policy_name = args.get("policy").unwrap_or("lru");
        let spec: PolicySpec = policy_name
            .parse()
            .map_err(|e: webcache_core::ParseSpecError| usage(e.to_string()))?;
        let cap_spec = match args.get("capacity") {
            Some(raw) => parse_capacity(raw).map_err(usage)?,
            None => CapacitySpec::FractionOfTrace(0.05),
        };
        let capacity = cap_spec.resolve(reference_trace_bytes);
        let warmup: f64 = args.get_parsed("warmup")?.unwrap_or(0.10);
        if !(0.0..1.0).contains(&warmup) {
            return Err(usage("--warmup expects a fraction in [0, 1)"));
        }
        let rate: Option<f64> = args.get_parsed("rate")?;
        // NaN slips through a plain `<= 0.0` check and would blow up the
        // pacer's Duration math — demand a finite positive rate.
        if rate.is_some_and(|r| !r.is_finite() || r <= 0.0) {
            return Err(usage("--rate expects a finite requests/second > 0"));
        }
        let shards: usize = args.get_parsed("shards")?.unwrap_or(1);
        webcache_core::validate_shard_count(shards).map_err(|e| usage(format!("--shards: {e}")))?;
        let clients: usize = args.get_parsed("clients")?.unwrap_or(1);
        if clients == 0 {
            return Err(usage("--clients expects a thread count ≥ 1"));
        }
        let max_passes: Option<u64> = args.get_parsed("passes")?;
        let port: u16 = args.get_parsed("port")?.unwrap_or(DEFAULT_PORT);
        let mut anomaly = AnomalyConfig::default();
        if let Some(window) = args.get_parsed::<u64>("anomaly-window")? {
            if window == 0 {
                return Err(usage("--anomaly-window expects a positive request count"));
            }
            anomaly.window = window;
        }
        let flight_capacity: usize = args
            .get_parsed("flight-capacity")?
            .unwrap_or(DEFAULT_FLIGHT_CAPACITY);
        if flight_capacity == 0 {
            return Err(usage("--flight-capacity expects a positive record count"));
        }
        let bundle_dir: Option<PathBuf> = args.get("bundle-dir").map(PathBuf::from);
        let max_bundles: usize = args
            .get_parsed("max-bundles")?
            .unwrap_or(DEFAULT_MAX_BUNDLES);
        if max_bundles == 0 {
            return Err(usage("--max-bundles expects a bundle count ≥ 1"));
        }

        let mut slo = SloConfig::default();
        if let Some(target) = args.get_parsed::<f64>("slo-hit-rate")? {
            if !target.is_finite() || target <= 0.0 || target >= 1.0 {
                return Err(usage("--slo-hit-rate expects a hit-rate floor in (0, 1)"));
            }
            slo.hit_rate = Some(target);
        }
        if let Some(ms) = args.get_parsed::<f64>("slo-p99-ms")? {
            if !ms.is_finite() || ms <= 0.0 {
                return Err(usage(
                    "--slo-p99-ms expects a finite millisecond budget > 0",
                ));
            }
            slo.p99_latency_us = ((ms * 1_000.0) as u64).max(1).into();
        }
        if let Some(window) = args.get_parsed::<usize>("slo-window")? {
            if window == 0 {
                return Err(usage("--slo-window expects a pass count ≥ 1"));
            }
            slo.window_passes = window;
        }
        if let Some(burn) = args.get_parsed::<f64>("slo-burn")? {
            if !burn.is_finite() || burn <= 0.0 {
                return Err(usage("--slo-burn expects a finite burn-rate multiple > 0"));
            }
            slo.burn_threshold = burn;
        }
        let dash_history: usize = args
            .get_parsed("dash-history")?
            .unwrap_or(DEFAULT_DASH_HISTORY);
        if dash_history == 0 {
            return Err(usage("--dash-history expects a snapshot count ≥ 1"));
        }

        Ok(ServeOptions {
            source,
            spec,
            config: SimulationConfig::builder()
                .capacity(capacity)
                .warmup_fraction(warmup)
                .build(),
            rate,
            max_passes,
            port,
            logger,
            anomaly,
            shards,
            clients,
            flight_capacity,
            bundle_dir,
            max_bundles,
            slo,
            dash_history,
        })
    }
}

/// Wall-clock milliseconds since the Unix epoch (0 if the clock is
/// before the epoch), used to timestamp ring snapshots.
fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Writes post-mortem bundles for *any* alerting source — anomaly
/// detectors and SLO burn-rate breaches share one writer behind an
/// `Arc<Mutex<..>>`, so the `--max-bundles` cap and the bundle sequence
/// are global to the serve run rather than per trigger.
struct BundleWriter {
    dir: PathBuf,
    registry: Registry,
    recorders: Vec<SharedRecorder>,
    logger: Logger,
    policy: String,
    capacity_bytes: u64,
    max_bundles: usize,
    seq: u32,
}

impl BundleWriter {
    /// Snapshots the flight rings and the registry into one bundle
    /// directory named after `kind` (rate limiting is the trigger's
    /// job; the writer only enforces the global cap).
    fn write(&mut self, kind: &str, doc_type: &str) {
        if self.seq as usize >= self.max_bundles {
            return;
        }
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let records = merge_sorted(&self.recorders);
        let jsonl: String = records
            .iter()
            .map(|r| format!("{}\n", r.to_json()))
            .collect();
        let meta = BundleMeta {
            kind,
            doc_type,
            seq: self.seq,
            policy: &self.policy,
            capacity_bytes: self.capacity_bytes,
            unix_ms,
        };
        match forensics::write_bundle(&self.dir, &meta, &jsonl, &self.registry.json_snapshot()) {
            Ok(path) => {
                self.seq += 1;
                self.logger.info(
                    "serve",
                    "post-mortem bundle written",
                    &[
                        ("path", path.display().to_string().into()),
                        ("kind", kind.to_owned().into()),
                        ("records", (records.len() as u64).into()),
                    ],
                );
            }
            Err(e) => self.logger.warn(
                "serve",
                "post-mortem bundle write failed",
                &[("error", e.to_string().into())],
            ),
        }
    }
}

/// Everything a route handler can reach: shared read-only views of the
/// daemon's state.
struct RouteContext<'a> {
    registry: &'a Registry,
    status: &'a LiveStatus,
    policy: &'a str,
    started: Instant,
    /// One flight ring per shard (exactly one in serial mode).
    flight: &'a [SharedRecorder],
    /// The mini-TSDB behind `/query` and `/dash`, captured once per
    /// completed pass.
    ring: &'a SnapshotRing,
}

/// One servable endpoint: its path and its handler.
type Route = (
    &'static str,
    fn(&RouteContext<'_>, &HttpRequest) -> HttpResponse,
);

/// The routing table. Adding an endpoint means adding a row here — the
/// dispatcher, the per-path request counters and the 404 coverage test
/// all iterate this table.
const ROUTES: [Route; 7] = [
    ("/metrics", route_metrics),
    ("/healthz", route_healthz),
    ("/snapshot", route_snapshot),
    ("/debug/flight", route_debug_flight),
    ("/debug/doc", route_debug_doc),
    ("/query", route_query),
    ("/dash", route_dash),
];

/// The endpoint paths served, in routing-table order (also the `path`
/// label values of `webcache_http_requests_total`).
pub fn route_paths() -> impl Iterator<Item = &'static str> {
    ROUTES.iter().map(|(path, _)| *path)
}

fn route_metrics(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    HttpResponse::text(ctx.registry.prometheus_text())
}

fn route_snapshot(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    HttpResponse::json(ctx.registry.json_snapshot())
}

fn route_healthz(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    HttpResponse::json(format!(
        "{{\"status\": \"ok\", \"replaying\": {}, \"passes\": {}, \
         \"requests_replayed\": {}, \"last_pass_req_per_sec\": {:.1}, \
         \"uptime_ms\": {}, \"policy\": \"{}\"}}",
        ctx.status.replaying(),
        ctx.status.passes(),
        ctx.status.requests(),
        ctx.status.last_pass_req_per_sec(),
        ctx.started.elapsed().as_millis(),
        ctx.policy,
    ))
}

/// Renders decision records as a JSON array body.
fn records_json(records: &[webcache_obs::DecisionRecord]) -> String {
    let rendered: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    rendered.join(", ")
}

fn route_debug_flight(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    let records = merge_sorted(ctx.flight);
    let total: u64 = ctx.flight.iter().map(SharedRecorder::total).sum();
    let capacity: usize = ctx.flight.iter().map(SharedRecorder::capacity).sum();
    HttpResponse::json(format!(
        "{{\"total\": {total}, \"capacity\": {capacity}, \"shards\": {}, \"records\": [{}]}}",
        ctx.flight.len(),
        records_json(&records),
    ))
}

fn route_debug_doc(ctx: &RouteContext<'_>, req: &HttpRequest) -> HttpResponse {
    let id = req.query.as_deref().and_then(|q| {
        q.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=')?;
            (key == "id").then(|| value.parse::<u64>().ok()).flatten()
        })
    });
    let Some(id) = id else {
        return HttpResponse::status(400, "expected ?id=<numeric document id>\n");
    };
    let mut records: Vec<webcache_obs::DecisionRecord> = ctx
        .flight
        .iter()
        .flat_map(|r| r.records_for_doc(id))
        .collect();
    records.sort_by_key(|r| r.index);
    HttpResponse::json(format!(
        "{{\"doc\": {id}, \"records\": [{}]}}",
        records_json(&records),
    ))
}

/// Extracts one query-string parameter (`?key=value&...`).
fn query_param<'q>(req: &'q HttpRequest, key: &str) -> Option<&'q str> {
    req.query.as_deref().and_then(|q| {
        q.split('&').find_map(|pair| {
            let (k, value) = pair.split_once('=')?;
            (k == key).then_some(value)
        })
    })
}

fn route_query(ctx: &RouteContext<'_>, req: &HttpRequest) -> HttpResponse {
    let Some(metric) = query_param(req, "metric").filter(|m| !m.is_empty()) else {
        return HttpResponse::status(
            400,
            "expected ?metric=<flat sample name>[&last=N]; see /query?metric= on a \
             name from /snapshot (histograms export <name>_count and <name>_sum)\n",
        );
    };
    let last = match query_param(req, "last") {
        None => DEFAULT_QUERY_LAST,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return HttpResponse::status(400, "last expects a positive point count\n"),
        },
    };
    match ctx.ring.query_json(metric, last) {
        Some(body) => HttpResponse::json(body),
        None => HttpResponse::status(
            404,
            format!(
                "unknown metric `{metric}`; known: {}\n",
                ctx.ring.metric_names().join(", "),
            ),
        ),
    }
}

/// The `/dash` panel list: title, metric, and the label subset selecting
/// one series out of the metric's family.
#[allow(clippy::type_complexity)]
const DASH_PANELS: [(&str, &str, &[(&str, &str)]); 8] = [
    (
        "Hit rate (last pass)",
        "webcache_serve_last_pass_hit_rate",
        &[],
    ),
    (
        "Replay throughput (req/s)",
        "webcache_serve_last_pass_req_per_sec",
        &[],
    ),
    (
        "Modeled latency p50, overall (µs)",
        "webcache_modeled_latency_us",
        &[("doc_type", "overall"), ("quantile", "p50")],
    ),
    (
        "Modeled latency p99, overall (µs)",
        "webcache_modeled_latency_us",
        &[("doc_type", "overall"), ("quantile", "p99")],
    ),
    (
        "Requests replayed (total)",
        "webcache_serve_requests_total",
        &[],
    ),
    (
        "SLO burn rate: hit_rate (short window)",
        "webcache_slo_burn_rate",
        &[("slo", "hit_rate"), ("window", "short")],
    ),
    (
        "SLO burn rate: latency_p99 (short window)",
        "webcache_slo_burn_rate",
        &[("slo", "latency_p99"), ("window", "short")],
    ),
    (
        "Lock contention ratio (shard 0)",
        "webcache_shard_lock_contention_ratio",
        &[("shard", "0")],
    ),
];

/// Renders one sparkline as an inline SVG polyline (fixed 240×48
/// viewport, y-normalised over the series' own range).
fn sparkline_svg(series: &[(u64, f64)]) -> String {
    const W: f64 = 240.0;
    const H: f64 = 48.0;
    const PAD: f64 = 3.0;
    if series.is_empty() {
        return format!(
            "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\">\
             <text x=\"8\" y=\"30\" class=\"nodata\">no data yet</text></svg>"
        );
    }
    let min = series.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    let max = series
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let n = series.len();
    let points: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, &(_, v))| {
            let x = if n == 1 {
                W / 2.0
            } else {
                PAD + i as f64 / (n - 1) as f64 * (W - 2.0 * PAD)
            };
            let y = H - PAD - (v - min) / span * (H - 2.0 * PAD);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\">\
         <polyline fill=\"none\" stroke=\"#2a9d6f\" stroke-width=\"1.5\" points=\"{}\"/></svg>",
        points.join(" "),
    )
}

fn route_dash(ctx: &RouteContext<'_>, _req: &HttpRequest) -> HttpResponse {
    use std::fmt::Write as _;
    let mut page = String::with_capacity(8 * 1024);
    page.push_str(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
         <meta http-equiv=\"refresh\" content=\"2\">\
         <title>webcache dash</title><style>\
         body{font-family:monospace;background:#101418;color:#d8dee4;margin:1.5em}\
         h1{font-size:1.2em}.meta{color:#7a8691}\
         .grid{display:flex;flex-wrap:wrap;gap:1em}\
         .panel{background:#161c22;border:1px solid #242c34;border-radius:4px;padding:.6em .8em}\
         .panel h2{font-size:.8em;margin:0 0 .4em;color:#9fb0bf;font-weight:normal}\
         .last{color:#2a9d6f;font-size:.9em}\
         .nodata{fill:#566069;font-size:11px}\
         </style></head><body>\n",
    );
    let _ = writeln!(
        page,
        "<h1>webcache live dashboard</h1>\
         <p class=\"meta\">policy {} · pass {} · {} requests replayed · \
         up {} s · {} snapshots retained (refreshes every 2 s)</p>\n<div class=\"grid\">",
        ctx.policy,
        ctx.status.passes(),
        ctx.status.requests(),
        ctx.started.elapsed().as_secs(),
        ctx.ring.len(),
    );
    for (title, metric, labels) in DASH_PANELS {
        let series = ctx.ring.series(metric, labels);
        let last = series
            .last()
            .map(|&(_, v)| format!("{v:.3}"))
            .unwrap_or_else(|| "—".to_owned());
        let _ = writeln!(
            page,
            "<div class=\"panel\"><h2>{title}</h2>{}<div class=\"last\">last: {last}</div></div>",
            sparkline_svg(&series),
        );
    }
    page.push_str("</div></body></html>\n");
    HttpResponse::html(page)
}

/// Routes one HTTP request through [`ROUTES`].
fn respond(req: &HttpRequest, ctx: &RouteContext<'_>, http_counters: &[Counter]) -> HttpResponse {
    match ROUTES.iter().position(|(path, _)| *path == req.path) {
        Some(i) => {
            http_counters[i].inc();
            (ROUTES[i].1)(ctx, req)
        }
        None => {
            http_counters[ROUTES.len()].inc();
            HttpResponse::not_found()
        }
    }
}

/// `webcache serve` with an injectable shutdown flag and readiness
/// callback (the binary passes [`sigint_flag`]; tests pass their own
/// flag, port 0, and collect the bound address from `on_ready`).
///
/// Returns after the flag rises (or the HTTP listener fails): the HTTP
/// loop stops within one poll interval, the replay loop at the current
/// pass boundary, and both are joined.
///
/// # Errors
///
/// Propagates listener bind/accept failures.
pub fn serve_with(
    opts: ServeOptions,
    shutdown: &AtomicBool,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<String, CliError> {
    let ServeOptions {
        mut source,
        spec,
        config,
        rate,
        max_passes,
        port,
        logger,
        anomaly,
        shards,
        clients,
        flight_capacity,
        bundle_dir,
        max_bundles,
        slo,
        dash_history,
    } = opts;
    let server = HttpServer::bind(("127.0.0.1", port))?;
    let addr = server.local_addr();
    let started = Instant::now();

    let registry = Registry::new();
    let label = spec.label();
    let build_info = registry.gauge(
        "webcache_build_info",
        "Build metadata carried in labels; the value is always 1.",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("features", "default"),
        ],
    );
    build_info.set(1.0);
    let passes_total = registry.counter(
        "webcache_serve_passes_total",
        "Completed replay passes.",
        &[],
    );
    let requests_total = registry.counter(
        "webcache_serve_requests_total",
        "Requests replayed across all passes.",
        &[],
    );
    let rps_gauge = registry.gauge(
        "webcache_serve_last_pass_req_per_sec",
        "Replay throughput of the last completed pass.",
        &[],
    );
    let hit_rate_gauge = registry.gauge(
        "webcache_serve_last_pass_hit_rate",
        "Overall hit rate of the last completed pass.",
        &[],
    );
    let replaying_gauge = registry.gauge(
        "webcache_serve_replaying",
        "1 while the replay loop is running, else 0.",
        &[],
    );
    let http_counters: Vec<Counter> = route_paths()
        .chain(std::iter::once("other"))
        .map(|path| {
            registry.counter(
                "webcache_http_requests_total",
                "HTTP requests served, by path.",
                &[("path", path)],
            )
        })
        .collect();

    // Per-shard balance metrics, registered even for the single-shard
    // daemon so the exposition surface is stable across configurations.
    let shard_labels: Vec<String> = (0..shards).map(|s| s.to_string()).collect();
    let shard_metrics: Vec<(Counter, Counter, Gauge)> = shard_labels
        .iter()
        .map(|s| {
            let labels = [("shard", s.as_str())];
            (
                registry.counter(
                    "webcache_serve_shard_requests_total",
                    "Requests routed to the shard, across all passes.",
                    &labels,
                ),
                registry.counter(
                    "webcache_serve_shard_bytes_total",
                    "Bytes requested from the shard, across all passes.",
                    &labels,
                ),
                registry.gauge(
                    "webcache_serve_shard_hit_rate",
                    "Shard hit rate over the last completed pass.",
                    &labels,
                ),
            )
        })
        .collect();
    let request_imbalance_gauge = registry.gauge(
        "webcache_serve_shard_request_imbalance",
        "Max/mean per-shard request count of the last pass (1.0 = even).",
        &[],
    );
    let byte_imbalance_gauge = registry.gauge(
        "webcache_serve_shard_byte_imbalance",
        "Max/mean per-shard requested bytes of the last pass (1.0 = even).",
        &[],
    );

    // Lock contention instrumentation: one probe per shard, its
    // histograms/counters attached under stable per-shard labels (the
    // serial daemon registers shard 0 too, keeping the exposition
    // surface configuration-independent).
    let lock_probes: Vec<ShardLockProbe> = (0..shards).map(|_| ShardLockProbe::new()).collect();
    let contention_gauges: Vec<Gauge> = shard_labels
        .iter()
        .zip(&lock_probes)
        .map(|(s, probe)| {
            let labels = [("shard", s.as_str())];
            registry.attach_histogram(
                "webcache_shard_lock_wait_us",
                "Microseconds spent waiting for the shard's stripe lock \
                 (uncontended acquisitions observe 0).",
                &labels,
                &probe.wait_us,
            );
            registry.attach_histogram(
                "webcache_shard_lock_hold_us",
                "Microseconds the shard's stripe lock was held per acquisition.",
                &labels,
                &probe.hold_us,
            );
            registry.attach_counter(
                "webcache_shard_lock_acquire_total",
                "Stripe-lock acquisitions through the probed paths.",
                &labels,
                &probe.acquisitions,
            );
            registry.attach_counter(
                "webcache_shard_lock_contended_total",
                "Stripe-lock acquisitions that found the lock held.",
                &labels,
                &probe.contended,
            );
            registry.gauge(
                "webcache_shard_lock_contention_ratio",
                "Fraction of stripe-lock acquisitions that had to block.",
                &labels,
            )
        })
        .collect();

    // Tail-latency & SLO machinery: modeled per-request latency into
    // windowed percentile histograms, burn-rate tracking against the
    // configured objectives, and the snapshot ring behind /query and
    // /dash.
    let latency_model = LatencyModel::campus_2001();
    let latency_obs = LatencyObserver::register(latency_model, DEFAULT_LATENCY_WINDOWS, &registry);
    let slo_tracker = SloTracker::register(slo, latency_model, &registry);
    let ring = SnapshotRing::new(dash_history);

    // One flight ring per shard; serial mode uses ring 0. HTTP handlers
    // snapshot the rings while the replay thread records into them.
    let recorders: Vec<SharedRecorder> = (0..shards)
        .map(|_| SharedRecorder::new(flight_capacity))
        .collect();

    let profile_obs = ProfileObserver::register(&registry, &label);
    let mut anomaly_obs = AnomalyObserver::register(&registry, logger.clone(), anomaly);
    // Post-mortem bundles: one writer shared by the anomaly trigger
    // (rate limited by the anomaly cooldown) and the SLO burn-rate
    // trigger (edge-triggered), so --max-bundles caps the run globally.
    let bundle_writer = bundle_dir.map(|dir| {
        Arc::new(Mutex::new(BundleWriter {
            dir,
            registry: registry.clone(),
            recorders: recorders.clone(),
            logger: logger.clone(),
            policy: label.clone(),
            capacity_bytes: config.capacity.as_u64(),
            max_bundles,
            seq: 0,
        }))
    });
    if let Some(writer) = bundle_writer.clone() {
        anomaly_obs.set_trigger(AnomalyTrigger::new(move |kind, doc_type| {
            writer
                .lock()
                .expect("bundle writer")
                .write(kind.label(), doc_type);
        }));
    }
    if let Some(writer) = bundle_writer {
        slo_tracker.set_trigger(SloTrigger::new(move |breach| {
            writer
                .lock()
                .expect("bundle writer")
                .write(&format!("slo_{}_burn", breach.slo), "overall");
        }));
    }
    let log_obs = LogObserver::new(logger.clone());
    let regret_obs = RegretTracker::with_registry(RegretConfig::default(), &registry);
    let evict_reasons = ReasonChannel::new();
    let admit_reasons = ReasonChannel::new();
    // The flight observer is first in the chain so the ring already
    // holds the current event when the anomaly trigger snapshots it.
    let flight_obs = FlightObserver::with_reasons(
        recorders[0].clone(),
        evict_reasons.clone(),
        admit_reasons.clone(),
    );
    let mut observer = (
        flight_obs,
        (
            regret_obs,
            (
                profile_obs,
                (
                    anomaly_obs,
                    (log_obs, (latency_obs.clone(), slo_tracker.clone())),
                ),
            ),
        ),
    );

    // Concurrent mode trades the per-event observers (profiler, anomaly
    // detectors, regret tracker, event log — single-stream by design)
    // for client-thread parallelism and per-shard balance metrics; the
    // flight recorders stay on via per-shard observers, without reason
    // channels (the sharded caches are not sink-instrumented).
    let concurrent = shards > 1 || clients > 1;
    let replay = ReplayLoop {
        config,
        spec,
        rate,
        max_passes,
    };
    let sharded_replay = ShardedReplayLoop {
        config,
        spec,
        rate,
        max_passes,
        shards,
        clients,
        lock_probes: Some(lock_probes.clone()),
    };
    let status = LiveStatus::new();
    logger.info(
        "serve",
        "listening",
        &[
            ("addr", addr.to_string().into()),
            ("policy", label.as_str().into()),
        ],
    );
    replaying_gauge.set(1.0);

    let shard_recorders = recorders.clone();
    let (summary, http_served) = std::thread::scope(|scope| {
        let replay_logger = logger.clone();
        let replay_handle = {
            let status = &status;
            let passes_total = passes_total.clone();
            let requests_total = requests_total.clone();
            let rps_gauge = rps_gauge.clone();
            let hit_rate_gauge = hit_rate_gauge.clone();
            let replaying_gauge = replaying_gauge.clone();
            let shard_metrics = &shard_metrics;
            let request_imbalance_gauge = request_imbalance_gauge.clone();
            let byte_imbalance_gauge = byte_imbalance_gauge.clone();
            let lock_probes = &lock_probes;
            let contention_gauges = &contention_gauges;
            let pass_latency = latency_obs.clone();
            let pass_slo = slo_tracker.clone();
            let pass_ring = ring.clone();
            let pass_registry = registry.clone();
            scope.spawn(move || {
                // Pass-boundary bookkeeping shared by both replay
                // modes: rotate the latency windows, fold the pass into
                // the SLO burn windows (fired breaches are logged here;
                // the bundle side effect rides the trigger), refresh
                // the contention gauges, and sample the registry into
                // the snapshot ring.
                let end_of_pass = || {
                    pass_latency.rotate_and_publish();
                    for breach in pass_slo.evaluate() {
                        replay_logger.warn(
                            "serve",
                            "slo breach",
                            &[("slo", breach.slo.into()), ("detail", breach.detail.into())],
                        );
                    }
                    for (probe, gauge) in lock_probes.iter().zip(contention_gauges.iter()) {
                        gauge.set(probe.contention_ratio());
                    }
                    pass_ring.capture(&pass_registry, unix_ms_now());
                };
                let summary = if concurrent {
                    sharded_replay
                        .run_observed(
                            &mut source,
                            status,
                            shutdown,
                            |shard| {
                                (
                                    FlightObserver::new(shard_recorders[shard].clone()),
                                    (pass_latency.clone(), pass_slo.clone()),
                                )
                            },
                            |pass| {
                                let hit_rate = pass.report.overall().hit_rate();
                                passes_total.inc();
                                requests_total.add(pass.requests);
                                rps_gauge.set(pass.req_per_sec);
                                hit_rate_gauge.set(hit_rate);
                                for summary in &pass.report.per_shard {
                                    let (requests, bytes, rate) = &shard_metrics[summary.shard];
                                    requests.add(summary.requests);
                                    bytes.add(summary.bytes_requested);
                                    rate.set(if summary.requests > 0 {
                                        summary.hits as f64 / summary.requests as f64
                                    } else {
                                        0.0
                                    });
                                }
                                let balance = pass.report.balance();
                                request_imbalance_gauge.set(balance.request_imbalance);
                                byte_imbalance_gauge.set(balance.byte_imbalance);
                                replay_logger.info(
                                    "serve",
                                    "pass complete",
                                    &[
                                        ("pass", pass.pass.into()),
                                        ("requests", pass.requests.into()),
                                        ("req_per_sec", pass.req_per_sec.into()),
                                        ("hit_rate", hit_rate.into()),
                                        ("request_imbalance", balance.request_imbalance.into()),
                                    ],
                                );
                                end_of_pass();
                            },
                        )
                        .expect("shard count validated in from_args")
                } else {
                    // Instrumented serial replay: the policy pushes its
                    // eviction reasons and the cache its admission
                    // verdicts into the channels the flight observer
                    // drains.
                    replay.run_with(
                        &mut source,
                        &mut observer,
                        status,
                        shutdown,
                        move || {
                            let mut sim = Simulator::from_spec_instrumented(
                                spec,
                                config,
                                FlightSink::new(evict_reasons.clone()),
                            );
                            sim.set_admit_reasons(admit_reasons.clone());
                            sim
                        },
                        |pass| {
                            let hit_rate = pass.report.overall().hit_rate();
                            passes_total.inc();
                            requests_total.add(pass.requests);
                            rps_gauge.set(pass.req_per_sec);
                            hit_rate_gauge.set(hit_rate);
                            replay_logger.info(
                                "serve",
                                "pass complete",
                                &[
                                    ("pass", pass.pass.into()),
                                    ("requests", pass.requests.into()),
                                    ("req_per_sec", pass.req_per_sec.into()),
                                    ("hit_rate", hit_rate.into()),
                                ],
                            );
                            end_of_pass();
                        },
                    )
                };
                replaying_gauge.set(0.0);
                summary
            })
        };
        on_ready(addr);
        let served = server.serve(shutdown, |req| {
            let ctx = RouteContext {
                registry: &registry,
                status: &status,
                policy: &label,
                started,
                flight: &recorders,
                ring: &ring,
            };
            respond(req, &ctx, &http_counters)
        });
        let summary = replay_handle.join().expect("replay thread");
        served.map(|n| (summary, n))
    })?;

    logger.info(
        "serve",
        "shut down",
        &[
            ("passes", summary.passes.into()),
            ("requests_replayed", summary.requests.into()),
            ("http_requests", http_served.into()),
        ],
    );
    Ok(format!(
        "served {http_served} HTTP requests on {addr}; replayed {} requests over {} passes\n",
        summary.requests, summary.passes,
    ))
}

/// `webcache serve` as invoked by the binary: SIGINT-driven shutdown.
pub fn serve(args: &Args) -> Result<String, CliError> {
    let opts = ServeOptions::from_args(args)?;
    #[cfg(unix)]
    let shutdown = sigint_flag();
    #[cfg(not(unix))]
    let shutdown = {
        static NEVER: AtomicBool = AtomicBool::new(false);
        &NEVER
    };
    serve_with(opts, shutdown, |_| {})
}
