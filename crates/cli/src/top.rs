//! `webcache top` — a terminal status view of a running serve daemon.
//!
//! Polls `GET /snapshot` on a [`serve`](crate::serve) daemon and renders
//! the interesting slice as a compact text frame: replay progress,
//! modeled-latency quantiles per document type, per-shard lock
//! contention, and SLO burn rates. With `--once` the frame is returned
//! as the command output (scriptable — the CI smoke uses it); otherwise
//! the view clears and redraws every `--interval` seconds, `top(1)`
//! style, until `--frames` runs out or the daemon goes away.
//!
//! The client side is a plain blocking `TcpStream` GET plus the
//! dependency-free JSON parser from `webcache-obs` — no HTTP library,
//! matching the server side.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use webcache_obs::json::{self, Value};
use webcache_trace::DocumentType;

use crate::args::Args;
use crate::serve::DEFAULT_PORT;
use crate::CliError;

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Fetches one path from the daemon and returns the response body.
///
/// # Errors
///
/// I/O errors from the socket, or a usage-style error on a non-200
/// status line.
fn fetch(host: &str, port: u16, path: &str) -> Result<String, CliError> {
    let stream = TcpStream::connect((host, port))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut stream = stream;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| usage(format!("malformed HTTP response from {host}:{port}")))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(usage(format!("{path} answered HTTP {status}")));
    }
    Ok(body.to_owned())
}

/// Whether a snapshot entry's label object contains every `(k, v)` pair.
fn labels_match(entry: &Value, want: &[(&str, &str)]) -> bool {
    let labels = entry.get("labels");
    want.iter().all(|(k, v)| {
        labels
            .and_then(|l| l.get(k))
            .and_then(Value::as_str)
            .is_some_and(|got| got == *v)
    })
}

/// Looks up one sample's value in a snapshot section (`counters`,
/// `gauges` or `histograms`) by name and label subset.
fn sample(doc: &Value, section: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    doc.get(section)?.as_array()?.iter().find_map(|entry| {
        let matches =
            entry.get("name").and_then(Value::as_str) == Some(name) && labels_match(entry, labels);
        matches
            .then(|| entry.get("value").and_then(Value::as_f64))
            .flatten()
    })
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{v:.0}"),
        Some(v) => format!("{v:.3}"),
        None => "—".to_owned(),
    }
}

/// Renders one frame from a parsed `/snapshot` document.
fn render(doc: &Value, host: &str, port: u16) -> String {
    let mut out = String::with_capacity(2048);
    let passes = sample(doc, "counters", "webcache_serve_passes_total", &[]);
    let requests = sample(doc, "counters", "webcache_serve_requests_total", &[]);
    let hit_rate = sample(doc, "gauges", "webcache_serve_last_pass_hit_rate", &[]);
    let rps = sample(doc, "gauges", "webcache_serve_last_pass_req_per_sec", &[]);
    let replaying = sample(doc, "gauges", "webcache_serve_replaying", &[]).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "webcache top — {host}:{port} — {} — pass {} — {} requests — hit rate {} — {} req/s",
        if replaying > 0.0 { "replaying" } else { "idle" },
        fmt_opt(passes),
        fmt_opt(requests),
        fmt_opt(hit_rate),
        fmt_opt(rps),
    );

    out.push_str("\nmodeled latency (µs)      p50        p90        p99       p999\n");
    let mut rows: Vec<&str> = vec!["overall"];
    rows.extend(DocumentType::ALL.iter().map(|t| t.label()));
    for doc_type in rows {
        let q = |quantile: &str| {
            sample(
                doc,
                "gauges",
                "webcache_modeled_latency_us",
                &[("doc_type", doc_type), ("quantile", quantile)],
            )
        };
        let _ = writeln!(
            out,
            "  {doc_type:<18} {:>10} {:>10} {:>10} {:>10}",
            fmt_opt(q("p50")),
            fmt_opt(q("p90")),
            fmt_opt(q("p99")),
            fmt_opt(q("p999")),
        );
    }

    out.push_str("\nshard locks        acquisitions  contended  contention  wait µs (mean)\n");
    for shard in 0.. {
        let label = shard.to_string();
        let labels = [("shard", label.as_str())];
        let Some(acquisitions) = sample(
            doc,
            "counters",
            "webcache_shard_lock_acquire_total",
            &labels,
        ) else {
            break;
        };
        let contended = sample(
            doc,
            "counters",
            "webcache_shard_lock_contended_total",
            &labels,
        );
        let ratio = sample(
            doc,
            "gauges",
            "webcache_shard_lock_contention_ratio",
            &labels,
        );
        let wait_count =
            sample(doc, "histograms", "webcache_shard_lock_wait_us", &labels).unwrap_or(0.0);
        // Histogram entries expose count as "count"; sample() reads
        // "value", so dig the count/sum pair out directly.
        let (count, sum) = doc
            .get("histograms")
            .and_then(Value::as_array)
            .and_then(|entries| {
                entries.iter().find(|e| {
                    e.get("name").and_then(Value::as_str) == Some("webcache_shard_lock_wait_us")
                        && labels_match(e, &labels)
                })
            })
            .map(|e| {
                (
                    e.get("count").and_then(Value::as_f64).unwrap_or(0.0),
                    e.get("sum").and_then(Value::as_f64).unwrap_or(0.0),
                )
            })
            .unwrap_or((wait_count, 0.0));
        let mean_wait = if count > 0.0 { sum / count } else { 0.0 };
        let _ = writeln!(
            out,
            "  shard {label:<10} {:>12} {:>10} {:>11} {:>15.1}",
            fmt_opt(Some(acquisitions)),
            fmt_opt(contended),
            fmt_opt(ratio),
            mean_wait,
        );
    }

    let mut slo_lines = String::new();
    for slo in ["hit_rate", "latency_p99"] {
        let short = sample(
            doc,
            "gauges",
            "webcache_slo_burn_rate",
            &[("slo", slo), ("window", "short")],
        );
        if short.is_none() {
            continue;
        }
        let long = sample(
            doc,
            "gauges",
            "webcache_slo_burn_rate",
            &[("slo", slo), ("window", "long")],
        );
        let breaches = sample(
            doc,
            "counters",
            "webcache_slo_breach_total",
            &[("slo", slo)],
        );
        let _ = writeln!(
            slo_lines,
            "  {slo:<18} {:>10} {:>10} {:>10}",
            fmt_opt(short),
            fmt_opt(long),
            fmt_opt(breaches),
        );
    }
    if !slo_lines.is_empty() {
        out.push_str("\nslo burn rate           short       long   breaches\n");
        out.push_str(&slo_lines);
    }
    out
}

/// `webcache top`: fetches `/snapshot` and renders the status view.
/// See the [module docs](self) for the flag reference.
///
/// # Errors
///
/// [`CliError::Usage`] on malformed flags or non-200 responses, I/O
/// errors when the daemon is unreachable.
pub fn top(args: &Args) -> Result<String, CliError> {
    let host = args.get("host").unwrap_or("127.0.0.1").to_owned();
    let port: u16 = args.get_parsed("port")?.unwrap_or(DEFAULT_PORT);
    let once = args.switch("once");
    let interval: f64 = args.get_parsed("interval")?.unwrap_or(2.0);
    if !interval.is_finite() || interval <= 0.0 {
        return Err(usage("--interval expects a finite second count > 0"));
    }
    let frames: Option<u64> = args.get_parsed("frames")?;
    if frames == Some(0) {
        return Err(usage("--frames expects a frame count ≥ 1"));
    }

    let one_frame = || -> Result<String, CliError> {
        let body = fetch(&host, port, "/snapshot")?;
        let doc = json::parse(&body)
            .map_err(|e| usage(format!("/snapshot returned invalid JSON: {e:?}")))?;
        Ok(render(&doc, &host, port))
    };

    if once {
        return one_frame();
    }
    let mut drawn: u64 = 0;
    loop {
        let frame = one_frame()?;
        // ANSI clear + home, like top(1); harmless when redirected.
        print!("\x1b[2J\x1b[H{frame}");
        std::io::stdout().flush()?;
        drawn += 1;
        if frames.is_some_and(|n| drawn >= n) {
            return Ok(format!("rendered {drawn} frames\n"));
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(doc: &str) -> Value {
        json::parse(doc).unwrap()
    }

    #[test]
    fn sample_matches_name_and_label_subset() {
        let doc = parse(
            r#"{"gauges": [
                {"name": "g", "labels": {"a": "1", "b": "2"}, "value": 7},
                {"name": "g", "labels": {"a": "2"}, "value": 9}
            ]}"#,
        );
        assert_eq!(sample(&doc, "gauges", "g", &[("a", "1")]), Some(7.0));
        assert_eq!(sample(&doc, "gauges", "g", &[("a", "2")]), Some(9.0));
        assert_eq!(sample(&doc, "gauges", "g", &[("a", "3")]), None);
        assert_eq!(sample(&doc, "gauges", "missing", &[]), None);
    }

    #[test]
    fn render_survives_an_empty_snapshot() {
        let doc = parse(r#"{"counters": [], "gauges": [], "histograms": []}"#);
        let frame = render(&doc, "127.0.0.1", 9184);
        assert!(frame.contains("webcache top"), "{frame}");
        assert!(frame.contains("modeled latency"), "{frame}");
        assert!(frame.contains("pass —"), "{frame}");
    }

    #[test]
    fn render_shows_shard_and_slo_rows_when_present() {
        let doc = parse(
            r#"{
                "counters": [
                    {"name": "webcache_shard_lock_acquire_total", "labels": {"shard": "0"}, "value": 10},
                    {"name": "webcache_shard_lock_contended_total", "labels": {"shard": "0"}, "value": 2},
                    {"name": "webcache_slo_breach_total", "labels": {"slo": "hit_rate"}, "value": 1}
                ],
                "gauges": [
                    {"name": "webcache_shard_lock_contention_ratio", "labels": {"shard": "0"}, "value": 0.2},
                    {"name": "webcache_slo_burn_rate", "labels": {"slo": "hit_rate", "window": "short"}, "value": 5.0},
                    {"name": "webcache_slo_burn_rate", "labels": {"slo": "hit_rate", "window": "long"}, "value": 4.0}
                ],
                "histograms": [
                    {"name": "webcache_shard_lock_wait_us", "labels": {"shard": "0"},
                     "count": 10, "sum": 50, "buckets": []}
                ]
            }"#,
        );
        let frame = render(&doc, "127.0.0.1", 9184);
        assert!(frame.contains("shard 0"), "{frame}");
        assert!(frame.contains("slo burn rate"), "{frame}");
        assert!(frame.contains("hit_rate"), "{frame}");
        assert!(frame.contains("5.0"), "{frame}");
    }

    #[test]
    fn bad_interval_and_frames_error() {
        let args = |s: &str| {
            Args::parse(
                &s.split_whitespace().map(str::to_owned).collect::<Vec<_>>(),
                &["once"],
            )
            .unwrap()
        };
        assert!(top(&args("--interval 0")).is_err());
        assert!(top(&args("--interval nan")).is_err());
        assert!(top(&args("--frames 0")).is_err());
    }
}
