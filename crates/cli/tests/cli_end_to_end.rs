//! End-to-end tests of the CLI surface, driving `webcache_cli::run`
//! through temp files: generate → characterize → simulate → sweep, and
//! the Squid conversion path.

use std::fs;
use std::path::PathBuf;

use webcache_cli::run;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

/// A unique temp path per test.
fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("webcache-cli-test-{}-{name}", std::process::id()));
    p
}

fn generate_trace(name: &str) -> PathBuf {
    let path = temp_path(name);
    let out = run(&argv(&format!(
        "generate --profile dfn --scale 2048 --seed 5 --out {}",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("wrote"), "{out}");
    path
}

#[test]
fn generate_then_characterize() {
    let path = generate_trace("char.wct");
    let out = run(&argv(&format!(
        "characterize --trace {} --name DFN-mini",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("DFN-mini"));
    assert!(out.contains("Distinct Documents"));
    assert!(out.contains("Multi Media"));
    assert!(out.contains("alpha"));
    fs::remove_file(path).ok();
}

#[test]
fn simulate_reports_per_type_rates() {
    let path = generate_trace("sim.wct");
    let out = run(&argv(&format!(
        "simulate --trace {} --policy gd*1 --capacity 5% --warmup 0.1",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("GD*(1)"), "{out}");
    assert!(out.contains("Overall"));
    assert!(out.contains("hit rate"));
    fs::remove_file(path).ok();
}

#[test]
fn simulate_with_occupancy_emits_csv() {
    let path = generate_trace("occ.wct");
    let out = run(&argv(&format!(
        "simulate --trace {} --policy lru --capacity 64KiB --occupancy 5",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("request_index"), "{out}");
    fs::remove_file(path).ok();
}

#[test]
fn sweep_renders_panels_and_csv() {
    let path = generate_trace("sweep.wct");
    let text = run(&argv(&format!(
        "sweep --trace {} --policies lru,gds1 --fractions 0.01,0.1",
        path.display()
    )))
    .unwrap();
    assert!(text.contains("Hit Rate"));
    assert!(text.contains("GDS(1)"));

    let csv = run(&argv(&format!(
        "sweep --trace {} --policies lru --fractions 0.05 --csv",
        path.display()
    )))
    .unwrap();
    assert!(csv.starts_with("policy,capacity_bytes"));
    assert_eq!(csv.lines().count(), 1 + 6, "1 policy x 1 size x 6 scopes");
    fs::remove_file(path).ok();
}

#[test]
fn sweep_single_shard_matches_default_and_bad_counts_error() {
    let path = generate_trace("shards.wct");
    let plain = run(&argv(&format!(
        "sweep --trace {} --policies lru,gd*p --fractions 0.01,0.05 --csv",
        path.display()
    )))
    .unwrap();
    let one_shard = run(&argv(&format!(
        "sweep --trace {} --policies lru,gd*p --fractions 0.01,0.05 --csv --shards 1",
        path.display()
    )))
    .unwrap();
    assert_eq!(plain, one_shard, "--shards 1 must not change results");

    let sharded = run(&argv(&format!(
        "sweep --trace {} --policies lru --fractions 0.05 --csv --shards 8",
        path.display()
    )))
    .unwrap();
    assert!(sharded.starts_with("policy,capacity_bytes"), "{sharded}");

    for bad in ["0", "6", "eight"] {
        let err = run(&argv(&format!(
            "sweep --trace {} --policies lru --fractions 0.05 --shards {bad}",
            path.display()
        )))
        .unwrap_err();
        assert!(
            err.to_string().contains("shard") || err.to_string().contains("usize"),
            "{err}"
        );
    }
    fs::remove_file(path).ok();
}

#[test]
fn sweep_serial_switch_matches_batched_default() {
    let path = generate_trace("serial.wct");
    let batched = run(&argv(&format!(
        "sweep --trace {} --policies gd*p,lfu-da --fractions 0.01,0.05 --csv",
        path.display()
    )))
    .unwrap();
    let serial = run(&argv(&format!(
        "sweep --trace {} --policies gd*p,lfu-da --fractions 0.01,0.05 --csv --serial",
        path.display()
    )))
    .unwrap();
    assert_eq!(batched, serial, "batched replay must not change results");
    let err = run(&argv(&format!(
        "sweep --trace {} --batched --serial",
        path.display()
    )))
    .unwrap_err();
    assert!(err.to_string().contains("at most one"), "{err}");
    fs::remove_file(path).ok();
}

#[test]
fn sweep_accepts_repeated_composed_policy_specs() {
    let path = generate_trace("cohort.wct");
    // The modern cohort rides the same grid as the legacy roster:
    // repeated --policy flags carrying full specs, mixed with a
    // --policies comma list.
    let text = run(&argv(&format!(
        "sweep --trace {} --policies lru --policy tinylfu+slru --policy arc --policy s3fifo \
         --fractions 0.01,0.05",
        path.display()
    )))
    .unwrap();
    for label in ["LRU", "TinyLFU+SLRU", "ARC", "S3-FIFO"] {
        assert!(text.contains(label), "{label} missing from:\n{text}");
    }

    let csv = run(&argv(&format!(
        "sweep --trace {} --policy tinylfu+gd*p --fractions 0.05 --csv",
        path.display()
    )))
    .unwrap();
    assert!(csv.starts_with("policy,capacity_bytes"), "{csv}");
    assert!(csv.contains("TinyLFU+GD*(P)"), "{csv}");

    // A bad spec in either position is a usage error, not a panic.
    for bad in ["--policy tinylfu+nonsense", "--policies lru,frobnicate"] {
        let err = run(&argv(&format!(
            "sweep --trace {} {bad} --fractions 0.05",
            path.display()
        )))
        .unwrap_err();
        assert!(
            err.to_string().contains("nonsense") || err.to_string().contains("frobnicate"),
            "{err}"
        );
    }
    fs::remove_file(path).ok();
}

#[test]
fn simulate_composed_spec_reports_composed_label() {
    let path = generate_trace("composed.wct");
    let out = run(&argv(&format!(
        "simulate --trace {} --policy tinylfu+lru --capacity 1%",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("TinyLFU+LRU"), "{out}");
    assert!(out.contains("Overall"), "{out}");
    fs::remove_file(path).ok();
}

#[test]
fn convert_roundtrip_text_binary_dense() {
    // text -> binary via the CLI, then prove the zero-copy WCTB loader
    // sees exactly the same dense view as the text path.
    let text_path = generate_trace("rt.wct");
    let bin_path = temp_path("rt.wctb");
    let out = run(&argv(&format!(
        "convert --trace {} --out {} --format bin",
        text_path.display(),
        bin_path.display()
    )))
    .unwrap();
    assert!(out.contains("converted"), "{out}");

    let text_bytes = fs::read(&text_path).unwrap();
    let trace = webcache_trace::format::read_trace(text_bytes.as_slice()).unwrap();
    let from_text = webcache_trace::DenseTrace::build(&trace);

    let bin_bytes = fs::read(&bin_path).unwrap();
    assert_eq!(&bin_bytes[..4], b"WCTB");
    let from_binary = webcache_trace::DenseTrace::from_wctb_bytes(&bin_bytes).unwrap();
    assert_eq!(from_binary, from_text, "text->binary->dense == text->dense");

    // And back: binary -> text re-encodes to an equal trace.
    let text2_path = temp_path("rt2.wct");
    run(&argv(&format!(
        "convert --trace {} --out {} --format text",
        bin_path.display(),
        text2_path.display()
    )))
    .unwrap();
    let trace2 =
        webcache_trace::format::read_trace(fs::read(&text2_path).unwrap().as_slice()).unwrap();
    assert_eq!(trace2, trace);

    fs::remove_file(text_path).ok();
    fs::remove_file(bin_path).ok();
    fs::remove_file(text2_path).ok();
}

#[test]
fn stats_emits_windowed_json_and_csv() {
    let path = generate_trace("stats.wct");
    // Default: both JSON and CSV, window = a tenth of the measured region.
    let both = run(&argv(&format!(
        "stats --trace {} --policy gd*p --capacity 5% --warmup 0.1",
        path.display()
    )))
    .unwrap();
    assert!(both.contains("\"windows\": ["), "{both}");
    assert!(
        both.contains("window,start_index,end_index,doc_type"),
        "{both}"
    );
    assert!(both.contains("\"Images\""), "per-type JSON series: {both}");
    assert!(both.contains(",Images,"), "per-type CSV rows: {both}");
    assert!(both.contains("hit_rate"), "{both}");
    assert!(both.contains("byte_hit_rate"), "{both}");

    // --json alone drops the CSV; ten windows by default.
    let json = run(&argv(&format!(
        "stats --trace {} --policy lru --window 500 --json",
        path.display()
    )))
    .unwrap();
    assert!(!json.contains("window,start_index"), "{json}");
    assert!(
        json.contains("\"kind\":\"requests\",\"size\":500"),
        "{json}"
    );
    assert!(json.contains("\"evictions\""), "{json}");

    // --csv alone drops the JSON; byte windows accept capacity syntax.
    let csv = run(&argv(&format!(
        "stats --trace {} --policy lru --window-bytes 64KiB --csv",
        path.display()
    )))
    .unwrap();
    assert!(csv.starts_with("window,start_index"), "{csv}");
    assert!(csv.lines().count() > 1, "{csv}");
    fs::remove_file(path).ok();
}

#[test]
fn stats_usage_errors() {
    let path = generate_trace("stats-err.wct");
    for bad in [
        format!("stats --trace {} --policy lru --window 0", path.display()),
        format!(
            "stats --trace {} --policy lru --window 5 --window-bytes 1KiB",
            path.display()
        ),
        format!("stats --trace {} --policy nonsense", path.display()),
        "stats --policy lru".to_owned(),
    ] {
        assert!(run(&argv(&bad)).is_err(), "`{bad}` should fail");
    }
    fs::remove_file(path).ok();
}

#[test]
fn sweep_progress_switch_is_accepted() {
    let path = generate_trace("prog.wct");
    let csv = run(&argv(&format!(
        "sweep --trace {} --policies lru --fractions 0.05 --csv --progress",
        path.display()
    )))
    .unwrap();
    // Progress goes to stderr; stdout stays machine-readable.
    assert!(csv.starts_with("policy,capacity_bytes"), "{csv}");
    fs::remove_file(path).ok();
}

#[test]
fn convert_squid_log() {
    let log_path = temp_path("access.log");
    let out_path = temp_path("converted.wct");
    fs::write(
        &log_path,
        "\
100.000 5 c TCP_MISS/200 900 GET http://e.de/a.gif - DIRECT/- image/gif
100.500 5 c TCP_MISS/404 300 GET http://e.de/missing - DIRECT/- -
101.000 5 c TCP_MISS/200 900 GET http://e.de/cgi-bin/x - DIRECT/- text/html
102.000 5 c TCP_HIT/200 900 GET http://e.de/a.gif - NONE/- image/gif
",
    )
    .unwrap();
    let out = run(&argv(&format!(
        "convert --squid {} --out {}",
        log_path.display(),
        out_path.display()
    )))
    .unwrap();
    assert!(out.contains("2 cacheable requests"), "{out}");
    let sim = run(&argv(&format!(
        "simulate --trace {} --policy lru --capacity 10KiB --warmup 0",
        out_path.display()
    )))
    .unwrap();
    assert!(sim.contains("LRU"));
    fs::remove_file(log_path).ok();
    fs::remove_file(out_path).ok();
}

#[test]
fn characterize_accepts_squid_directly() {
    let log_path = temp_path("direct.log");
    fs::write(
        &log_path,
        "100.000 5 c TCP_MISS/200 900 GET http://e.de/a.gif - DIRECT/- image/gif\n",
    )
    .unwrap();
    let out = run(&argv(&format!(
        "characterize --squid {}",
        log_path.display()
    )))
    .unwrap();
    assert!(out.contains("Total Requests"));
    fs::remove_file(log_path).ok();
}

#[test]
fn usage_errors_are_reported() {
    for bad in [
        "generate --profile dfn", // missing --out
        "generate --profile mars --out /tmp/x",
        "simulate --policy lru",                     // missing input
        "simulate --trace a --squid b --policy lru", // both inputs
        "sweep --trace missing-file.wct",
        "simulate --trace missing-file.wct --policy nonsense",
    ] {
        assert!(run(&argv(bad)).is_err(), "`{bad}` should fail");
    }
}

#[test]
fn binary_format_roundtrips_through_cli() {
    let path = temp_path("bin.wctb");
    let out = run(&argv(&format!(
        "generate --profile rtp --scale 2048 --seed 3 --out {} --format bin",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("wrote"), "{out}");
    // The file must carry the binary magic...
    let bytes = fs::read(&path).unwrap();
    assert_eq!(&bytes[..4], b"WCTB");
    // ...and be loadable by every downstream subcommand transparently.
    let text = run(&argv(&format!(
        "simulate --trace {} --policy lfu-da --capacity 2%",
        path.display()
    )))
    .unwrap();
    assert!(text.contains("LFU-DA"), "{text}");
    fs::remove_file(path).ok();
}

#[test]
fn simulate_reports_latency_estimate() {
    let path = generate_trace("lat.wct");
    let out = run(&argv(&format!(
        "simulate --trace {} --policy lru --capacity 5%",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("estimated user latency"), "{out}");
    assert!(out.contains("saved vs no cache"), "{out}");
    fs::remove_file(path).ok();
}

#[test]
fn hierarchy_subcommand_reports_combined_rates() {
    let path = generate_trace("hier.wct");
    let out = run(&argv(&format!(
        "hierarchy --trace {} --leaves 2 --leaf-capacity 1% --parent-capacity 10% \
         --leaf-policy gd*1 --parent-policy gd*p",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("combined: hit rate"), "{out}");
    assert!(out.contains("GD*(1)"), "{out}");
    assert!(out.contains("GD*(P)"), "{out}");
    fs::remove_file(path).ok();
}

#[test]
fn oracle_policy_in_simulate() {
    let path = generate_trace("oracle.wct");
    let oracle = run(&argv(&format!(
        "simulate --trace {} --policy oracle --capacity 5%",
        path.display()
    )))
    .unwrap();
    assert!(oracle.contains("clairvoyant"), "{oracle}");
    let lru = run(&argv(&format!(
        "simulate --trace {} --policy lru --capacity 5%",
        path.display()
    )))
    .unwrap();
    // Extract the overall hit rates and compare: oracle must dominate.
    let rate = |text: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with("Overall"))
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|v| v.parse().ok())
            .expect("overall row")
    };
    assert!(rate(&oracle) >= rate(&lru), "oracle {oracle} vs lru {lru}");
    fs::remove_file(path).ok();
}

#[test]
fn profile_writes_valid_artifacts() {
    let dir = temp_path("profile-out");
    let out = run(&argv(&format!(
        "profile --quick --seed 11 --out-dir {}",
        dir.display()
    )))
    .unwrap();
    assert!(out.contains("profiled"), "{out}");

    // Chrome-trace artifact: valid JSON in the Trace Event Format.
    let trace_text = fs::read_to_string(dir.join("trace.json")).unwrap();
    let trace = webcache_obs::json::parse(&trace_text).expect("trace.json parses");
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "spans were recorded");
    let mut begins = 0usize;
    let mut ends = 0usize;
    let mut completes = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
        match ph {
            "B" => begins += 1,
            "E" => ends += 1,
            "X" => {
                // Complete events carry name, timestamp, duration, track.
                assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
                assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
                assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some());
                assert!(ev.get("tid").and_then(|v| v.as_f64()).is_some());
                completes += 1;
            }
            "M" => {} // track-name metadata
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(begins, ends, "every B span has a matching E");
    assert!(completes >= 4, "replay + sweep spans present");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    assert!(names.contains(&"replay"), "{names:?}");
    assert!(names.contains(&"sweep"), "{names:?}");
    let tracks: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(tracks.contains(&"main"), "{tracks:?}");
    assert!(tracks.contains(&"sweep-worker-0"), "{tracks:?}");

    // Prometheus artifact: policy internals for the instrumented schemes.
    let prom = fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert!(
        prom.contains("# TYPE webcache_heap_ops_total counter"),
        "{prom}"
    );
    assert!(
        prom.contains("webcache_heap_sift_steps"),
        "heap-op histograms"
    );
    assert!(
        prom.contains("webcache_policy_inflation_l_trajectory{policy=\"GD*(1)\""),
        "GD* L trajectory exported"
    );
    assert!(
        prom.contains("webcache_sim_evict_scan_length_bucket"),
        "{prom}"
    );
    assert!(
        prom.contains("webcache_sim_hits_total{policy=\"LRU\"}"),
        "{prom}"
    );

    // JSON snapshot parses and mirrors the registry.
    let metrics_text = fs::read_to_string(dir.join("metrics.json")).unwrap();
    let metrics = webcache_obs::json::parse(&metrics_text).expect("metrics.json parses");
    for section in ["counters", "gauges", "histograms", "series"] {
        assert!(
            metrics.get(section).and_then(|v| v.as_array()).is_some(),
            "{section} section present"
        );
    }

    fs::remove_dir_all(dir).ok();
}

#[test]
fn profile_creates_nested_out_dir() {
    // Regression: --out-dir pointing at a directory whose parents don't
    // exist yet must be created recursively, not fail on the first
    // write.
    let root = temp_path("profile-nested");
    let dir = root.join("a/b/c");
    fs::remove_dir_all(&root).ok();
    let out = run(&argv(&format!(
        "profile --quick --seed 11 --out-dir {}",
        dir.display()
    )))
    .unwrap();
    assert!(out.contains("profiled"), "{out}");
    assert!(dir.join("metrics.prom").is_file());
    assert!(dir.join("metrics.json").is_file());
    assert!(dir.join("trace.json").is_file());
    fs::remove_dir_all(root).ok();
}

#[test]
fn switches_do_not_leak_across_subcommands() {
    // `--csv` belongs to sweep/stats; given to simulate it must error
    // instead of silently consuming the next flag as its value.
    let err = run(&argv("simulate --csv --trace x.wct --policy lru")).unwrap_err();
    assert!(
        err.to_string().contains("--csv") || err.to_string().contains("csv"),
        "{err}"
    );
    let err = run(&argv("generate --quick --profile dfn --out /tmp/x")).unwrap_err();
    assert!(err.to_string().contains("quick"), "{err}");
}

#[test]
fn markdown_switch_renders_pipes() {
    let path = generate_trace("md.wct");
    let out = run(&argv(&format!(
        "simulate --trace {} --policy lru --capacity 5% --markdown",
        path.display()
    )))
    .unwrap();
    assert!(out.contains("| Type |"), "{out}");
    assert!(out.contains("| :-- |"), "{out}");
    fs::remove_file(path).ok();
}
