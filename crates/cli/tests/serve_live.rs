//! Acceptance tests for `webcache serve`: the daemon answers /metrics,
//! /healthz and /snapshot while (and after) replaying, an injected
//! hit-rate cliff increments `webcache_anomaly_total` AND produces
//! exactly one rate-limited JSONL warn record, and shutdown via the
//! shared flag is clean.
//!
//! The tests drive [`serve_with`] directly (own shutdown flag, port 0,
//! address collected from the readiness callback) but build their
//! [`ServeOptions`] through the same `Args` parsing as the binary.

use std::fs;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use webcache_cli::{serve_with, Args, ServeOptions};
use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("webcache-serve-test-{}-{name}", std::process::id()));
    p
}

/// One short HTTP/1.1 exchange; returns (status, headers, body).
fn http_get_full(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .unwrap_or_default();
    (status, head, body)
}

/// One short HTTP/1.1 exchange; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = http_get_full(addr, path);
    (status, body)
}

/// Polls `/healthz` until the replay loop reports done (or panics after
/// `deadline`).
fn await_replay_done(addr: SocketAddr, deadline: Duration) -> String {
    let started = Instant::now();
    loop {
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"replaying\": false") {
            return body;
        }
        assert!(
            started.elapsed() < deadline,
            "replay did not finish in {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A single-type trace with a hit-rate cliff: with a 500-request anomaly
/// window, window 1 cycles an 8-document hot set (~98% hit rate, seeds
/// the EWMA baseline) and window 2 is almost entirely cold distinct
/// documents, collapsing the hit rate far past the detection threshold.
fn cliff_trace() -> Trace {
    let mut trace = Trace::with_capacity(1100);
    let mut push = |i: u64, doc: u64| {
        trace.push(Request::new(
            Timestamp::from_millis(i),
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(900),
        ));
    };
    for i in 0..512u64 {
        push(i, i % 8);
    }
    for i in 512..1100u64 {
        push(i, 1000 + i);
    }
    trace
}

#[test]
fn cliff_trace_fires_anomaly_once_and_endpoints_answer() {
    let trace_path = temp_path("cliff.wctb");
    let log_path = temp_path("cliff.log");
    fs::write(
        &trace_path,
        webcache_trace::format_bin::to_bytes(&cliff_trace()),
    )
    .unwrap();
    fs::remove_file(&log_path).ok();

    // Capacity 4MiB holds every document, so no evictions (and thus no
    // storm/thrash detections) muddy the single expected collapse warn.
    // Warn-level log file keeps the serve-loop info records out of it.
    let args = Args::parse(
        &argv(&format!(
            "--trace {} --policy lru --capacity 4MiB --warmup 0 --passes 1 --port 0 \
             --anomaly-window 500 --log-level warn --log-file {}",
            trace_path.display(),
            log_path.display()
        )),
        &["quick"],
    )
    .unwrap();
    let opts = ServeOptions::from_args(&args).unwrap();

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || {
        serve_with(opts, &SHUTDOWN, move |addr| tx.send(addr).unwrap()).unwrap()
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");

    // /healthz answers while the daemon is up; wait out the single pass.
    let health = await_replay_done(addr, Duration::from_secs(30));
    assert!(health.contains("\"status\": \"ok\""), "{health}");
    assert!(health.contains("\"passes\": 1"), "{health}");
    assert!(health.contains("\"policy\": \"LRU\""), "{health}");

    // /metrics carries the anomaly counter and the serve-loop families.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("webcache_anomaly_total{kind=\"hit_rate_collapse\",doc_type=\"HTML\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_serve_passes_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE webcache_serve_last_pass_req_per_sec gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_sim_hits_total{policy=\"LRU\"}"),
        "{metrics}"
    );

    // /snapshot is valid JSON mirroring the registry.
    let (status, snapshot) = http_get(addr, "/snapshot");
    assert_eq!(status, 200);
    let parsed = webcache_obs::json::parse(&snapshot).expect("snapshot parses");
    assert!(parsed.get("counters").is_some(), "{snapshot}");

    // Unknown paths 404 without taking the daemon down.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);

    SHUTDOWN.store(true, Ordering::SeqCst);
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.contains("1 passes"), "{summary}");

    // Exactly one rate-limited warn record reached the log file.
    let log = fs::read_to_string(&log_path).unwrap();
    let warns: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"kind\":\"hit_rate_collapse\""))
        .collect();
    assert_eq!(warns.len(), 1, "rate limiting failed: {log}");
    assert!(warns[0].contains("\"level\":\"warn\""), "{log}");
    assert!(warns[0].contains("\"doc_type\":\"HTML\""), "{log}");
    assert_eq!(log.lines().count(), 1, "unexpected extra records: {log}");

    fs::remove_file(trace_path).ok();
    fs::remove_file(log_path).ok();
}

/// Like [`cliff_trace`], but sized to evict: window 2's cold flood keeps
/// re-requesting the 8-document hot set every 64 requests, so a small
/// cache churns the hot documents out and back in — wasted evictions the
/// forensics report must surface.
fn forensic_trace() -> Trace {
    let mut trace = Trace::with_capacity(1100);
    let mut push = |i: u64, doc: u64| {
        trace.push(Request::new(
            Timestamp::from_millis(i),
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(900),
        ));
    };
    for i in 0..512u64 {
        push(i, i % 8);
    }
    for i in 512..1100u64 {
        if i % 8 == 0 {
            push(i, (i / 8) % 8);
        } else {
            push(i, 1000 + i);
        }
    }
    trace
}

#[test]
fn anomaly_writes_one_bundle_that_round_trips_through_inspect() {
    let trace_path = temp_path("forensic.wctb");
    let bundle_dir = temp_path("bundles");
    fs::write(
        &trace_path,
        webcache_trace::format_bin::to_bytes(&forensic_trace()),
    )
    .unwrap();
    let _ = fs::remove_dir_all(&bundle_dir);

    // 16KiB holds ~18 of the 900-byte documents: the hot set fits during
    // window 1 (seeding the hit-rate baseline with ~98%), then window
    // 2's cold flood evicts constantly and collapses the hit rate.
    // GDS(1) attaches greedy_dual reason payloads to every eviction.
    let args = Args::parse(
        &argv(&format!(
            "--trace {} --policy gds1 --capacity 16KiB --warmup 0 --passes 1 --port 0 \
             --anomaly-window 500 --log-level error --flight-capacity 2048 \
             --bundle-dir {} --max-bundles 1",
            trace_path.display(),
            bundle_dir.display()
        )),
        &["quick"],
    )
    .unwrap();
    let opts = ServeOptions::from_args(&args).unwrap();

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || {
        serve_with(opts, &SHUTDOWN, move |addr| tx.send(addr).unwrap()).unwrap()
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");
    await_replay_done(addr, Duration::from_secs(30));

    // Every routing-table path answers (non-404) — the table is the
    // single source of truth, so a new endpoint is covered by default.
    // Headers are part of the contract: no-store everywhere (these are
    // live views) and a correct Content-Type per route.
    for path in webcache_cli::serve::route_paths() {
        let probe = match path {
            "/debug/doc" => "/debug/doc?id=0".to_owned(),
            "/query" => "/query?metric=webcache_serve_passes_total&last=8".to_owned(),
            _ => path.to_owned(),
        };
        let (status, head, body) = http_get_full(addr, &probe);
        assert_eq!(status, 200, "{probe}: {body}");
        assert!(
            head.contains("Cache-Control: no-store"),
            "{probe} must not be cacheable: {head}"
        );
        let expected_type = match path {
            "/metrics" => "text/plain",
            "/dash" => "text/html",
            _ => "application/json",
        };
        assert!(
            head.contains(&format!("Content-Type: {expected_type}")),
            "{probe} content type: {head}"
        );
    }
    for unknown in ["/nope", "/debug", "/debug/flightier"] {
        let (status, _) = http_get(addr, unknown);
        assert_eq!(status, 404, "{unknown} should not route");
    }

    // /metrics carries the build-info gauge and the regret families.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("webcache_build_info{")
            && metrics.contains(env!("CARGO_PKG_VERSION"))
            && metrics.contains("features=\"default\""),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_regret_wasted_evictions_total{doc_type=\"HTML\"}"),
        "{metrics}"
    );

    // /debug/flight is valid JSON holding eviction records with their
    // policy reason payloads.
    let (status, flight) = http_get(addr, "/debug/flight");
    assert_eq!(status, 200);
    let parsed = webcache_obs::json::parse(&flight).expect("flight parses");
    assert!(parsed.get("records").is_some(), "{flight}");
    assert!(flight.contains("\"total\": "), "{flight}");
    assert!(flight.contains("\"event\": \"evict\""), "{flight}");
    assert!(flight.contains("greedy_dual"), "{flight}");

    // /debug/doc narrows to one document; a missing or junk id is a 400.
    let (status, doc) = http_get(addr, "/debug/doc?id=0");
    assert_eq!(status, 200);
    webcache_obs::json::parse(&doc).expect("doc parses");
    assert!(doc.starts_with("{\"doc\": 0, "), "{doc}");
    assert!(doc.contains("\"records\": ["), "{doc}");
    for bad in ["/debug/doc", "/debug/doc?id=junk", "/debug/doc?doc=0"] {
        let (status, _) = http_get(addr, bad);
        assert_eq!(status, 400, "{bad} should reject");
    }

    // /query serves the trailing window of any registered metric from
    // the per-pass snapshot ring.
    let (status, q) = http_get(addr, "/query?metric=webcache_serve_passes_total");
    assert_eq!(status, 200, "{q}");
    let parsed = webcache_obs::json::parse(&q).expect("query parses");
    assert_eq!(
        parsed.get("metric").and_then(|v| v.as_str()),
        Some("webcache_serve_passes_total"),
        "{q}"
    );
    let points = parsed.get("points").and_then(|v| v.as_array());
    assert!(points.is_some_and(|p| !p.is_empty()), "{q}");
    // Histograms flatten to <name>_count / <name>_sum samples.
    let (status, _) = http_get(addr, "/query?metric=webcache_shard_lock_wait_us_count");
    assert_eq!(status, 200);
    for (bad, want) in [
        ("/query", 400),
        ("/query?metric=", 400),
        ("/query?metric=webcache_serve_passes_total&last=0", 400),
        ("/query?metric=webcache_serve_passes_total&last=lots", 400),
        ("/query?metric=no_such_metric", 404),
    ] {
        let (status, body) = http_get(addr, bad);
        assert_eq!(status, want, "{bad}: {body}");
    }

    // /dash is a self-contained HTML page with inline-SVG sparklines.
    let (status, dash) = http_get(addr, "/dash");
    assert_eq!(status, 200);
    assert!(dash.starts_with("<!doctype html>"), "{dash}");
    assert!(dash.contains("webcache live dashboard"), "{dash}");
    assert!(dash.contains("<svg"), "{dash}");
    assert!(dash.contains("Modeled latency p99"), "{dash}");

    SHUTDOWN.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread");

    // Exactly one bundle, despite several detectors firing on window 2:
    // --max-bundles 1 caps the trigger.
    let bundles: Vec<PathBuf> = fs::read_dir(&bundle_dir)
        .expect("bundle dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("bundle-"))
        })
        .collect();
    assert_eq!(bundles.len(), 1, "expected exactly one bundle: {bundles:?}");
    let bundle = &bundles[0];

    // The bundle's JSONL parses back into eviction records with reasons.
    let jsonl = fs::read_to_string(bundle.join("flight.jsonl")).unwrap();
    let records = webcache_obs::FlightRecorder::parse_jsonl(&jsonl).expect("jsonl parses");
    assert!(
        records
            .iter()
            .any(|r| r.event == webcache_obs::EventKind::Evict
                && r.reason.kind != webcache_obs::ReasonKind::None),
        "no eviction record with a reason payload in the bundle"
    );
    webcache_obs::json::parse(&fs::read_to_string(bundle.join("registry.json")).unwrap())
        .expect("registry.json parses");
    webcache_obs::json::parse(&fs::read_to_string(bundle.join("manifest.json")).unwrap())
        .expect("manifest.json parses");

    // `webcache inspect` over the bundle reports the forensics.
    let report = webcache_cli::run(&argv(&format!("inspect --bundle {}", bundle.display())))
        .expect("inspect succeeds");
    for needle in [
        "with a policy reason payload)",
        "greedy_dual",
        "wasted evictions",
        "eviction age",
        "reuse distance at eviction",
        "top regret documents",
    ] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
    assert!(
        !report.contains("(no wasted evictions in the record window)"),
        "hot-set churn must register as wasted evictions:\n{report}"
    );

    fs::remove_file(trace_path).ok();
    let _ = fs::remove_dir_all(&bundle_dir);
}

#[test]
fn sharded_daemon_exports_per_shard_balance_metrics() {
    let args = Args::parse(
        &argv(
            "--workload dfn --quick --passes 2 --port 0 --log-level error --shards 4 --clients 4",
        ),
        &["quick"],
    )
    .unwrap();
    let opts = ServeOptions::from_args(&args).unwrap();

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || {
        serve_with(opts, &SHUTDOWN, move |addr| tx.send(addr).unwrap()).unwrap()
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");

    let health = await_replay_done(addr, Duration::from_secs(60));
    assert!(health.contains("\"passes\": 2"), "{health}");

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    for shard in 0..4 {
        assert!(
            metrics.contains(&format!(
                "webcache_serve_shard_requests_total{{shard=\"{shard}\"}}"
            )),
            "missing shard {shard} requests: {metrics}"
        );
        assert!(
            metrics.contains(&format!(
                "webcache_serve_shard_hit_rate{{shard=\"{shard}\"}}"
            )),
            "missing shard {shard} hit rate: {metrics}"
        );
    }
    assert!(
        metrics.contains("webcache_serve_shard_request_imbalance"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_serve_passes_total 2"),
        "{metrics}"
    );
    // Lock contention instrumentation: every shard's probe saw real
    // acquisitions, and the derived contention-ratio gauge exports.
    for shard in 0..4 {
        let acquire = metrics
            .lines()
            .find(|l| {
                l.starts_with(&format!(
                    "webcache_shard_lock_acquire_total{{shard=\"{shard}\"}}"
                ))
            })
            .unwrap_or_else(|| panic!("missing shard {shard} lock acquisitions: {metrics}"));
        let value: f64 = acquire
            .split_whitespace()
            .next_back()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        assert!(value > 0.0, "shard {shard} never locked: {acquire}");
        assert!(
            metrics.contains(&format!(
                "webcache_shard_lock_wait_us_count{{shard=\"{shard}\"}}"
            )),
            "missing shard {shard} wait histogram: {metrics}"
        );
        assert!(
            metrics.contains(&format!(
                "webcache_shard_lock_contention_ratio{{shard=\"{shard}\"}}"
            )),
            "missing shard {shard} contention ratio: {metrics}"
        );
    }
    // The latency observer rides the concurrent factory too: per-type
    // p50/p99 modeled-latency gauges export under WorkloadStream load.
    for needle in [
        "webcache_modeled_latency_us{doc_type=\"overall\",quantile=\"p50\"}",
        "webcache_modeled_latency_us{doc_type=\"overall\",quantile=\"p99\"}",
        "webcache_modeled_latency_us{doc_type=\"HTML\",quantile=\"p99\"}",
        "webcache_modeled_latency_us{doc_type=\"Images\",quantile=\"p99\"}",
    ] {
        assert!(metrics.contains(needle), "missing {needle}: {metrics}");
    }

    // `webcache top --once` renders one frame from /snapshot.
    let frame = webcache_cli::run(&argv(&format!("top --once --port {}", addr.port())))
        .expect("top --once succeeds");
    assert!(frame.contains("webcache top"), "{frame}");
    assert!(frame.contains("modeled latency"), "{frame}");
    assert!(frame.contains("shard 3"), "{frame}");

    // The concurrent engine records flight events too (one ring per
    // shard, no reason payloads): /debug/flight merges all four rings.
    let (status, flight) = http_get(addr, "/debug/flight");
    assert_eq!(status, 200);
    let parsed = webcache_obs::json::parse(&flight).expect("flight parses");
    assert!(parsed.get("records").is_some(), "{flight}");
    assert!(flight.contains("\"shards\": 4"), "{flight}");
    assert!(flight.contains("\"event\": "), "{flight}");
    // Every shard actually received traffic on a realistic workload.
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("webcache_serve_shard_requests_total{") {
            let value: f64 = rest
                .split_whitespace()
                .next_back()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            assert!(value > 0.0, "idle shard: {line}");
        }
    }

    SHUTDOWN.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread");
}

#[test]
fn workload_mode_replays_the_endless_generator() {
    let args = Args::parse(
        &argv("--workload dfn --quick --passes 2 --port 0 --log-level error"),
        &["quick"],
    )
    .unwrap();
    let opts = ServeOptions::from_args(&args).unwrap();

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || {
        serve_with(opts, &SHUTDOWN, move |addr| tx.send(addr).unwrap()).unwrap()
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");

    let health = await_replay_done(addr, Duration::from_secs(60));
    assert!(health.contains("\"passes\": 2"), "{health}");

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("webcache_serve_passes_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_http_requests_total{path=\"/healthz\"}"),
        "{metrics}"
    );

    SHUTDOWN.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread");
}

/// All-cold traffic: every request misses, so the hit rate is flat at
/// zero from the first window (no cliff — the anomaly detectors stay
/// quiet) while any hit-rate SLO burns hot in both windows.
fn cold_trace() -> Trace {
    (0..1200u64)
        .map(|i| {
            Request::new(
                Timestamp::from_millis(i),
                DocId::new(i),
                DocumentType::Html,
                ByteSize::new(900),
            )
        })
        .collect()
}

#[test]
fn sustained_slo_breach_writes_exactly_one_burn_bundle() {
    let trace_path = temp_path("slo.wctb");
    let log_path = temp_path("slo.log");
    let bundle_dir = temp_path("slo-bundles");
    fs::write(
        &trace_path,
        webcache_trace::format_bin::to_bytes(&cold_trace()),
    )
    .unwrap();
    fs::remove_file(&log_path).ok();
    let _ = fs::remove_dir_all(&bundle_dir);

    // 0% hit rate against a 90% floor burns at 10x in both windows from
    // pass 1 on. The alert is edge-triggered, so three breaching passes
    // under a generous --max-bundles still produce exactly one bundle.
    let args = Args::parse(
        &argv(&format!(
            "--trace {} --policy lru --capacity 4MiB --warmup 0 --passes 3 --port 0 \
             --log-level warn --log-file {} --slo-hit-rate 0.9 --slo-window 4 \
             --bundle-dir {} --max-bundles 4",
            trace_path.display(),
            log_path.display(),
            bundle_dir.display()
        )),
        &["quick"],
    )
    .unwrap();
    let opts = ServeOptions::from_args(&args).unwrap();

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || {
        serve_with(opts, &SHUTDOWN, move |addr| tx.send(addr).unwrap()).unwrap()
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");
    let health = await_replay_done(addr, Duration::from_secs(30));
    assert!(health.contains("\"passes\": 3"), "{health}");

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("webcache_slo_burn_rate{slo=\"hit_rate\",window=\"short\"} 10"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_slo_burn_rate{slo=\"hit_rate\",window=\"long\"} 10"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_slo_breach_total{slo=\"hit_rate\"} 1"),
        "{metrics}"
    );
    // No latency SLO configured: its burn-rate family is absent.
    assert!(!metrics.contains("slo=\"latency_p99\""), "{metrics}");
    // The latency observer publishes regardless of SLO configuration;
    // all-miss traffic pins p50 at origin-link latencies (>100ms).
    let p50 = metrics
        .lines()
        .find(|l| {
            l.starts_with("webcache_modeled_latency_us{doc_type=\"overall\",quantile=\"p50\"}")
        })
        .expect("overall p50 gauge");
    let p50_us: f64 = p50.split_whitespace().next_back().unwrap().parse().unwrap();
    assert!(p50_us > 100_000.0, "{p50}");

    SHUTDOWN.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread");

    // Exactly one bundle, and it is the SLO trigger's (the anomaly
    // detectors had nothing to say about uniformly cold traffic).
    let bundles: Vec<PathBuf> = fs::read_dir(&bundle_dir)
        .expect("bundle dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("bundle-"))
        })
        .collect();
    assert_eq!(bundles.len(), 1, "expected exactly one bundle: {bundles:?}");
    let name = bundles[0]
        .file_name()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    assert!(name.contains("slo_hit_rate_burn"), "{name}");
    let manifest = fs::read_to_string(bundles[0].join("manifest.json")).unwrap();
    assert!(manifest.contains("slo_hit_rate_burn"), "{manifest}");

    // Exactly one "slo breach" warn record (edge-triggered alerting).
    let log = fs::read_to_string(&log_path).unwrap();
    let warns: Vec<&str> = log.lines().filter(|l| l.contains("slo breach")).collect();
    assert_eq!(warns.len(), 1, "one breach warn expected: {log}");
    assert!(warns[0].contains("\"slo\":\"hit_rate\""), "{log}");

    fs::remove_file(trace_path).ok();
    fs::remove_file(log_path).ok();
    let _ = fs::remove_dir_all(&bundle_dir);
}

#[test]
fn serve_usage_errors() {
    for bad in [
        "",                                   // no source
        "--trace a.wct --workload dfn",       // both sources
        "--workload mars",                    // unknown profile
        "--workload dfn --log-level loud",    // unknown level
        "--workload dfn --warmup 1.5",        // warmup out of range
        "--workload dfn --rate 0",            // non-positive rate
        "--workload dfn --rate nan",          // parses as f64 but is useless
        "--workload dfn --rate inf",          // likewise
        "--workload dfn --rate -3",           // negative
        "--workload dfn --rate fast",         // non-numeric
        "--workload dfn --anomaly-window 0",  // empty window
        "--workload dfn --shards 0",          // zero shards
        "--workload dfn --shards 6",          // not a power of two
        "--workload dfn --shards four",       // non-numeric
        "--workload dfn --clients 0",         // zero clients
        "--workload dfn --clients many",      // non-numeric
        "--workload dfn --flight-capacity 0", // empty flight ring
        "--workload dfn --max-bundles 0",     // bundle cap below 1
        "--workload dfn --max-bundles eight", // non-numeric
        "--workload dfn --slo-hit-rate 0",    // floor must be > 0
        "--workload dfn --slo-hit-rate 1",    // and < 1
        "--workload dfn --slo-hit-rate nan",  // parses as f64 but useless
        "--workload dfn --slo-hit-rate high", // non-numeric
        "--workload dfn --slo-p99-ms 0",      // budget must be positive
        "--workload dfn --slo-p99-ms -4",     // negative
        "--workload dfn --slo-p99-ms inf",    // non-finite
        "--workload dfn --slo-window 0",      // empty burn window
        "--workload dfn --slo-burn 0",        // non-positive threshold
        "--workload dfn --slo-burn nan",      // non-finite threshold
        "--workload dfn --dash-history 0",    // empty snapshot ring
        "--workload dfn --dash-history deep", // non-numeric
    ] {
        let args = Args::parse(&argv(bad), &["quick"]).unwrap();
        assert!(
            ServeOptions::from_args(&args).is_err(),
            "`{bad}` should fail"
        );
    }
}
