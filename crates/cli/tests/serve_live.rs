//! Acceptance tests for `webcache serve`: the daemon answers /metrics,
//! /healthz and /snapshot while (and after) replaying, an injected
//! hit-rate cliff increments `webcache_anomaly_total` AND produces
//! exactly one rate-limited JSONL warn record, and shutdown via the
//! shared flag is clean.
//!
//! The tests drive [`serve_with`] directly (own shutdown flag, port 0,
//! address collected from the readiness callback) but build their
//! [`ServeOptions`] through the same `Args` parsing as the binary.

use std::fs;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use webcache_cli::{serve_with, Args, ServeOptions};
use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("webcache-serve-test-{}-{name}", std::process::id()));
    p
}

/// One short HTTP/1.1 exchange; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Polls `/healthz` until the replay loop reports done (or panics after
/// `deadline`).
fn await_replay_done(addr: SocketAddr, deadline: Duration) -> String {
    let started = Instant::now();
    loop {
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"replaying\": false") {
            return body;
        }
        assert!(
            started.elapsed() < deadline,
            "replay did not finish in {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A single-type trace with a hit-rate cliff: with a 500-request anomaly
/// window, window 1 cycles an 8-document hot set (~98% hit rate, seeds
/// the EWMA baseline) and window 2 is almost entirely cold distinct
/// documents, collapsing the hit rate far past the detection threshold.
fn cliff_trace() -> Trace {
    let mut trace = Trace::with_capacity(1100);
    let mut push = |i: u64, doc: u64| {
        trace.push(Request::new(
            Timestamp::from_millis(i),
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(900),
        ));
    };
    for i in 0..512u64 {
        push(i, i % 8);
    }
    for i in 512..1100u64 {
        push(i, 1000 + i);
    }
    trace
}

#[test]
fn cliff_trace_fires_anomaly_once_and_endpoints_answer() {
    let trace_path = temp_path("cliff.wctb");
    let log_path = temp_path("cliff.log");
    fs::write(
        &trace_path,
        webcache_trace::format_bin::to_bytes(&cliff_trace()),
    )
    .unwrap();
    fs::remove_file(&log_path).ok();

    // Capacity 4MiB holds every document, so no evictions (and thus no
    // storm/thrash detections) muddy the single expected collapse warn.
    // Warn-level log file keeps the serve-loop info records out of it.
    let args = Args::parse(
        &argv(&format!(
            "--trace {} --policy lru --capacity 4MiB --warmup 0 --passes 1 --port 0 \
             --anomaly-window 500 --log-level warn --log-file {}",
            trace_path.display(),
            log_path.display()
        )),
        &["quick"],
    )
    .unwrap();
    let opts = ServeOptions::from_args(&args).unwrap();

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || {
        serve_with(opts, &SHUTDOWN, move |addr| tx.send(addr).unwrap()).unwrap()
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");

    // /healthz answers while the daemon is up; wait out the single pass.
    let health = await_replay_done(addr, Duration::from_secs(30));
    assert!(health.contains("\"status\": \"ok\""), "{health}");
    assert!(health.contains("\"passes\": 1"), "{health}");
    assert!(health.contains("\"policy\": \"LRU\""), "{health}");

    // /metrics carries the anomaly counter and the serve-loop families.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("webcache_anomaly_total{kind=\"hit_rate_collapse\",doc_type=\"HTML\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_serve_passes_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE webcache_serve_last_pass_req_per_sec gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_sim_hits_total{policy=\"LRU\"}"),
        "{metrics}"
    );

    // /snapshot is valid JSON mirroring the registry.
    let (status, snapshot) = http_get(addr, "/snapshot");
    assert_eq!(status, 200);
    let parsed = webcache_obs::json::parse(&snapshot).expect("snapshot parses");
    assert!(parsed.get("counters").is_some(), "{snapshot}");

    // Unknown paths 404 without taking the daemon down.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);

    SHUTDOWN.store(true, Ordering::SeqCst);
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.contains("1 passes"), "{summary}");

    // Exactly one rate-limited warn record reached the log file.
    let log = fs::read_to_string(&log_path).unwrap();
    let warns: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"kind\":\"hit_rate_collapse\""))
        .collect();
    assert_eq!(warns.len(), 1, "rate limiting failed: {log}");
    assert!(warns[0].contains("\"level\":\"warn\""), "{log}");
    assert!(warns[0].contains("\"doc_type\":\"HTML\""), "{log}");
    assert_eq!(log.lines().count(), 1, "unexpected extra records: {log}");

    fs::remove_file(trace_path).ok();
    fs::remove_file(log_path).ok();
}

#[test]
fn sharded_daemon_exports_per_shard_balance_metrics() {
    let args = Args::parse(
        &argv(
            "--workload dfn --quick --passes 2 --port 0 --log-level error --shards 4 --clients 4",
        ),
        &["quick"],
    )
    .unwrap();
    let opts = ServeOptions::from_args(&args).unwrap();

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || {
        serve_with(opts, &SHUTDOWN, move |addr| tx.send(addr).unwrap()).unwrap()
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");

    let health = await_replay_done(addr, Duration::from_secs(60));
    assert!(health.contains("\"passes\": 2"), "{health}");

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    for shard in 0..4 {
        assert!(
            metrics.contains(&format!(
                "webcache_serve_shard_requests_total{{shard=\"{shard}\"}}"
            )),
            "missing shard {shard} requests: {metrics}"
        );
        assert!(
            metrics.contains(&format!(
                "webcache_serve_shard_hit_rate{{shard=\"{shard}\"}}"
            )),
            "missing shard {shard} hit rate: {metrics}"
        );
    }
    assert!(
        metrics.contains("webcache_serve_shard_request_imbalance"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_serve_passes_total 2"),
        "{metrics}"
    );
    // Every shard actually received traffic on a realistic workload.
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("webcache_serve_shard_requests_total{") {
            let value: f64 = rest
                .split_whitespace()
                .next_back()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            assert!(value > 0.0, "idle shard: {line}");
        }
    }

    SHUTDOWN.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread");
}

#[test]
fn workload_mode_replays_the_endless_generator() {
    let args = Args::parse(
        &argv("--workload dfn --quick --passes 2 --port 0 --log-level error"),
        &["quick"],
    )
    .unwrap();
    let opts = ServeOptions::from_args(&args).unwrap();

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || {
        serve_with(opts, &SHUTDOWN, move |addr| tx.send(addr).unwrap()).unwrap()
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("ready");

    let health = await_replay_done(addr, Duration::from_secs(60));
    assert!(health.contains("\"passes\": 2"), "{health}");

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("webcache_serve_passes_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("webcache_http_requests_total{path=\"/healthz\"}"),
        "{metrics}"
    );

    SHUTDOWN.store(true, Ordering::SeqCst);
    daemon.join().expect("daemon thread");
}

#[test]
fn serve_usage_errors() {
    for bad in [
        "",                                  // no source
        "--trace a.wct --workload dfn",      // both sources
        "--workload mars",                   // unknown profile
        "--workload dfn --log-level loud",   // unknown level
        "--workload dfn --warmup 1.5",       // warmup out of range
        "--workload dfn --rate 0",           // non-positive rate
        "--workload dfn --rate nan",         // parses as f64 but is useless
        "--workload dfn --rate inf",         // likewise
        "--workload dfn --rate -3",          // negative
        "--workload dfn --rate fast",        // non-numeric
        "--workload dfn --anomaly-window 0", // empty window
        "--workload dfn --shards 0",         // zero shards
        "--workload dfn --shards 6",         // not a power of two
        "--workload dfn --shards four",      // non-numeric
        "--workload dfn --clients 0",        // zero clients
        "--workload dfn --clients many",     // non-numeric
    ] {
        let args = Args::parse(&argv(bad), &["quick"]).unwrap();
        assert!(
            ServeOptions::from_args(&args).is_err(),
            "`{bad}` should fail"
        );
    }
}
