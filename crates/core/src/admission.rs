//! Cache admission control.
//!
//! Replacement decides *what to evict*; admission decides *what to let
//! in*. The proxy literature around the paper studied both: size
//! thresholds (LRU-THOLD — never cache documents above a limit, an
//! admission-side approximation of the SIZE policy) and frequency
//! filters (cache only on the second request, suppressing the one-timer
//! majority that both DFN and RTP exhibit). The modern cohort adds
//! TinyLFU: a [`FrequencySketch`]-backed filter that admits a candidate
//! only when its recent popularity clears a threshold, composable with
//! any replacement policy (`tinylfu+slru` is the W-TinyLFU layout).
//!
//! The seam is the [`AdmissionPolicy`] trait: the
//! [`Cache`](crate::Cache) consults an [`AdmissionController`] (a thin
//! spec-tagged wrapper over a boxed `AdmissionPolicy`) before storing a
//! fetched document; rejected documents are forwarded to the client
//! without being stored. [`AdmissionSpec`] survives as the parse/serde
//! frontend that names which filter to build.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use webcache_trace::{ByteSize, DocId};

use crate::sketch::FrequencySketch;

/// Admission policy selector: the declarative, serializable frontend.
///
/// `AdmissionSpec::new` (via [`AdmissionController::new`]) builds the
/// matching [`AdmissionPolicy`] implementation; the spec itself carries
/// no runtime state.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum AdmissionSpec {
    /// Admit everything (the paper's setting).
    #[default]
    All,
    /// Admit only documents of at most this size (LRU-THOLD).
    MaxSize(ByteSize),
    /// Admit a document only on its second fetch within a sliding window
    /// of recently seen fetches (a one-timer filter). The `usize` is the
    /// window capacity in distinct documents.
    SecondHit(usize),
    /// TinyLFU: admit under cache pressure only when the Count-Min
    /// frequency sketch estimates the candidate was requested at least
    /// twice in the recent sample window. While the cache has room,
    /// everything is admitted (the sketch still records).
    TinyLfu,
}

/// Deprecated alias for [`AdmissionSpec`] — the pre-redesign name. New
/// code should say `AdmissionSpec`.
pub type AdmissionRule = AdmissionSpec;

impl AdmissionSpec {
    /// A short label for composed policy names (`"TinyLFU"` in
    /// `"TinyLFU+SLRU"`), or `None` for [`AdmissionSpec::All`], which is
    /// invisible in labels.
    pub fn label_prefix(&self) -> Option<String> {
        match self {
            AdmissionSpec::All => None,
            AdmissionSpec::MaxSize(limit) => Some(format!("MAX:{}", limit.as_u64())),
            AdmissionSpec::SecondHit(window) => Some(format!("2HIT:{window}")),
            AdmissionSpec::TinyLfu => Some("TinyLFU".to_string()),
        }
    }
}

/// The admission seam: a stateful filter consulted on every miss-fill.
///
/// Implementations decide per candidate; the [`Cache`](crate::Cache)
/// additionally forwards *hits* to [`AdmissionPolicy::record`] when
/// [`AdmissionPolicy::wants_record`] is `true`, so frequency-based
/// filters observe the full access stream, not just misses.
pub trait AdmissionPolicy: fmt::Debug + Send {
    /// Decides whether a fetched document may enter the cache, updating
    /// internal state. `pressure` is `true` when storing the document
    /// would force evictions; filters that only guard a contended cache
    /// (TinyLFU) admit freely without pressure, while hard predicates
    /// (size thresholds) ignore the flag.
    fn admit(&mut self, doc: DocId, size: ByteSize, pressure: bool) -> bool;

    /// Observes a cache hit for `doc`. Only called when
    /// [`AdmissionPolicy::wants_record`] returns `true`.
    fn record(&mut self, doc: DocId) {
        let _ = doc;
    }

    /// Whether this filter needs to observe hits via
    /// [`AdmissionPolicy::record`]. The cache caches this answer to keep
    /// the hit path virtual-call free for filters that don't.
    fn wants_record(&self) -> bool {
        false
    }

    /// Number of documents currently remembered by the filter's
    /// bounded memory (diagnostic; `0` for stateless filters).
    fn remembered(&self) -> usize {
        0
    }

    /// The reason payload behind the most recent
    /// [`AdmissionPolicy::admit`] verdict, for the flight recorder.
    /// Filters without an articulable reason return the none-kind.
    fn last_reason(&self) -> webcache_obs::Reason {
        webcache_obs::Reason::none()
    }
}

/// Admits everything — [`AdmissionSpec::All`].
#[derive(Debug, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn admit(&mut self, _doc: DocId, _size: ByteSize, _pressure: bool) -> bool {
        true
    }
}

/// Size-threshold filter — [`AdmissionSpec::MaxSize`].
#[derive(Debug)]
pub struct MaxSizeFilter {
    limit: ByteSize,
    /// Size consulted by the most recent verdict (flight-recorder
    /// reason payload).
    last_size: ByteSize,
}

impl MaxSizeFilter {
    /// A filter admitting documents of at most `limit` bytes.
    pub fn new(limit: ByteSize) -> Self {
        MaxSizeFilter {
            limit,
            last_size: ByteSize::ZERO,
        }
    }
}

impl AdmissionPolicy for MaxSizeFilter {
    fn admit(&mut self, doc: DocId, size: ByteSize, _pressure: bool) -> bool {
        let _ = doc;
        self.last_size = size;
        size <= self.limit
    }

    fn last_reason(&self) -> webcache_obs::Reason {
        webcache_obs::Reason::max_size(self.last_size.as_f64(), self.limit.as_f64())
    }
}

/// One-timer filter — [`AdmissionSpec::SecondHit`].
///
/// Remembers up to `window` recently fetched documents in a
/// seq-stamped map + FIFO; a refetch while remembered is admitted and
/// consumes the entry. Memory is O(window) regardless of catalog size
/// (the pre-redesign `Vec<bool>` grew with the largest slot ever seen —
/// a slow leak under the endless `WorkloadStream`).
#[derive(Debug)]
pub struct SecondHitFilter {
    window: usize,
    /// Live entries: slot → stamp of its `order` entry.
    pending: HashMap<u32, u64>,
    /// FIFO of (slot, stamp); entries whose stamp no longer matches
    /// `pending` are stale and skipped.
    order: VecDeque<(u32, u64)>,
    /// Monotone stamp distinguishing re-insertions of the same slot.
    seq: u64,
    /// Whether the most recent verdict found the doc remembered
    /// (flight-recorder reason payload).
    last_seen: bool,
}

impl SecondHitFilter {
    /// A filter with the given window (distinct documents).
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "second-hit window must be positive");
        SecondHitFilter {
            window,
            pending: HashMap::new(),
            order: VecDeque::new(),
            seq: 0,
            last_seen: false,
        }
    }
}

impl AdmissionPolicy for SecondHitFilter {
    fn admit(&mut self, doc: DocId, _size: ByteSize, _pressure: bool) -> bool {
        let slot = doc.as_u64() as u32;
        if self.pending.remove(&slot).is_some() {
            // Second fetch: admit. (The stale entry in `order` is
            // skipped when it surfaces.)
            self.last_seen = true;
            return true;
        }
        self.last_seen = false;
        self.seq += 1;
        self.pending.insert(slot, self.seq);
        self.order.push_back((slot, self.seq));
        // Bound the memory to the window, skipping stale entries.
        while self.pending.len() > self.window {
            let Some((old, stamp)) = self.order.pop_front() else {
                break;
            };
            if self.pending.get(&old) == Some(&stamp) {
                self.pending.remove(&old);
            }
        }
        // The FIFO itself can accumulate stale entries faster than the
        // window bound drains them; compact it amortized-O(1).
        if self.order.len() >= 2 * self.window + 2 {
            let pending = &self.pending;
            self.order
                .retain(|&(slot, stamp)| pending.get(&slot) == Some(&stamp));
        }
        false
    }

    fn remembered(&self) -> usize {
        self.pending.len()
    }

    fn last_reason(&self) -> webcache_obs::Reason {
        webcache_obs::Reason::second_hit(self.last_seen)
    }
}

/// Frequency-sketch filter — [`AdmissionSpec::TinyLfu`].
///
/// Every consulted candidate and every recorded hit feeds the
/// [`FrequencySketch`]; under pressure a candidate must have an
/// estimated recent frequency ≥ 2 (i.e. this is at least its second
/// appearance in the sample window) to displace resident documents.
#[derive(Debug)]
pub struct TinyLfuFilter {
    sketch: FrequencySketch,
    /// Estimate behind the most recent verdict (flight-recorder reason
    /// payload).
    last_estimate: u32,
}

/// The frequency estimate a pressured TinyLFU candidate must reach.
pub const TINYLFU_ADMIT_THRESHOLD: u32 = 2;

impl TinyLfuFilter {
    /// A filter over a default-width sketch.
    pub fn new() -> Self {
        TinyLfuFilter {
            sketch: FrequencySketch::new(),
            last_estimate: 0,
        }
    }
}

impl Default for TinyLfuFilter {
    fn default() -> Self {
        TinyLfuFilter::new()
    }
}

impl AdmissionPolicy for TinyLfuFilter {
    fn admit(&mut self, doc: DocId, _size: ByteSize, pressure: bool) -> bool {
        let estimate = self.sketch.record(doc.as_u64());
        self.last_estimate = estimate;
        !pressure || estimate >= TINYLFU_ADMIT_THRESHOLD
    }

    fn record(&mut self, doc: DocId) {
        self.sketch.record(doc.as_u64());
    }

    fn wants_record(&self) -> bool {
        true
    }

    fn last_reason(&self) -> webcache_obs::Reason {
        webcache_obs::Reason::tinylfu(
            f64::from(self.last_estimate),
            f64::from(TINYLFU_ADMIT_THRESHOLD),
        )
    }
}

/// Stateful admission decision-maker: the cache-facing wrapper that
/// pairs the declarative [`AdmissionSpec`] with its built
/// [`AdmissionPolicy`]. See the module-level documentation above.
#[derive(Debug)]
pub struct AdmissionController {
    spec: AdmissionSpec,
    policy: Box<dyn AdmissionPolicy>,
    wants_record: bool,
}

impl AdmissionController {
    /// Creates a controller for the given spec.
    ///
    /// # Panics
    ///
    /// Panics when a [`AdmissionSpec::SecondHit`] window is zero.
    pub fn new(spec: AdmissionSpec) -> Self {
        let policy: Box<dyn AdmissionPolicy> = match spec {
            AdmissionSpec::All => Box::new(AdmitAll),
            AdmissionSpec::MaxSize(limit) => Box::new(MaxSizeFilter::new(limit)),
            AdmissionSpec::SecondHit(window) => Box::new(SecondHitFilter::new(window)),
            AdmissionSpec::TinyLfu => Box::new(TinyLfuFilter::new()),
        };
        let wants_record = policy.wants_record();
        AdmissionController {
            spec,
            policy,
            wants_record,
        }
    }

    /// The configured spec.
    pub fn rule(&self) -> AdmissionSpec {
        self.spec
    }

    /// Decides whether a fetched document may enter the cache, updating
    /// internal state. Equivalent to full-pressure
    /// [`AdmissionController::admit_with_pressure`] — the conservative
    /// reading for callers that don't track occupancy.
    pub fn admit(&mut self, doc: DocId, size: ByteSize) -> bool {
        self.policy.admit(doc, size, true)
    }

    /// Decides admission with an explicit pressure flag (`true` when
    /// storing the document would force evictions).
    pub fn admit_with_pressure(&mut self, doc: DocId, size: ByteSize, pressure: bool) -> bool {
        self.policy.admit(doc, size, pressure)
    }

    /// Forwards a cache hit to the filter (only meaningful when
    /// [`AdmissionController::wants_record`] is `true`).
    pub fn record(&mut self, doc: DocId) {
        self.policy.record(doc);
    }

    /// Whether the filter needs to observe hits. Cached at construction
    /// so the cache's hit path can branch on a plain bool.
    pub fn wants_record(&self) -> bool {
        self.wants_record
    }

    /// Number of documents currently remembered by the filter's bounded
    /// memory.
    pub fn remembered(&self) -> usize {
        self.policy.remembered()
    }

    /// The reason payload behind the most recent admission verdict
    /// (none-kind for filters without one), for the flight recorder.
    pub fn last_reason(&self) -> webcache_obs::Reason {
        self.policy.last_reason()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn admit_all() {
        let mut c = AdmissionController::new(AdmissionRule::All);
        assert!(c.admit(doc(1), ByteSize::from_gib(10)));
        assert_eq!(c.remembered(), 0);
    }

    #[test]
    fn max_size_threshold() {
        let mut c = AdmissionController::new(AdmissionRule::MaxSize(ByteSize::new(1000)));
        assert!(
            c.admit(doc(1), ByteSize::new(1000)),
            "boundary is inclusive"
        );
        assert!(!c.admit(doc(2), ByteSize::new(1001)));
    }

    #[test]
    fn second_hit_admits_on_refetch() {
        let mut c = AdmissionController::new(AdmissionRule::SecondHit(100));
        assert!(!c.admit(doc(1), ByteSize::new(10)), "first fetch rejected");
        assert!(c.admit(doc(1), ByteSize::new(10)), "second fetch admitted");
        // After admission the memory entry is consumed: a later fetch
        // (e.g. after eviction) starts the cycle over.
        assert!(!c.admit(doc(1), ByteSize::new(10)));
    }

    #[test]
    fn second_hit_window_forgets_old_documents() {
        let mut c = AdmissionController::new(AdmissionRule::SecondHit(2));
        c.admit(doc(1), ByteSize::new(1));
        c.admit(doc(2), ByteSize::new(1));
        c.admit(doc(3), ByteSize::new(1)); // evicts doc 1 from the window
        assert_eq!(c.remembered(), 2);
        assert!(!c.admit(doc(1), ByteSize::new(1)), "doc 1 was forgotten");
    }

    #[test]
    fn second_hit_skips_stale_order_entries() {
        let mut c = AdmissionController::new(AdmissionRule::SecondHit(2));
        c.admit(doc(1), ByteSize::new(1));
        assert!(c.admit(doc(1), ByteSize::new(1))); // consume doc 1
                                                    // Window has a stale `order` entry for doc 1; filling it must
                                                    // still retain the two live docs.
        c.admit(doc(2), ByteSize::new(1));
        c.admit(doc(3), ByteSize::new(1));
        assert_eq!(c.remembered(), 2);
        assert!(
            c.admit(doc(2), ByteSize::new(1)),
            "doc 2 must still be live"
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = AdmissionController::new(AdmissionRule::SecondHit(0));
    }

    /// Regression for the pre-redesign slow leak: the second-hit memory
    /// must stay O(window) while the catalog of distinct documents grows
    /// without bound (the endless `WorkloadStream` scenario).
    #[test]
    fn second_hit_memory_stays_bounded_under_growing_catalog() {
        let window = 64;
        let mut c = AdmissionController::new(AdmissionRule::SecondHit(window));
        let mut filter = SecondHitFilter::new(window);
        for i in 0..1_000_000u64 {
            c.admit(doc(i), ByteSize::new(1));
            filter.admit(doc(i), ByteSize::new(1), true);
            assert!(c.remembered() <= window);
        }
        // The internal FIFO must be bounded too, not just the live map.
        assert!(
            filter.order.len() <= 2 * window + 2,
            "order FIFO leaked: {} entries",
            filter.order.len()
        );
        assert_eq!(filter.pending.len(), window);
    }

    #[test]
    fn tinylfu_admits_freely_without_pressure_and_gates_under_pressure() {
        let mut c = AdmissionController::new(AdmissionSpec::TinyLfu);
        assert!(c.wants_record());
        assert!(
            c.admit_with_pressure(doc(1), ByteSize::new(10), false),
            "no pressure: admit and record"
        );
        assert!(
            !c.admit_with_pressure(doc(2), ByteSize::new(10), true),
            "cold candidate rejected under pressure"
        );
        assert!(
            c.admit_with_pressure(doc(2), ByteSize::new(10), true),
            "second appearance clears the gate"
        );
        // Doc 1 was recorded during its pressure-free admission, so it
        // passes a later pressured re-check.
        assert!(c.admit_with_pressure(doc(1), ByteSize::new(10), true));
    }

    #[test]
    fn tinylfu_record_counts_toward_admission() {
        let mut c = AdmissionController::new(AdmissionSpec::TinyLfu);
        c.record(doc(9));
        assert!(
            c.admit_with_pressure(doc(9), ByteSize::new(10), true),
            "a recorded hit plus the candidate probe reaches the threshold"
        );
    }

    #[test]
    fn spec_label_prefixes() {
        assert_eq!(AdmissionSpec::All.label_prefix(), None);
        assert_eq!(
            AdmissionSpec::TinyLfu.label_prefix().as_deref(),
            Some("TinyLFU")
        );
        assert_eq!(
            AdmissionSpec::SecondHit(16).label_prefix().as_deref(),
            Some("2HIT:16")
        );
        assert_eq!(
            AdmissionSpec::MaxSize(ByteSize::new(4096))
                .label_prefix()
                .as_deref(),
            Some("MAX:4096")
        );
    }
}
