//! Cache admission control.
//!
//! Replacement decides *what to evict*; admission decides *what to let
//! in*. The proxy literature around the paper studied both: size
//! thresholds (LRU-THOLD — never cache documents above a limit, an
//! admission-side approximation of the SIZE policy) and frequency
//! filters (cache only on the second request, suppressing the one-timer
//! majority that both DFN and RTP exhibit). The [`Cache`](crate::Cache)
//! consults an [`AdmissionController`] before storing a fetched
//! document; rejected documents are forwarded to the client without
//! being stored.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use webcache_trace::{ByteSize, DocId};

/// Admission policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdmissionRule {
    /// Admit everything (the paper's setting).
    #[default]
    All,
    /// Admit only documents of at most this size (LRU-THOLD).
    MaxSize(ByteSize),
    /// Admit a document only on its second fetch within a sliding window
    /// of recently seen fetches (a one-timer filter). The `usize` is the
    /// window capacity in distinct documents.
    SecondHit(usize),
}

/// Stateful admission decision-maker. See the module-level documentation above.
///
/// The second-hit memory is a per-slot bitmap plus a FIFO of slots:
/// document handles are dense interned slots (the cache interns before
/// consulting admission), so a `Vec<bool>` replaces the hash set.
#[derive(Debug)]
pub struct AdmissionController {
    rule: AdmissionRule,
    /// SecondHit memory: `seen_once[slot]` = fetched once, not yet
    /// admitted or forgotten.
    seen_once: Vec<bool>,
    /// Number of set bits in `seen_once`.
    remembered: usize,
    /// FIFO of slots for window bounding; may hold stale handles.
    order: VecDeque<u32>,
}

impl AdmissionController {
    /// Creates a controller for the given rule.
    ///
    /// # Panics
    ///
    /// Panics when a [`AdmissionRule::SecondHit`] window is zero.
    pub fn new(rule: AdmissionRule) -> Self {
        if let AdmissionRule::SecondHit(window) = rule {
            assert!(window > 0, "second-hit window must be positive");
        }
        AdmissionController {
            rule,
            seen_once: Vec::new(),
            remembered: 0,
            order: VecDeque::new(),
        }
    }

    /// The configured rule.
    pub fn rule(&self) -> AdmissionRule {
        self.rule
    }

    /// Decides whether a fetched document may enter the cache, updating
    /// internal state.
    pub fn admit(&mut self, doc: DocId, size: ByteSize) -> bool {
        match self.rule {
            AdmissionRule::All => true,
            AdmissionRule::MaxSize(limit) => size <= limit,
            AdmissionRule::SecondHit(window) => {
                let slot = doc.as_u64() as usize;
                if slot >= self.seen_once.len() {
                    self.seen_once.resize(slot + 1, false);
                }
                if self.seen_once[slot] {
                    // Second fetch: admit. (The stale entry in `order`
                    // is skipped when it surfaces.)
                    self.seen_once[slot] = false;
                    self.remembered -= 1;
                    return true;
                }
                self.seen_once[slot] = true;
                self.remembered += 1;
                self.order.push_back(slot as u32);
                // Bound the memory to the window, skipping stale handles.
                while self.remembered > window {
                    let Some(old) = self.order.pop_front() else {
                        break;
                    };
                    let old = old as usize;
                    if self.seen_once[old] {
                        self.seen_once[old] = false;
                        self.remembered -= 1;
                    }
                }
                false
            }
        }
    }

    /// Number of documents currently remembered by the second-hit filter.
    pub fn remembered(&self) -> usize {
        self.remembered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn admit_all() {
        let mut c = AdmissionController::new(AdmissionRule::All);
        assert!(c.admit(doc(1), ByteSize::from_gib(10)));
        assert_eq!(c.remembered(), 0);
    }

    #[test]
    fn max_size_threshold() {
        let mut c = AdmissionController::new(AdmissionRule::MaxSize(ByteSize::new(1000)));
        assert!(
            c.admit(doc(1), ByteSize::new(1000)),
            "boundary is inclusive"
        );
        assert!(!c.admit(doc(2), ByteSize::new(1001)));
    }

    #[test]
    fn second_hit_admits_on_refetch() {
        let mut c = AdmissionController::new(AdmissionRule::SecondHit(100));
        assert!(!c.admit(doc(1), ByteSize::new(10)), "first fetch rejected");
        assert!(c.admit(doc(1), ByteSize::new(10)), "second fetch admitted");
        // After admission the memory entry is consumed: a later fetch
        // (e.g. after eviction) starts the cycle over.
        assert!(!c.admit(doc(1), ByteSize::new(10)));
    }

    #[test]
    fn second_hit_window_forgets_old_documents() {
        let mut c = AdmissionController::new(AdmissionRule::SecondHit(2));
        c.admit(doc(1), ByteSize::new(1));
        c.admit(doc(2), ByteSize::new(1));
        c.admit(doc(3), ByteSize::new(1)); // evicts doc 1 from the window
        assert_eq!(c.remembered(), 2);
        assert!(!c.admit(doc(1), ByteSize::new(1)), "doc 1 was forgotten");
    }

    #[test]
    fn second_hit_skips_stale_order_entries() {
        let mut c = AdmissionController::new(AdmissionRule::SecondHit(2));
        c.admit(doc(1), ByteSize::new(1));
        assert!(c.admit(doc(1), ByteSize::new(1))); // consume doc 1
                                                    // Window has a stale `order` entry for doc 1; filling it must
                                                    // still retain the two live docs.
        c.admit(doc(2), ByteSize::new(1));
        c.admit(doc(3), ByteSize::new(1));
        assert_eq!(c.remembered(), 2);
        assert!(
            c.admit(doc(2), ByteSize::new(1)),
            "doc 2 must still be live"
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = AdmissionController::new(AdmissionRule::SecondHit(0));
    }
}
