//! The byte-capacity cache.
//!
//! [`Cache`] owns the set of resident documents, enforces the byte
//! capacity by querying its [`ReplacementPolicy`] for victims, and keeps
//! per-[document-type](DocumentType) occupancy counters — the quantities
//! plotted in Figure 1 of the paper (fraction of cached documents and of
//! cached bytes per type).
//!
//! # Data layout
//!
//! The store is a slab: a `Vec<Option<Entry>>` indexed by *slot*, where a
//! slot is a dense integer the cache assigns to each document id on its
//! first insert attempt (and keeps forever — slots survive eviction).
//! Policies and the admission controller are addressed with slot-valued
//! [`DocId`] handles, so all their per-document state is vector-indexed
//! too; no hash is computed anywhere on the hit path. Two interning modes
//! exist:
//!
//! * [`Cache::new`] / [`Cache::with_admission`] intern arbitrary sparse
//!   ids through a hash map (one fx-hash lookup per request, at the
//!   boundary only).
//! * [`Cache::with_dense_slots`] skips even that: the caller promises ids
//!   are already dense slots `0..n` (a
//!   [`DenseTrace`](webcache_trace::DenseTrace) replay), and the slab and
//!   policy state are pre-sized to `n`.

use serde::{Deserialize, Serialize};

use webcache_trace::fxhash::FxHashMap;
use webcache_trace::{ByteSize, DocId, DocumentType, TypeMap};

use crate::admission::{AdmissionController, AdmissionRule};
use crate::policy::ReplacementPolicy;
use crate::spec::PolicySpec;

/// Per-type occupancy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Number of resident documents of this type.
    pub documents: u64,
    /// Bytes occupied by documents of this type.
    pub bytes: ByteSize,
}

/// A document removed from the store to make room, with the metadata an
/// observer needs to account the loss (bytes evicted, per-type churn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The document id as the caller knows it.
    pub doc: DocId,
    /// Type of the evicted document.
    pub doc_type: DocumentType,
    /// Resident size of the evicted document.
    pub size: ByteSize,
}

/// How [`Cache::insert`] disposed of the offered document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertDisposition {
    /// The document is now resident.
    Inserted,
    /// The admission rule in front of the store turned it away.
    RejectedByAdmission,
    /// The document is larger than the whole cache; nothing was evicted.
    TooLarge,
}

/// Result of [`Cache::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionOutcome {
    /// What happened to the offered document.
    pub disposition: InsertDisposition,
    /// Documents evicted to make room, in eviction order.
    pub evicted: Vec<Eviction>,
}

impl EvictionOutcome {
    /// Whether the document was actually admitted.
    pub fn inserted(&self) -> bool {
        self.disposition == InsertDisposition::Inserted
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// The document id as the caller knows it (reported in
    /// [`EvictionOutcome::evicted`]; policies only ever see the slot).
    doc: DocId,
    size: ByteSize,
    doc_type: DocumentType,
}

/// How document ids map to dense slab slots.
#[derive(Debug)]
enum SlotIndex {
    /// Ids are already dense slots (`Cache::with_dense_slots`).
    Identity,
    /// Sparse ids are interned on first insert attempt.
    Map(FxHashMap<u64, u32>),
}

impl SlotIndex {
    /// The slot of `doc`, if one was ever assigned.
    fn get(&self, doc: DocId) -> Option<u32> {
        match self {
            SlotIndex::Identity => Some(doc.as_u64() as u32),
            SlotIndex::Map(map) => map.get(&doc.as_u64()).copied(),
        }
    }

    /// The slot of `doc`, assigning the next free one if new.
    fn intern(&mut self, doc: DocId) -> u32 {
        match self {
            SlotIndex::Identity => doc.as_u64() as u32,
            SlotIndex::Map(map) => {
                let next = map.len() as u32;
                *map.entry(doc.as_u64()).or_insert(next)
            }
        }
    }
}

/// A web cache with a fixed byte capacity and a pluggable replacement
/// policy.
///
/// ```
/// use webcache_core::{Cache, PolicyKind};
/// use webcache_trace::{ByteSize, DocId, DocumentType};
///
/// let mut cache = Cache::new(ByteSize::new(100), PolicyKind::Lru.build());
/// cache.insert(DocId::new(1), DocumentType::Image, ByteSize::new(60));
/// let outcome = cache.insert(DocId::new(2), DocumentType::Html, ByteSize::new(60));
/// let victims: Vec<DocId> = outcome.evicted.iter().map(|e| e.doc).collect();
/// assert_eq!(victims, vec![DocId::new(1)]); // LRU made room
/// assert!(cache.access(DocId::new(2)));
/// ```
#[derive(Debug)]
pub struct Cache {
    capacity: ByteSize,
    used: ByteSize,
    /// Slot-indexed slab of resident documents.
    entries: Vec<Option<Entry>>,
    /// Number of resident documents (`Some` entries in the slab).
    live: usize,
    slots: SlotIndex,
    occupancy: TypeMap<Occupancy>,
    policy: Box<dyn ReplacementPolicy>,
    admission: AdmissionController,
    /// Cached `admission.wants_record()`: keeps the hit path free of a
    /// virtual call for the filters that don't observe hits.
    record_hits: bool,
    rejected_by_admission: u64,
    /// Flight-recorder seam: when set, every consulted admission
    /// verdict that becomes an observer-visible event (Inserted or
    /// RejectedByAdmission — not TooLarge, which emits no event) pushes
    /// the filter's reason here, in event order.
    admit_reasons: Option<webcache_obs::ReasonChannel>,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: ByteSize, policy: Box<dyn ReplacementPolicy>) -> Self {
        Cache::with_admission(capacity, policy, AdmissionRule::All)
    }

    /// Creates an empty cache with an admission rule in front of the
    /// store (see [`crate::admission`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_admission(
        capacity: ByteSize,
        policy: Box<dyn ReplacementPolicy>,
        rule: AdmissionRule,
    ) -> Self {
        assert!(!capacity.is_zero(), "cache capacity must be positive");
        let admission = AdmissionController::new(rule);
        let record_hits = admission.wants_record();
        Cache {
            capacity,
            used: ByteSize::ZERO,
            entries: Vec::new(),
            live: 0,
            slots: SlotIndex::Map(FxHashMap::default()),
            occupancy: TypeMap::default(),
            policy,
            admission,
            record_hits,
            rejected_by_admission: 0,
            admit_reasons: None,
        }
    }

    /// Creates an empty cache from a composed [`PolicySpec`] — the
    /// redesigned construction entry point (`"tinylfu+slru".parse()`).
    /// Accepts a bare [`PolicyKind`](crate::PolicyKind) too, which means
    /// admit-everything.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_spec(capacity: ByteSize, spec: impl Into<PolicySpec>) -> Self {
        let spec = spec.into();
        Cache::with_admission(capacity, spec.build(), spec.admission)
    }

    /// Dense-slot counterpart of [`Cache::with_spec`]; see
    /// [`Cache::with_dense_slots`] for the dense-id contract.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_dense_spec(
        capacity: ByteSize,
        spec: impl Into<PolicySpec>,
        distinct_documents: usize,
    ) -> Self {
        let spec = spec.into();
        Cache::with_dense_slots(capacity, spec.build(), spec.admission, distinct_documents)
    }

    /// Creates an empty cache whose document ids are promised to be dense
    /// slots `0..distinct_documents` (e.g. a
    /// [`DenseTrace`](webcache_trace::DenseTrace) replay). Skips the
    /// id-interning map and pre-sizes the slab and all policy state.
    ///
    /// Behaviorally identical to [`Cache::with_admission`] fed ids in
    /// first-insert-attempt order; only the data layout differs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_dense_slots(
        capacity: ByteSize,
        policy: Box<dyn ReplacementPolicy>,
        rule: AdmissionRule,
        distinct_documents: usize,
    ) -> Self {
        assert!(!capacity.is_zero(), "cache capacity must be positive");
        let mut policy = policy;
        policy.reserve_slots(distinct_documents);
        let admission = AdmissionController::new(rule);
        let record_hits = admission.wants_record();
        Cache {
            capacity,
            used: ByteSize::ZERO,
            entries: vec![None; distinct_documents],
            live: 0,
            slots: SlotIndex::Identity,
            occupancy: TypeMap::default(),
            policy,
            admission,
            record_hits,
            rejected_by_admission: 0,
            admit_reasons: None,
        }
    }

    /// Routes admission-verdict reasons into `reasons` for the flight
    /// recorder: one push per Inserted or RejectedByAdmission outcome,
    /// in event order (TooLarge pushes nothing — it emits no observer
    /// event either, keeping the FIFO pairing exact).
    pub fn set_admit_reasons(&mut self, reasons: webcache_obs::ReasonChannel) {
        self.admit_reasons = Some(reasons);
    }

    /// The slot-valued handle policies and admission are addressed with.
    #[inline]
    fn handle(slot: u32) -> DocId {
        DocId::new(slot as u64)
    }

    /// The resident entry at `slot`, if any.
    #[inline]
    fn entry_at(&self, slot: u32) -> Option<Entry> {
        self.entries.get(slot as usize).copied().flatten()
    }

    /// Number of insert attempts the admission rule turned away.
    pub fn admission_rejections(&self) -> u64 {
        self.rejected_by_admission
    }

    /// The configured byte capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> ByteSize {
        self.used
    }

    /// Number of resident documents.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the cache holds no documents.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The policy's display label: the replacement label (`"GD*(P)"`),
    /// prefixed with the admission label when a filter is composed in
    /// front (`"TinyLFU+SLRU"`) — matching [`PolicySpec::label`].
    pub fn policy_label(&self) -> String {
        match self.admission.rule().label_prefix() {
            Some(prefix) => format!("{prefix}+{}", self.policy.label()),
            None => self.policy.label(),
        }
    }

    /// Whether `doc` is resident, *without* touching policy state.
    pub fn contains(&self, doc: DocId) -> bool {
        self.slots.get(doc).and_then(|s| self.entry_at(s)).is_some()
    }

    /// The resident size of `doc`, if cached.
    pub fn size_of(&self, doc: DocId) -> Option<ByteSize> {
        self.slots
            .get(doc)
            .and_then(|s| self.entry_at(s))
            .map(|e| e.size)
    }

    /// Per-type occupancy counters (documents and bytes).
    pub fn occupancy(&self) -> &TypeMap<Occupancy> {
        &self.occupancy
    }

    /// Looks up `doc`, updating replacement state on a hit.
    ///
    /// Returns `true` on a hit. This is the read path a proxy executes per
    /// request; on a miss the caller fetches the document and calls
    /// [`Cache::insert`].
    pub fn access(&mut self, doc: DocId) -> bool {
        let Some(slot) = self.slots.get(doc) else {
            return false;
        };
        match self.entry_at(slot) {
            Some(entry) => {
                self.policy
                    .on_hit_typed(Self::handle(slot), entry.size, entry.doc_type);
                if self.record_hits {
                    // Frequency-based admission sees the whole access
                    // stream, not just miss-fills.
                    self.admission.record(Self::handle(slot));
                }
                true
            }
            None => false,
        }
    }

    /// Admits `doc`, evicting victims until it fits.
    ///
    /// A document larger than the entire cache is not admitted (and evicts
    /// nothing). If `doc` is already resident it is first removed, then
    /// re-admitted with the new size and type — callers that only want to
    /// refresh recency should use [`Cache::access`] instead.
    pub fn insert(
        &mut self,
        doc: DocId,
        doc_type: DocumentType,
        size: ByteSize,
    ) -> EvictionOutcome {
        let mut evicted = Vec::new();
        let disposition = self.insert_into(doc, doc_type, size, &mut evicted);
        EvictionOutcome {
            disposition,
            evicted,
        }
    }

    /// Allocation-free [`Cache::insert`]: victims go into the
    /// caller-provided `evicted` buffer (cleared first) instead of a
    /// fresh vector. The batched replay loop reuses one buffer across
    /// millions of inserts.
    pub fn insert_into(
        &mut self,
        doc: DocId,
        doc_type: DocumentType,
        size: ByteSize,
        evicted: &mut Vec<Eviction>,
    ) -> InsertDisposition {
        evicted.clear();
        let slot = self.slots.intern(doc);
        let handle = Self::handle(slot);
        if slot as usize >= self.entries.len() {
            self.entries.resize(slot as usize + 1, None);
        }
        if self.entries[slot as usize].is_some() {
            // Re-admission with new size/type: drop the old incarnation.
            self.policy.remove(handle);
            self.detach(slot);
        }
        // Pressure: would storing this document force evictions? Filters
        // that only guard a contended cache (TinyLFU) admit freely below
        // capacity; the hard predicates ignore the flag.
        let pressure = self.used + size > self.capacity;
        if !self.admission.admit_with_pressure(handle, size, pressure) {
            self.rejected_by_admission += 1;
            if let Some(reasons) = &self.admit_reasons {
                reasons.push(self.admission.last_reason());
            }
            return InsertDisposition::RejectedByAdmission;
        }
        if size > self.capacity {
            return InsertDisposition::TooLarge;
        }

        while self.used + size > self.capacity {
            let victim = self
                .policy
                .evict()
                .expect("cache is over budget but policy tracks no documents");
            let vslot = victim.as_u64() as u32;
            let ventry = self.entries[vslot as usize].expect("policy evicted a non-resident slot");
            self.detach(vslot);
            evicted.push(Eviction {
                doc: ventry.doc,
                doc_type: ventry.doc_type,
                size: ventry.size,
            });
        }

        self.entries[slot as usize] = Some(Entry {
            doc,
            size,
            doc_type,
        });
        self.live += 1;
        self.used += size;
        let occ = &mut self.occupancy[doc_type];
        occ.documents += 1;
        occ.bytes += size;
        self.policy.on_insert_typed(handle, size, doc_type);
        if let Some(reasons) = &self.admit_reasons {
            reasons.push(self.admission.last_reason());
        }
        InsertDisposition::Inserted
    }

    /// Removes `doc` (e.g. because it was modified at the origin server).
    ///
    /// Returns `true` if the document was resident. Unlike eviction this
    /// has no aging side effects on the policy.
    pub fn invalidate(&mut self, doc: DocId) -> bool {
        let Some(slot) = self.slots.get(doc) else {
            return false;
        };
        if self.entry_at(slot).is_some() {
            self.policy.remove(Self::handle(slot));
            self.detach(slot);
            true
        } else {
            false
        }
    }

    /// Removes bookkeeping for a slot already untracked by the policy.
    fn detach(&mut self, slot: u32) {
        let entry = self.entries[slot as usize]
            .take()
            .expect("detach of non-resident document");
        self.live -= 1;
        self.used -= entry.size;
        let occ = &mut self.occupancy[entry.doc_type];
        occ.documents -= 1;
        occ.bytes -= entry.size;
    }

    /// Checks internal consistency; used by tests.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        assert!(self.used <= self.capacity, "capacity exceeded");
        let residents: Vec<&Entry> = self.entries.iter().flatten().collect();
        let total: u64 = residents.iter().map(|e| e.size.as_u64()).sum();
        assert_eq!(self.used.as_u64(), total, "used-bytes counter drifted");
        assert_eq!(self.policy.len(), self.live, "policy desync");
        assert_eq!(residents.len(), self.live, "live counter drifted");
        let mut per_type: TypeMap<Occupancy> = TypeMap::default();
        for e in &residents {
            per_type[e.doc_type].documents += 1;
            per_type[e.doc_type].bytes += e.size;
        }
        assert_eq!(&per_type, &self.occupancy, "occupancy counters drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn lru_cache(capacity: u64) -> Cache {
        Cache::new(ByteSize::new(capacity), PolicyKind::Lru.instantiate())
    }

    #[test]
    fn hit_and_miss() {
        let mut c = lru_cache(100);
        assert!(!c.access(doc(1)));
        c.insert(doc(1), DocumentType::Html, ByteSize::new(10));
        assert!(c.access(doc(1)));
        assert!(c.contains(doc(1)));
        assert_eq!(c.size_of(doc(1)), Some(ByteSize::new(10)));
        c.debug_validate();
    }

    #[test]
    fn eviction_makes_room() {
        let mut c = lru_cache(100);
        c.insert(doc(1), DocumentType::Image, ByteSize::new(50));
        c.insert(doc(2), DocumentType::Image, ByteSize::new(50));
        let outcome = c.insert(doc(3), DocumentType::Image, ByteSize::new(80));
        assert!(outcome.inserted());
        let victims: Vec<DocId> = outcome.evicted.iter().map(|e| e.doc).collect();
        assert_eq!(victims, vec![doc(1), doc(2)]);
        assert!(outcome
            .evicted
            .iter()
            .all(|e| e.doc_type == DocumentType::Image && e.size.as_u64() == 50));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes().as_u64(), 80);
        c.debug_validate();
    }

    #[test]
    fn oversized_document_is_rejected_without_evictions() {
        let mut c = lru_cache(100);
        c.insert(doc(1), DocumentType::Html, ByteSize::new(60));
        let outcome = c.insert(doc(2), DocumentType::MultiMedia, ByteSize::new(101));
        assert!(!outcome.inserted());
        assert_eq!(outcome.disposition, InsertDisposition::TooLarge);
        assert!(outcome.evicted.is_empty());
        assert!(c.contains(doc(1)), "rejection must not disturb residents");
        c.debug_validate();
    }

    #[test]
    fn document_exactly_capacity_fits() {
        let mut c = lru_cache(100);
        let outcome = c.insert(doc(1), DocumentType::MultiMedia, ByteSize::new(100));
        assert!(outcome.inserted());
        assert_eq!(c.used_bytes().as_u64(), 100);
    }

    #[test]
    fn reinsert_replaces_size_and_type() {
        let mut c = lru_cache(100);
        c.insert(doc(1), DocumentType::Html, ByteSize::new(10));
        c.insert(doc(1), DocumentType::Image, ByteSize::new(30));
        assert_eq!(c.len(), 1);
        assert_eq!(c.size_of(doc(1)), Some(ByteSize::new(30)));
        assert_eq!(c.occupancy()[DocumentType::Html].documents, 0);
        assert_eq!(c.occupancy()[DocumentType::Image].documents, 1);
        c.debug_validate();
    }

    #[test]
    fn invalidate_removes_without_aging() {
        let mut c = lru_cache(100);
        c.insert(doc(1), DocumentType::Html, ByteSize::new(10));
        assert!(c.invalidate(doc(1)));
        assert!(!c.invalidate(doc(1)));
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), ByteSize::ZERO);
        c.debug_validate();
    }

    #[test]
    fn occupancy_tracks_types() {
        let mut c = lru_cache(1000);
        c.insert(doc(1), DocumentType::Image, ByteSize::new(100));
        c.insert(doc(2), DocumentType::Image, ByteSize::new(200));
        c.insert(doc(3), DocumentType::MultiMedia, ByteSize::new(300));
        let occ = c.occupancy();
        assert_eq!(occ[DocumentType::Image].documents, 2);
        assert_eq!(occ[DocumentType::Image].bytes.as_u64(), 300);
        assert_eq!(occ[DocumentType::MultiMedia].bytes.as_u64(), 300);
        assert_eq!(occ[DocumentType::Html], Occupancy::default());
    }

    #[test]
    fn admission_max_size_rejects_large_documents() {
        use crate::admission::AdmissionRule;
        let mut c = Cache::with_admission(
            ByteSize::new(10_000),
            PolicyKind::Lru.instantiate(),
            AdmissionRule::MaxSize(ByteSize::new(100)),
        );
        assert!(c
            .insert(doc(1), DocumentType::Image, ByteSize::new(100))
            .inserted());
        let outcome = c.insert(doc(2), DocumentType::MultiMedia, ByteSize::new(101));
        assert!(!outcome.inserted());
        assert_eq!(outcome.disposition, InsertDisposition::RejectedByAdmission);
        assert!(outcome.evicted.is_empty(), "rejection must not evict");
        assert_eq!(c.admission_rejections(), 1);
        assert!(c.contains(doc(1)));
        c.debug_validate();
    }

    #[test]
    fn admission_second_hit_filters_one_timers() {
        use crate::admission::AdmissionRule;
        let mut c = Cache::with_admission(
            ByteSize::new(10_000),
            PolicyKind::Lru.instantiate(),
            AdmissionRule::SecondHit(64),
        );
        assert!(!c
            .insert(doc(1), DocumentType::Html, ByteSize::new(10))
            .inserted());
        assert!(!c.contains(doc(1)));
        // Second fetch of the same document is admitted.
        assert!(c
            .insert(doc(1), DocumentType::Html, ByteSize::new(10))
            .inserted());
        assert!(c.contains(doc(1)));
        assert_eq!(c.admission_rejections(), 1);
        c.debug_validate();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = lru_cache(0);
    }

    #[test]
    fn spec_construction_composes_label_and_admission() {
        use crate::spec::PolicySpec;
        let spec: PolicySpec = "tinylfu+slru".parse().unwrap();
        let mut c = Cache::with_spec(ByteSize::new(100), spec);
        assert_eq!(c.policy_label(), "TinyLFU+SLRU");

        // Below capacity, TinyLFU admits everything (and records).
        assert!(c
            .insert(doc(1), DocumentType::Html, ByteSize::new(60))
            .inserted());
        // Under pressure a cold one-timer is rejected instead of
        // displacing the resident document.
        let outcome = c.insert(doc(2), DocumentType::Image, ByteSize::new(60));
        assert_eq!(outcome.disposition, InsertDisposition::RejectedByAdmission);
        assert!(outcome.evicted.is_empty());
        assert!(c.contains(doc(1)));
        // Its second appearance clears the sketch's frequency gate.
        assert!(c
            .insert(doc(2), DocumentType::Image, ByteSize::new(60))
            .inserted());
        assert!(!c.contains(doc(1)), "now the resident was displaced");
        assert_eq!(c.admission_rejections(), 1);
        c.debug_validate();
    }

    #[test]
    fn tinylfu_protects_hot_documents_via_recorded_hits() {
        let mut c = Cache::with_spec(
            ByteSize::new(100),
            "tinylfu+lru".parse::<crate::spec::PolicySpec>().unwrap(),
        );
        c.insert(doc(1), DocumentType::Html, ByteSize::new(100));
        for _ in 0..5 {
            assert!(c.access(doc(1)), "hits feed the sketch");
        }
        // A one-timer flood can't get past admission while doc 1 is hot.
        for i in 10..20 {
            let outcome = c.insert(doc(i), DocumentType::Image, ByteSize::new(50));
            assert_eq!(
                outcome.disposition,
                InsertDisposition::RejectedByAdmission,
                "one-timer {i} must not displace the hot document"
            );
        }
        assert!(c.contains(doc(1)));
        c.debug_validate();
    }

    #[test]
    fn bare_kind_spec_matches_plain_construction() {
        let mut a = Cache::with_spec(ByteSize::new(500), PolicyKind::Lru);
        let mut b = lru_cache(500);
        assert_eq!(a.policy_label(), b.policy_label());
        for i in 0..50 {
            let d = doc(i % 7);
            let ty = DocumentType::ALL[(i % 5) as usize];
            if !a.access(d) {
                let size = ByteSize::new((i % 13 + 1) * 20);
                assert_eq!(
                    a.insert(d, ty, size).evicted,
                    {
                        b.access(d);
                        b.insert(d, ty, size).evicted
                    },
                    "spec and plain construction diverged at step {i}"
                );
            } else {
                assert!(b.access(d));
            }
        }
        a.debug_validate();
        b.debug_validate();
    }

    #[test]
    fn capacity_invariant_under_random_workload_all_policies() {
        // Deterministic pseudo-random workload over every policy kind.
        for kind in PolicyKind::ALL {
            let mut c = Cache::new(ByteSize::new(10_000), kind.instantiate());
            let mut state = 987654321u64;
            let mut next = || {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                state >> 33
            };
            for step in 0..3000 {
                let d = doc(next() % 200);
                let ty = DocumentType::ALL[(next() % 5) as usize];
                match next() % 10 {
                    0 => {
                        c.invalidate(d);
                    }
                    _ => {
                        if !c.access(d) {
                            let size = ByteSize::new(next() % 3000 + 1);
                            c.insert(d, ty, size);
                        }
                    }
                }
                if step % 256 == 0 {
                    c.debug_validate();
                }
            }
            c.debug_validate();
        }
    }
}
