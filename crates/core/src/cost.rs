//! Retrieval cost models for cost-aware replacement schemes.
//!
//! Two cost models are studied in the paper (after Jin & Bestavros):
//!
//! * the **constant cost model** — every retrieval costs 1; the model of
//!   choice for institutional proxies that optimize *hit rate*;
//! * the **packet cost model** — the cost is the number of TCP packets
//!   needed to transmit the document, `c(p) = 2 + ⌈s(p)/536⌉` with a
//!   536-byte TCP payload; appropriate for backbone proxies that optimize
//!   *byte hit rate*.

use std::fmt;

use serde::{Deserialize, Serialize};

use webcache_trace::ByteSize;

/// Default TCP payload bytes per packet used by the packet cost model.
pub const TCP_PAYLOAD_BYTES: u64 = 536;

/// The cost `c(p)` of bringing a document into the cache.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum CostModel {
    /// `c(p) = 1` — optimizes hit rate. Schemes using it are written
    /// GDS(1) / GD\*(1).
    #[default]
    Constant,
    /// `c(p) = 2 + ⌈s(p)/536⌉` — the number of TCP packets (two for
    /// connection establishment plus the payload packets). Optimizes byte
    /// hit rate. Schemes using it are written GDS(P) / GD\*(P).
    Packet,
}

impl CostModel {
    /// The retrieval cost of a document of the given transfer size.
    ///
    /// ```
    /// use webcache_core::CostModel;
    /// use webcache_trace::ByteSize;
    ///
    /// assert_eq!(CostModel::Constant.cost(ByteSize::from_mib(1)), 1.0);
    /// assert_eq!(CostModel::Packet.cost(ByteSize::new(536)), 3.0);
    /// assert_eq!(CostModel::Packet.cost(ByteSize::new(537)), 4.0);
    /// ```
    pub fn cost(self, size: ByteSize) -> f64 {
        match self {
            CostModel::Constant => 1.0,
            CostModel::Packet => {
                let payload_packets = size.as_u64().div_ceil(TCP_PAYLOAD_BYTES);
                (2 + payload_packets) as f64
            }
        }
    }

    /// Single-character tag used in policy labels: `1` or `P`.
    pub const fn tag(self) -> char {
        match self {
            CostModel::Constant => '1',
            CostModel::Packet => 'P',
        }
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModel::Constant => f.write_str("constant"),
            CostModel::Packet => f.write_str("packet"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_size() {
        for bytes in [0u64, 1, 536, 1 << 30] {
            assert_eq!(CostModel::Constant.cost(ByteSize::new(bytes)), 1.0);
        }
    }

    #[test]
    fn packet_cost_boundaries() {
        // Zero-byte response still costs the two control packets.
        assert_eq!(CostModel::Packet.cost(ByteSize::ZERO), 2.0);
        assert_eq!(CostModel::Packet.cost(ByteSize::new(1)), 3.0);
        assert_eq!(CostModel::Packet.cost(ByteSize::new(536)), 3.0);
        assert_eq!(CostModel::Packet.cost(ByteSize::new(537)), 4.0);
        assert_eq!(CostModel::Packet.cost(ByteSize::new(1072)), 4.0);
    }

    #[test]
    fn packet_cost_is_monotone_in_size() {
        let mut last = 0.0;
        for bytes in (0..10_000u64).step_by(100) {
            let c = CostModel::Packet.cost(ByteSize::new(bytes));
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn tags_and_display() {
        assert_eq!(CostModel::Constant.tag(), '1');
        assert_eq!(CostModel::Packet.tag(), 'P');
        assert_eq!(CostModel::Packet.to_string(), "packet");
    }
}
