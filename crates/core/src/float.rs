//! A totally ordered, non-NaN `f64` for priority keys.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An `f64` that is guaranteed finite-or-infinite (never NaN) and therefore
/// implements [`Ord`].
///
/// Replacement-policy priorities are floating point (GreedyDual `H` values
/// are ratios of costs and sizes); this newtype makes them usable as heap
/// and map keys without the usual `PartialOrd` contortions.
///
/// ```
/// use webcache_core::OrderedF64;
/// let a = OrderedF64::new(1.5);
/// let b = OrderedF64::new(2.5);
/// assert!(a < b);
/// assert_eq!(a.get() + 1.0, b.get());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Zero.
    pub const ZERO: OrderedF64 = OrderedF64(0.0);

    /// Wraps a float.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN. Infinities are allowed (useful as
    /// sentinels).
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "priority value must not be NaN");
        OrderedF64(value)
    }

    /// The wrapped float.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<OrderedF64> for f64 {
    fn from(v: OrderedF64) -> f64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(OrderedF64::new(-1.0) < OrderedF64::ZERO);
        assert!(OrderedF64::new(1.0) < OrderedF64::new(2.0));
        assert!(OrderedF64::new(f64::INFINITY) > OrderedF64::new(1e300));
        assert!(OrderedF64::new(f64::NEG_INFINITY) < OrderedF64::new(-1e300));
    }

    #[test]
    fn eq_and_accessors() {
        assert_eq!(OrderedF64::new(3.5).get(), 3.5);
        assert_eq!(f64::from(OrderedF64::new(2.0)), 2.0);
        assert_eq!(OrderedF64::new(1.0), OrderedF64::new(1.0));
        assert_eq!(OrderedF64::new(4.0).to_string(), "4");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = OrderedF64::new(f64::NAN);
    }
}
