//! # webcache-core
//!
//! The cache engine of the `webcache` workspace: a byte-capacity web cache
//! with pluggable replacement policies and per-document-type occupancy
//! accounting.
//!
//! ## Replacement schemes
//!
//! The four schemes studied by Lindemann & Waldhorst (DSN 2002):
//!
//! * **LRU** ([`policy::Lru`]) — recency-based; evicts the document unused
//!   for the longest time.
//! * **LFU-DA** ([`policy::LfuDa`]) — frequency-based with dynamic aging:
//!   `K(p) = f(p) + L`, where `L` is the cache age (the key of the last
//!   victim).
//! * **GreedyDual-Size** ([`policy::Gds`]) — cost/size aware:
//!   `H(p) = L + c(p)/s(p)`.
//! * **GreedyDual\*** ([`policy::GdStar`]) — adds long-term popularity and
//!   temporal correlation: `H(p) = L + (f(p)·c(p)/s(p))^(1/β)`, with β
//!   either fixed or estimated online from the inter-reference gap
//!   distribution.
//!
//! Plus the classic baselines **FIFO**, plain **LFU** and **SIZE** used in
//! the comparative literature (Arlitt et al.).
//!
//! Both GreedyDual variants take a [`CostModel`]: `Constant` (`c = 1`,
//! written GDS(1)/GD\*(1) in the paper) or `Packet`
//! (`c = 2 + ⌈s/536⌉`, written GDS(P)/GD\*(P)).
//!
//! ## Example
//!
//! ```
//! use webcache_core::{Cache, PolicyKind};
//! use webcache_trace::{ByteSize, DocId, DocumentType};
//!
//! let mut cache = Cache::new(ByteSize::new(1000), PolicyKind::Lru.instantiate());
//! let a = DocId::new(1);
//! assert!(!cache.access(a));                       // cold miss
//! cache.insert(a, DocumentType::Html, ByteSize::new(400));
//! assert!(cache.access(a));                        // hit
//! assert_eq!(cache.used_bytes().as_u64(), 400);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod cache;
pub mod cost;
pub mod float;
pub mod policy;
pub mod pqueue;
pub mod sharded;
pub mod sketch;
pub mod spec;

pub use admission::{
    AdmissionController, AdmissionPolicy, AdmissionRule, AdmissionSpec, AdmitAll, MaxSizeFilter,
    SecondHitFilter, TinyLfuFilter,
};
pub use cache::{Cache, Eviction, EvictionOutcome, InsertDisposition, Occupancy};
pub use cost::CostModel;
pub use float::OrderedF64;
pub use policy::{BetaMode, PolicyKind, ReplacementPolicy, S3Fifo};
pub use sharded::{
    validate_shard_count, ShardBalance, ShardConfigError, ShardCounters, ShardLockProbe,
    ShardSnapshot, ShardedEngine,
};
pub use sketch::FrequencySketch;
pub use spec::{ParseSpecError, PolicySpec, ReplacementKind, DEFAULT_SECOND_HIT_WINDOW};
