//! Adaptive Replacement Cache (ARC).
//!
//! ARC (Megiddo & Modha, FAST '03) balances recency against frequency
//! with four lists: `T1` (resident, seen once recently), `T2` (resident,
//! seen at least twice), and ghost lists `B1`/`B2` remembering documents
//! recently evicted from each side. A hit in a ghost list is evidence
//! the corresponding side deserves more room, so an adaptation target
//! `p` — the byte budget `T1` aspires to — moves toward the side that
//! would have hit. The result is scan resistance (one-timers churn `T1`
//! without displacing the proven `T2` set) with no tuning knob.
//!
//! The original operates on uniform blocks; web documents vary over five
//! orders of magnitude, so this adaptation is byte-valued: `p` is a byte
//! target, and a ghost hit moves it by the hit document's size scaled by
//! the usual `|B2|/|B1|` (or inverse) ratio. The policy never learns the
//! cache's capacity (the trait has no such channel), so `p` is clamped
//! to the currently resident bytes — the observable proxy for capacity.
//!
//! Lists are recency-ordered deques with lazy deletion (the [`Slru`]
//! generation idiom): per-slot state records where a document lives and
//! the generation stamp of its live entry; stale queue handles are
//! skipped on pop. Ghost lists are bounded by the resident document
//! count, matching ARC's directory bound of twice the cache size.
//!
//! [`Slru`]: super::Slru

use std::collections::VecDeque;

use webcache_obs::{MetricsSink, Reason};
use webcache_trace::{ByteSize, DocId};

use super::{slot_entry, slot_of, ReplacementPolicy};

/// Per-slot location codes.
const NONE: u8 = 0;
const T1: u8 = 1;
const T2: u8 = 2;
const B1: u8 = 3;
const B2: u8 = 4;

/// Per-slot state: (location, generation of live entry, size in bytes).
type SlotState = (u8, u64, u64);

const EMPTY: SlotState = (NONE, 0, 0);

/// ARC replacement state. See the module-level documentation above.
///
/// `M` is the [`MetricsSink`] receiving eviction-reason events (queue
/// provenance: T1 or T2, with the adaptation target); the default `()`
/// compiles the instrumentation away entirely. ARC has no heap, so it
/// never emits heap-op events.
#[derive(Debug, Default)]
pub struct Arc<M: MetricsSink = ()> {
    /// Front = most recent. Entries are (doc, generation).
    t1: VecDeque<(DocId, u64)>,
    t2: VecDeque<(DocId, u64)>,
    b1: VecDeque<(DocId, u64)>,
    b2: VecDeque<(DocId, u64)>,
    state: Vec<SlotState>,
    t1_count: usize,
    t2_count: usize,
    b1_count: usize,
    b2_count: usize,
    t1_bytes: u64,
    t2_bytes: u64,
    /// Adaptation target: the byte budget T1 aspires to.
    p: u64,
    generation: u64,
    sink: M,
}

impl Arc {
    /// Creates an empty ARC tracker.
    pub fn new() -> Self {
        Arc::default()
    }
}

impl<M: MetricsSink> Arc<M> {
    /// Like [`Arc::new`], but routing eviction reasons into `sink`.
    pub fn with_sink(sink: M) -> Self {
        Arc {
            t1: VecDeque::new(),
            t2: VecDeque::new(),
            b1: VecDeque::new(),
            b2: VecDeque::new(),
            state: Vec::new(),
            t1_count: 0,
            t2_count: 0,
            b1_count: 0,
            b2_count: 0,
            t1_bytes: 0,
            t2_bytes: 0,
            p: 0,
            generation: 0,
            sink,
        }
    }

    /// The current byte-valued adaptation target for `T1` (diagnostic).
    pub fn recency_target(&self) -> u64 {
        self.p
    }

    fn state_of(&self, doc: DocId) -> SlotState {
        self.state.get(slot_of(doc)).copied().unwrap_or(EMPTY)
    }

    /// Stamps `doc` into `list` at the MRU end and records its state.
    /// The caller maintains the counters.
    fn push(&mut self, doc: DocId, loc: u8, size: u64) {
        self.generation += 1;
        let entry = (doc, self.generation);
        match loc {
            T1 => self.t1.push_front(entry),
            T2 => self.t2.push_front(entry),
            B1 => self.b1.push_front(entry),
            B2 => self.b2.push_front(entry),
            _ => unreachable!("push to NONE"),
        }
        *slot_entry(&mut self.state, slot_of(doc), EMPTY) = (loc, self.generation, size);
    }

    /// Pops the live LRU entry of a queue, skipping stale handles.
    fn pop_live(
        queue: &mut VecDeque<(DocId, u64)>,
        state: &[SlotState],
        loc: u8,
    ) -> Option<(DocId, u64)> {
        while let Some((doc, generation)) = queue.pop_back() {
            match state.get(slot_of(doc)) {
                Some(&(l, g, size)) if l == loc && g == generation => return Some((doc, size)),
                _ => {}
            }
        }
        None
    }

    /// Clears a document's state without touching the queues (lazy).
    fn clear_state(&mut self, doc: DocId) {
        if let Some(s) = self.state.get_mut(slot_of(doc)) {
            *s = EMPTY;
        }
    }

    fn resident_bytes(&self) -> u64 {
        self.t1_bytes + self.t2_bytes
    }

    /// Drops ghost LRU entries so each directory stays within one of the
    /// resident count (ARC's `2c` directory bound, count-valued here).
    fn trim_ghosts(&mut self) {
        let bound = self.t1_count + self.t2_count + 1;
        while self.b1_count > bound {
            let Some((doc, _)) = Self::pop_live(&mut self.b1, &self.state, B1) else {
                break;
            };
            self.clear_state(doc);
            self.b1_count -= 1;
        }
        while self.b2_count > bound {
            let Some((doc, _)) = Self::pop_live(&mut self.b2, &self.state, B2) else {
                break;
            };
            self.clear_state(doc);
            self.b2_count -= 1;
        }
    }
}

impl<M: MetricsSink> ReplacementPolicy for Arc<M> {
    fn label(&self) -> String {
        "ARC".to_owned()
    }

    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        let size = size.as_u64();
        match self.state_of(doc).0 {
            B1 => {
                // Recency ghost hit: grow the T1 target by this
                // document's size, scaled by the list-ratio learning
                // rate, clamped to what is observable as "capacity".
                let rate = (self.b2_count as u64 / self.b1_count.max(1) as u64).max(1);
                self.p = (self.p.saturating_add(rate.saturating_mul(size)))
                    .min(self.resident_bytes() + size);
                self.b1_count -= 1;
                self.push(doc, T2, size);
                self.t2_count += 1;
                self.t2_bytes += size;
            }
            B2 => {
                // Frequency ghost hit: shrink the T1 target.
                let rate = (self.b1_count as u64 / self.b2_count.max(1) as u64).max(1);
                self.p = self.p.saturating_sub(rate.saturating_mul(size));
                self.b2_count -= 1;
                self.push(doc, T2, size);
                self.t2_count += 1;
                self.t2_bytes += size;
            }
            NONE => {
                self.push(doc, T1, size);
                self.t1_count += 1;
                self.t1_bytes += size;
            }
            _ => unreachable!("insert of resident {doc}"),
        }
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        let (loc, _, size) = self.state_of(doc);
        match loc {
            T1 => {
                self.t1_count -= 1;
                self.t1_bytes -= size;
                self.push(doc, T2, size);
                self.t2_count += 1;
                self.t2_bytes += size;
            }
            T2 => self.push(doc, T2, size),
            _ => {}
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        // Evict from T1 when it meets its target (or T2 is empty),
        // remembering the victim in the matching ghost list. `>=` keeps
        // the initial `p = 0` state T1-draining, the classic behavior.
        let from_t1 = self.t1_count > 0 && (self.t1_bytes >= self.p || self.t2_count == 0);
        let (t1_bytes, target) = (self.t1_bytes as f64, self.p as f64);
        let victim = if from_t1 {
            let (doc, size) = Self::pop_live(&mut self.t1, &self.state, T1)?;
            self.t1_count -= 1;
            self.t1_bytes -= size;
            self.push(doc, B1, size);
            self.b1_count += 1;
            self.sink.evict_reason(Reason::arc_t1(t1_bytes, target));
            doc
        } else {
            let (doc, size) = Self::pop_live(&mut self.t2, &self.state, T2)?;
            self.t2_count -= 1;
            self.t2_bytes -= size;
            self.push(doc, B2, size);
            self.b2_count += 1;
            self.sink.evict_reason(Reason::arc_t2(t1_bytes, target));
            doc
        };
        self.trim_ghosts();
        Some(victim)
    }

    fn remove(&mut self, doc: DocId) {
        let (loc, _, size) = self.state_of(doc);
        match loc {
            T1 => {
                self.t1_count -= 1;
                self.t1_bytes -= size;
            }
            T2 => {
                self.t2_count -= 1;
                self.t2_bytes -= size;
            }
            B1 => self.b1_count -= 1,
            B2 => self.b2_count -= 1,
            _ => return,
        }
        self.clear_state(doc);
    }

    fn len(&self) -> usize {
        self.t1_count + self.t2_count
    }

    fn reserve_slots(&mut self, n: usize) {
        if self.state.len() < n {
            self.state.resize(n, EMPTY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz(n: u64) -> ByteSize {
        ByteSize::new(n)
    }

    #[test]
    fn fresh_inserts_evict_fifo_like_from_t1() {
        let mut p = Arc::new();
        for i in 0..4 {
            p.on_insert(doc(i), sz(10));
        }
        assert_eq!(p.len(), 4);
        assert_eq!(p.evict(), Some(doc(0)), "T1 LRU evicts first");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn hits_promote_to_t2_and_survive_scans() {
        let mut p = Arc::new();
        p.on_insert(doc(0), sz(10));
        p.on_hit(doc(0), sz(10)); // promoted to T2
        for i in 1..5 {
            p.on_insert(doc(i), sz(10));
        }
        // A scan of one-timers must drain T1 before touching doc 0.
        let order: Vec<u64> = (0..4).map(|_| p.evict().unwrap().as_u64()).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
        assert_eq!(p.evict(), Some(doc(0)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn ghost_hit_reinserts_into_t2_and_adapts_target() {
        let mut p = Arc::new();
        p.on_insert(doc(0), sz(10));
        p.on_insert(doc(1), sz(10));
        assert_eq!(p.evict(), Some(doc(0)), "doc 0 to B1");
        let before = p.recency_target();
        p.on_insert(doc(0), sz(10)); // B1 ghost hit
        assert!(
            p.recency_target() > before,
            "B1 hit must grow the T1 target"
        );
        // Doc 0 is now in T2: the remaining T1 one-timer evicts first.
        assert_eq!(p.evict(), Some(doc(1)));
        assert_eq!(p.evict(), Some(doc(0)));
    }

    #[test]
    fn b2_ghost_hit_shrinks_the_target() {
        let mut p = Arc::new();
        p.on_insert(doc(0), sz(10));
        p.on_hit(doc(0), sz(10)); // T2
        assert_eq!(p.evict(), Some(doc(0)), "doc 0 to B2");
        // Grow p first via a B1 round-trip so the shrink is observable.
        p.on_insert(doc(1), sz(10));
        p.evict();
        p.on_insert(doc(1), sz(10));
        let before = p.recency_target();
        p.on_insert(doc(0), sz(10)); // B2 ghost hit
        assert!(
            p.recency_target() < before,
            "B2 hit must shrink the T1 target"
        );
    }

    #[test]
    fn remove_is_idempotent_and_clears_all_state() {
        let mut p = Arc::new();
        for i in 0..6 {
            p.on_insert(doc(i), sz(100 * (i + 1)));
        }
        p.on_hit(doc(3), sz(400));
        p.remove(doc(5));
        p.remove(doc(5));
        p.remove(doc(99)); // unknown: no-op
        assert_eq!(p.len(), 5);
        let mut drained = Vec::new();
        while let Some(v) = p.evict() {
            drained.push(v.as_u64());
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ghost_lists_stay_bounded() {
        let mut p = Arc::new();
        for i in 0..10_000u64 {
            p.on_insert(doc(i), sz(10));
            if p.len() > 4 {
                p.evict();
            }
        }
        assert!(p.b1_count <= p.len() + 1, "B1 leaked: {}", p.b1_count);
        assert!(p.b2_count <= p.len() + 1, "B2 leaked: {}", p.b2_count);
    }

    #[test]
    fn reinsert_after_remove_starts_in_t1() {
        let mut p = Arc::new();
        p.on_insert(doc(1), sz(10));
        p.on_hit(doc(1), sz(10));
        p.remove(doc(1));
        p.on_insert(doc(1), sz(10));
        assert_eq!(p.t1_count, 1, "explicit removal clears ghost history");
    }
}
