//! First In, First Out.
//!
//! The simplest baseline: evicts the document that entered the cache
//! earliest, ignoring recency, frequency, size and cost. Included for the
//! ablation comparisons of the wider replacement-policy literature.

use webcache_trace::{ByteSize, DocId};

use super::{PriorityKey, ReplacementPolicy};
use crate::pqueue::DenseIndexedHeap;

/// FIFO replacement state. See the module-level documentation above.
#[derive(Debug, Default)]
pub struct Fifo {
    heap: DenseIndexedHeap<DocId, PriorityKey>,
    seq: u64,
}

impl Fifo {
    /// Creates an empty FIFO tracker.
    pub fn new() -> Self {
        Fifo::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn label(&self) -> String {
        "FIFO".to_owned()
    }

    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        self.seq += 1;
        self.heap.insert(doc, PriorityKey::new(0.0, self.seq));
    }

    fn on_hit(&mut self, _doc: DocId, _size: ByteSize) {
        // Hits do not affect FIFO order.
    }

    fn evict(&mut self) -> Option<DocId> {
        self.heap.pop_min().map(|(doc, _)| doc)
    }

    fn remove(&mut self, doc: DocId) {
        self.heap.remove(doc);
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_slots(&mut self, n: usize) {
        self.heap.reserve(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn evicts_in_insertion_order_regardless_of_hits() {
        let mut f = Fifo::new();
        for i in 0..4 {
            f.on_insert(doc(i), ByteSize::new(1));
        }
        f.on_hit(doc(0), ByteSize::new(1));
        f.on_hit(doc(0), ByteSize::new(1));
        let order: Vec<u64> = std::iter::from_fn(|| f.evict().map(DocId::as_u64)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reinsertion_moves_to_back() {
        let mut f = Fifo::new();
        f.on_insert(doc(1), ByteSize::new(1));
        f.on_insert(doc(2), ByteSize::new(1));
        f.remove(doc(1));
        f.on_insert(doc(1), ByteSize::new(1));
        assert_eq!(f.evict(), Some(doc(2)));
        assert_eq!(f.evict(), Some(doc(1)));
    }
}
