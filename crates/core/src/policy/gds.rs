//! GreedyDual-Size (Cao & Irani).
//!
//! The first scheme to account for the high variability of both document
//! sizes and retrieval costs in the web. Each cached document `p` carries
//!
//! ```text
//! H(p) = L + c(p) / s(p)
//! ```
//!
//! where `s(p)` is the document size, `c(p)` the retrieval cost under the
//! configured [`CostModel`], and `L` the inflation value (initially 0, set
//! to the victim's `H` on every eviction — equivalent to the textbook
//! formulation that subtracts `H_min` from all documents, but `O(1)`).
//! `H` is re-established from the *current* `L` whenever the document is
//! referenced, so recently used documents float above long-untouched ones.
//!
//! GDS is online-optimal with respect to its cost function but ignores how
//! *often* a document was used — the gap GreedyDual\* fills.

use webcache_obs::{HeapOp, MetricsSink};
use webcache_trace::{ByteSize, DocId};

use super::{PriorityKey, ReplacementPolicy};
use crate::cost::CostModel;
use crate::pqueue::DenseIndexedHeap;

/// GreedyDual-Size replacement state. See the module-level documentation above.
///
/// GDS recomputes `H` from the request's size on every touch, so the heap
/// itself is the only per-document state — membership doubles as the
/// presence check.
///
/// `M` is the [`MetricsSink`] receiving heap-cost and inflation events;
/// the default `()` compiles the instrumentation away entirely.
#[derive(Debug)]
pub struct Gds<M: MetricsSink = ()> {
    cost_model: CostModel,
    heap: DenseIndexedHeap<DocId, PriorityKey>,
    /// Inflation value `L`.
    inflation: f64,
    seq: u64,
    sink: M,
}

impl Default for Gds {
    /// GDS(1): the constant cost model, as in the paper's notation.
    fn default() -> Self {
        Gds::new(CostModel::Constant)
    }
}

impl Gds {
    /// Creates an empty GDS tracker under the given cost model.
    pub fn new(cost_model: CostModel) -> Self {
        Gds::with_sink(cost_model, ())
    }
}

impl<M: MetricsSink> Gds<M> {
    /// Like [`Gds::new`], but routing internal events into `sink`.
    pub fn with_sink(cost_model: CostModel, sink: M) -> Self {
        Gds {
            cost_model,
            heap: DenseIndexedHeap::new(),
            inflation: 0.0,
            seq: 0,
            sink,
        }
    }

    /// The current inflation value `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// The `H` value currently assigned to `doc`.
    pub fn h_value(&self, doc: DocId) -> Option<f64> {
        self.heap.key_of(doc).map(|k| k.value.get())
    }

    /// `c(p)/s(p)` — the utility density of a document.
    fn value(&self, size: ByteSize) -> f64 {
        // Degenerate zero-size documents get the best possible density so
        // they are never the reason for an eviction (they occupy no space).
        let s = size.as_f64().max(1.0);
        self.cost_model.cost(size) / s
    }

    fn touch(&mut self, doc: DocId, size: ByteSize, op: HeapOp) {
        self.seq += 1;
        let key = PriorityKey::new(self.inflation + self.value(size), self.seq);
        let cost = self.heap.upsert(doc, key);
        self.sink.heap_op(op, cost);
    }
}

impl<M: MetricsSink> ReplacementPolicy for Gds<M> {
    fn label(&self) -> String {
        format!("GDS({})", self.cost_model.tag())
    }

    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        debug_assert!(!self.heap.contains(doc), "double insert of {doc}");
        self.touch(doc, size, HeapOp::Insert);
    }

    fn on_hit(&mut self, doc: DocId, size: ByteSize) {
        if self.heap.contains(doc) {
            self.touch(doc, size, HeapOp::Update);
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        let (doc, key, cost) = self.heap.pop_min_counted()?;
        self.sink.heap_op(HeapOp::PopMin, cost);
        let h = key.value.get();
        self.sink
            .evict_reason(webcache_obs::Reason::greedy_dual(h, self.inflation));
        self.inflation = h;
        self.sink.inflation(self.inflation);
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if let Some((_, cost)) = self.heap.remove_counted(doc) {
            self.sink.heap_op(HeapOp::Remove, cost);
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_slots(&mut self, n: usize) {
        self.heap.reserve(n);
    }

    fn set_batched(&mut self, enabled: bool) {
        self.heap.set_deferred(enabled);
    }

    fn flush_deferred(&mut self) {
        let _ = self.heap.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn constant_cost_prefers_small_documents() {
        let mut p = Gds::new(CostModel::Constant);
        p.on_insert(doc(1), ByteSize::new(100)); // H = 1/100
        p.on_insert(doc(2), ByteSize::new(10)); // H = 1/10
        assert_eq!(p.evict(), Some(doc(1)), "larger doc has smaller H");
    }

    #[test]
    fn packet_cost_softens_size_discrimination() {
        // Under packet cost, c grows with s, so the density gap between a
        // large and a small document is far smaller than under constant
        // cost.
        let small = ByteSize::new(1_000);
        let large = ByteSize::new(1_000_000);
        let ratio = |m: CostModel| (m.cost(small) / 1e3) / (m.cost(large) / 1e6);
        assert!(ratio(CostModel::Constant) > 100.0 * ratio(CostModel::Packet));
    }

    #[test]
    fn inflation_advances_and_lifts_new_entries() {
        let mut p = Gds::new(CostModel::Constant);
        p.on_insert(doc(1), ByteSize::new(2)); // H = 0.5
        assert_eq!(p.evict(), Some(doc(1)));
        assert_eq!(p.inflation(), 0.5);
        p.on_insert(doc(2), ByteSize::new(2));
        assert_eq!(p.h_value(doc(2)), Some(1.0), "H = L + c/s = 0.5 + 0.5");
    }

    #[test]
    fn reference_restores_h_from_current_inflation() {
        let mut p = Gds::new(CostModel::Constant);
        p.on_insert(doc(1), ByteSize::new(4)); // H = 0.25
        p.on_insert(doc(2), ByteSize::new(2)); // H = 0.5
        assert_eq!(p.evict(), Some(doc(1))); // L = 0.25
        p.on_insert(doc(3), ByteSize::new(1)); // H = 1.25
        p.on_hit(doc(2), ByteSize::new(2)); // H = 0.25 + 0.5 = 0.75
        assert_eq!(p.evict(), Some(doc(2)));
    }

    #[test]
    fn equal_h_ties_break_towards_older_touch() {
        let mut p = Gds::new(CostModel::Constant);
        p.on_insert(doc(1), ByteSize::new(10));
        p.on_insert(doc(2), ByteSize::new(10));
        assert_eq!(p.evict(), Some(doc(1)));
    }

    #[test]
    fn zero_size_documents_are_not_preferred_victims() {
        let mut p = Gds::new(CostModel::Constant);
        p.on_insert(doc(1), ByteSize::ZERO);
        p.on_insert(doc(2), ByteSize::new(1_000_000));
        assert_eq!(p.evict(), Some(doc(2)));
    }

    #[test]
    fn inflation_is_monotone() {
        let mut p = Gds::new(CostModel::Packet);
        let mut last = 0.0;
        for i in 0..50 {
            p.on_insert(doc(i), ByteSize::new(100 + i * 37));
            if i % 2 == 0 {
                p.evict();
                assert!(p.inflation() >= last, "inflation must never decrease");
                last = p.inflation();
            }
        }
    }
}
