//! GreedyDual-Size-Frequency (Cherkasova).
//!
//! GDSF augments GreedyDual-Size with the in-cache reference count:
//!
//! ```text
//! H(p) = L + f(p) · c(p) / s(p)
//! ```
//!
//! It is exactly the β = 1 special case of GreedyDual\* — GD\* generalizes
//! the frequency weighting with the workload-adaptive exponent `1/β` —
//! and is the variant deployed in Squid as `heap GDSF`. It is included
//! both as a baseline in its own right and as the anchor point of the β
//! ablation (`GdStar::with_fixed_beta(cost, 1.0)` must agree with it).

use webcache_obs::{HeapOp, MetricsSink};
use webcache_trace::{ByteSize, DocId};

use super::{slot_entry, slot_of, PriorityKey, ReplacementPolicy};
use crate::cost::CostModel;
use crate::pqueue::DenseIndexedHeap;

/// GDSF replacement state. See the module-level documentation above.
///
/// `M` is the [`MetricsSink`] receiving heap-cost and inflation events;
/// the default `()` compiles the instrumentation away entirely.
#[derive(Debug)]
pub struct Gdsf<M: MetricsSink = ()> {
    cost_model: CostModel,
    heap: DenseIndexedHeap<DocId, PriorityKey>,
    /// Per-slot `(size, frequency)`; frequency 0 = not tracked.
    docs: Vec<(ByteSize, u64)>,
    inflation: f64,
    seq: u64,
    sink: M,
}

impl Default for Gdsf {
    /// GDSF(1): the constant cost model, as in the paper's notation.
    fn default() -> Self {
        Gdsf::new(CostModel::Constant)
    }
}

impl Gdsf {
    /// Creates an empty GDSF tracker under the given cost model.
    pub fn new(cost_model: CostModel) -> Self {
        Gdsf::with_sink(cost_model, ())
    }
}

impl<M: MetricsSink> Gdsf<M> {
    /// Like [`Gdsf::new`], but routing internal events into `sink`.
    pub fn with_sink(cost_model: CostModel, sink: M) -> Self {
        Gdsf {
            cost_model,
            heap: DenseIndexedHeap::new(),
            docs: Vec::new(),
            inflation: 0.0,
            seq: 0,
            sink,
        }
    }

    /// The current inflation value `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// The `H` value currently assigned to `doc`.
    pub fn h_value(&self, doc: DocId) -> Option<f64> {
        self.heap.key_of(doc).map(|k| k.value.get())
    }

    fn push_key(&mut self, doc: DocId, freq: u64, size: ByteSize, op: HeapOp) {
        let s = size.as_f64().max(1.0);
        let value = freq as f64 * self.cost_model.cost(size) / s;
        self.seq += 1;
        let cost = self
            .heap
            .upsert(doc, PriorityKey::new(self.inflation + value, self.seq));
        self.sink.heap_op(op, cost);
    }
}

impl<M: MetricsSink> ReplacementPolicy for Gdsf<M> {
    fn label(&self) -> String {
        format!("GDSF({})", self.cost_model.tag())
    }

    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        let state = slot_entry(&mut self.docs, slot_of(doc), (ByteSize::ZERO, 0));
        debug_assert!(state.1 == 0, "double insert of {doc}");
        *state = (size, 1);
        self.push_key(doc, 1, size, HeapOp::Insert);
    }

    fn on_hit(&mut self, doc: DocId, size: ByteSize) {
        let Some(state) = self.docs.get_mut(slot_of(doc)).filter(|s| s.1 > 0) else {
            return;
        };
        state.0 = size;
        state.1 += 1;
        let (size, freq) = *state;
        self.push_key(doc, freq, size, HeapOp::Update);
    }

    fn evict(&mut self) -> Option<DocId> {
        let (doc, key, cost) = self.heap.pop_min_counted()?;
        self.sink.heap_op(HeapOp::PopMin, cost);
        self.docs[slot_of(doc)] = (ByteSize::ZERO, 0);
        let h = key.value.get();
        self.sink
            .evict_reason(webcache_obs::Reason::greedy_dual(h, self.inflation));
        self.inflation = h;
        self.sink.inflation(self.inflation);
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if let Some(state) = self.docs.get_mut(slot_of(doc)).filter(|s| s.1 > 0) {
            *state = (ByteSize::ZERO, 0);
            if let Some((_, cost)) = self.heap.remove_counted(doc) {
                self.sink.heap_op(HeapOp::Remove, cost);
            }
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_slots(&mut self, n: usize) {
        self.heap.reserve(n);
        if self.docs.len() < n {
            self.docs.resize(n, (ByteSize::ZERO, 0));
        }
    }
    fn set_batched(&mut self, enabled: bool) {
        self.heap.set_deferred(enabled);
    }

    fn flush_deferred(&mut self) {
        let _ = self.heap.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GdStar;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn frequency_and_size_both_matter() {
        let mut p = Gdsf::new(CostModel::Constant);
        p.on_insert(doc(1), ByteSize::new(100)); // H = 1/100
        p.on_insert(doc(2), ByteSize::new(100)); // H = 1/100
        p.on_hit(doc(1), ByteSize::new(100)); // H = 2/100
        assert_eq!(p.evict(), Some(doc(2)), "less frequent doc goes first");

        let mut p = Gdsf::new(CostModel::Constant);
        p.on_insert(doc(1), ByteSize::new(1_000));
        p.on_insert(doc(2), ByteSize::new(10));
        assert_eq!(p.evict(), Some(doc(1)), "larger doc goes first");
    }

    #[test]
    fn agrees_with_gdstar_beta_one() {
        // GDSF must produce the same eviction sequence as GD* with β = 1
        // on any shared input (same tie-breaking discipline).
        use crate::policy::ReplacementPolicy;
        let mut gdsf = Gdsf::new(CostModel::Packet);
        let mut gdstar = GdStar::with_fixed_beta(CostModel::Packet, 1.0);

        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut tracked = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = doc(next() % 50);
            let s = ByteSize::new(next() % 100_000 + 1);
            match next() % 5 {
                0..=2 => {
                    if tracked.insert(d) {
                        gdsf.on_insert(d, s);
                        gdstar.on_insert(d, s);
                    } else {
                        gdsf.on_hit(d, s);
                        gdstar.on_hit(d, s);
                    }
                }
                3 => {
                    let a = gdsf.evict();
                    let b = gdstar.evict();
                    assert_eq!(a, b, "eviction sequences diverged");
                    if let Some(v) = a {
                        tracked.remove(&v);
                    }
                }
                _ => {
                    gdsf.remove(d);
                    gdstar.remove(d);
                    tracked.remove(&d);
                }
            }
            assert_eq!(gdsf.len(), gdstar.len());
        }
    }

    #[test]
    fn inflation_monotone_and_label() {
        let mut p = Gdsf::new(CostModel::Constant);
        assert_eq!(p.label(), "GDSF(1)");
        p.on_insert(doc(1), ByteSize::new(4));
        p.on_insert(doc(2), ByteSize::new(2));
        assert_eq!(p.evict(), Some(doc(1)));
        let l1 = p.inflation();
        assert_eq!(p.evict(), Some(doc(2)));
        assert!(p.inflation() >= l1);
    }

    #[test]
    fn hit_on_untracked_doc_is_ignored() {
        let mut p = Gdsf::new(CostModel::Constant);
        p.on_hit(doc(9), ByteSize::new(10));
        assert!(p.is_empty());
        assert_eq!(p.h_value(doc(9)), None);
    }
}
