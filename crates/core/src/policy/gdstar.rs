//! GreedyDual\* (Jin & Bestavros).
//!
//! GD\* refines GreedyDual-Size by exploiting *both* sources of temporal
//! locality in web request streams: long-term popularity (the in-cache
//! reference count `f(p)`) and short-term temporal correlation (the
//! workload parameter β). Each cached document carries
//!
//! ```text
//! H(p) = L + ( f(p) · c(p) / s(p) )^(1/β)
//! ```
//!
//! with the same `L`-inflation aging as GDS. The exponent `1/β` controls
//! the *rate of aging*: workloads with strong short-term correlation
//! (large β) flatten the value differences, making the scheme behave more
//! recency-like, while weakly correlated workloads (small β) amplify them,
//! making it behave more value-like.
//!
//! The novel feature of GD\* is that `f(p)` and β can be maintained
//! **online**: this module ships a [`BetaEstimator`] that fits the
//! inter-reference gap distribution on a log-log scale from a windowed
//! histogram, exactly how the workload characterization measures β
//! offline. A fixed β can be configured instead via [`BetaMode::Fixed`]
//! (used by the β ablation experiment).

use serde::{Deserialize, Serialize};

use webcache_obs::{HeapOp, MetricsSink};
use webcache_trace::{ByteSize, DocId, DocumentType, TypeMap};

use super::{slot_entry, slot_of, PriorityKey, ReplacementPolicy};
use crate::cost::CostModel;
use crate::pqueue::DenseIndexedHeap;

/// How GD\* obtains the temporal-correlation exponent β.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BetaMode {
    /// Use a constant β for the whole run.
    Fixed(f64),
    /// Estimate β online from observed inter-reference gaps.
    Adaptive {
        /// β assumed before enough samples accumulate.
        initial: f64,
        /// Re-fit the estimate every this many gap samples.
        refresh_interval: u64,
    },
    /// Estimate a *separate* β per document type — the extension
    /// suggested by the paper's Section 4.4 analysis, which attributes
    /// GD\*'s RTP losses to per-type β values "much bigger than the
    /// overall slope ... dominated by the slope of image documents".
    AdaptivePerType {
        /// β assumed for each type before enough samples accumulate.
        initial: f64,
        /// Re-fit a type's estimate every this many of its gap samples.
        refresh_interval: u64,
    },
}

impl Default for BetaMode {
    /// Adaptive estimation starting from β = 1 (the GDSF special case),
    /// re-fitted every 10 000 gap samples.
    fn default() -> Self {
        BetaMode::Adaptive {
            initial: 1.0,
            refresh_interval: 10_000,
        }
    }
}

/// Online estimator of the temporal-correlation slope β.
///
/// Maintains a base-2 log-bucketed histogram of inter-reference gaps
/// (measured in requests) and fits `log P(gap) = −β·log gap + const` by
/// least squares over the non-empty buckets, using each bucket's count
/// density. β is clamped to `[0.05, 4.0]`.
///
/// ```
/// use webcache_core::policy::BetaEstimator;
///
/// let mut est = BetaEstimator::new();
/// // Strongly correlated stream: most re-references arrive immediately.
/// for gap in [1u64, 1, 1, 1, 2, 2, 4, 8] {
///     est.sample(gap);
/// }
/// assert!(est.estimate().unwrap() > 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct BetaEstimator {
    /// `buckets[b]` counts gaps in `[2^b, 2^(b+1))`.
    buckets: [u64; 40],
    samples: u64,
}

impl Default for BetaEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl BetaEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        BetaEstimator {
            buckets: [0; 40],
            samples: 0,
        }
    }

    /// Records one inter-reference gap (in requests, ≥ 1).
    pub fn sample(&mut self, gap: u64) {
        let gap = gap.max(1);
        let bucket = (63 - gap.leading_zeros()) as usize; // floor(log2 gap)
        let bucket = bucket.min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
        self.samples += 1;
    }

    /// Number of gaps recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Fits β. Returns `None` until at least two distinct histogram
    /// buckets are populated (a slope needs two points).
    pub fn estimate(&self) -> Option<f64> {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (b, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let width = (1u64 << b) as f64;
            let center = 1.5 * width;
            // Density: probability mass per unit gap.
            let density = count as f64 / (self.samples as f64 * width);
            xs.push(center.ln());
            ys.push(density.ln());
        }
        if xs.len() < 2 {
            return None;
        }
        // Weighted least squares, weighting each bucket by its sample
        // count: sparse tail buckets (often only partially covered by the
        // workload's maximum gap) carry little evidence and should not
        // steer the slope.
        let ws: Vec<f64> = self
            .buckets
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| c as f64)
            .collect();
        let wsum: f64 = ws.iter().sum();
        let mx = xs.iter().zip(&ws).map(|(x, w)| x * w).sum::<f64>() / wsum;
        let my = ys.iter().zip(&ws).map(|(y, w)| y * w).sum::<f64>() / wsum;
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .zip(&ws)
            .map(|((x, y), w)| w * (x - mx) * (y - my))
            .sum();
        let sxx: f64 = xs.iter().zip(&ws).map(|(x, w)| w * (x - mx).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        Some((-slope).clamp(0.05, 4.0))
    }

    /// Drops all recorded samples (used when windowing).
    pub fn reset(&mut self) {
        *self = BetaEstimator::new();
    }
}

#[derive(Debug, Clone, Copy)]
struct DocState {
    size: ByteSize,
    /// Document class (drives per-type β when enabled).
    ty: DocumentType,
    /// In-cache reference count `f(p)`.
    freq: u64,
    /// Policy clock value of the last reference.
    last_access: u64,
}

/// GreedyDual\* replacement state. See the module-level documentation above.
///
/// `M` is the [`MetricsSink`] receiving heap-cost and inflation events;
/// the default `()` compiles the instrumentation away entirely.
#[derive(Debug)]
pub struct GdStar<M: MetricsSink = ()> {
    cost_model: CostModel,
    mode: BetaMode,
    beta: f64,
    estimator: BetaEstimator,
    last_refresh: u64,
    per_type_beta: TypeMap<f64>,
    per_type_estimators: TypeMap<BetaEstimator>,
    per_type_last_refresh: TypeMap<u64>,
    heap: DenseIndexedHeap<DocId, PriorityKey>,
    /// Per-slot document state; `None` = not tracked.
    docs: Vec<Option<DocState>>,
    inflation: f64,
    /// Counts policy events (inserts + hits) as a proxy for the request
    /// clock; gaps are measured in these units.
    clock: u64,
    seq: u64,
    sink: M,
}

impl Default for GdStar {
    /// GD*(1) with the default adaptive β estimation.
    fn default() -> Self {
        GdStar::new(CostModel::Constant, BetaMode::default())
    }
}

impl GdStar {
    /// Creates an empty GD\* tracker under the given cost model and β mode.
    pub fn new(cost_model: CostModel, mode: BetaMode) -> Self {
        GdStar::with_sink(cost_model, mode, ())
    }

    /// Convenience constructor for a fixed β.
    pub fn with_fixed_beta(cost_model: CostModel, beta: f64) -> Self {
        GdStar::new(cost_model, BetaMode::Fixed(beta))
    }

    /// Convenience constructor for the per-type adaptive mode with the
    /// default initial β and refresh interval.
    pub fn with_per_type_beta(cost_model: CostModel) -> Self {
        GdStar::new(
            cost_model,
            BetaMode::AdaptivePerType {
                initial: 1.0,
                refresh_interval: 2_000,
            },
        )
    }
}

impl<M: MetricsSink> GdStar<M> {
    /// Like [`GdStar::new`], but routing internal events into `sink`.
    pub fn with_sink(cost_model: CostModel, mode: BetaMode, sink: M) -> Self {
        let beta = match mode {
            BetaMode::Fixed(beta) => beta,
            BetaMode::Adaptive { initial, .. } | BetaMode::AdaptivePerType { initial, .. } => {
                initial
            }
        };
        assert!(
            beta.is_finite() && beta > 0.0,
            "β must be positive and finite, got {beta}"
        );
        GdStar {
            cost_model,
            mode,
            beta,
            estimator: BetaEstimator::new(),
            last_refresh: 0,
            per_type_beta: TypeMap::splat(beta),
            per_type_estimators: TypeMap::from_fn(|_| BetaEstimator::new()),
            per_type_last_refresh: TypeMap::default(),
            heap: DenseIndexedHeap::new(),
            docs: Vec::new(),
            inflation: 0.0,
            clock: 0,
            seq: 0,
            sink,
        }
    }

    /// The β currently in effect (the global estimate; per-type mode
    /// additionally maintains [`GdStar::beta_for`]).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The β currently in effect for documents of the given type.
    /// Outside [`BetaMode::AdaptivePerType`] this equals
    /// [`GdStar::beta`].
    pub fn beta_for(&self, ty: DocumentType) -> f64 {
        match self.mode {
            BetaMode::AdaptivePerType { .. } => self.per_type_beta[ty],
            _ => self.beta,
        }
    }

    /// The current inflation value `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// The `H` value currently assigned to `doc`.
    pub fn h_value(&self, doc: DocId) -> Option<f64> {
        self.heap.key_of(doc).map(|k| k.value.get())
    }

    /// The in-cache reference count of `doc`.
    pub fn frequency(&self, doc: DocId) -> Option<u64> {
        self.docs
            .get(slot_of(doc))
            .copied()
            .flatten()
            .map(|d| d.freq)
    }

    fn maybe_refresh_beta(&mut self, ty: DocumentType) {
        match self.mode {
            BetaMode::Adaptive {
                refresh_interval, ..
            } => {
                if self.estimator.samples() >= self.last_refresh + refresh_interval {
                    if let Some(beta) = self.estimator.estimate() {
                        self.beta = beta;
                    }
                    self.last_refresh = self.estimator.samples();
                }
            }
            BetaMode::AdaptivePerType {
                refresh_interval, ..
            } => {
                let est = &self.per_type_estimators[ty];
                if est.samples() >= self.per_type_last_refresh[ty] + refresh_interval {
                    if let Some(beta) = est.estimate() {
                        self.per_type_beta[ty] = beta;
                    }
                    self.per_type_last_refresh[ty] = est.samples();
                }
            }
            BetaMode::Fixed(_) => {}
        }
    }

    fn h_base(&self, freq: u64, size: ByteSize, ty: DocumentType) -> f64 {
        let s = size.as_f64().max(1.0);
        let value = freq as f64 * self.cost_model.cost(size) / s;
        let exponent = 1.0 / self.beta_for(ty);
        // IEEE 754 pins pow(x, 1) = x exactly, so bypassing the (slow)
        // powf while β sits at its initial 1.0 — the entire run until
        // the first adaptive refit — cannot change any H value.
        if exponent == 1.0 {
            value
        } else {
            value.powf(exponent)
        }
    }

    fn push_key(&mut self, doc: DocId, freq: u64, size: ByteSize, ty: DocumentType, op: HeapOp) {
        self.seq += 1;
        let key = PriorityKey::new(self.inflation + self.h_base(freq, size, ty), self.seq);
        let cost = self.heap.upsert(doc, key);
        self.sink.heap_op(op, cost);
    }
}

impl<M: MetricsSink> ReplacementPolicy for GdStar<M> {
    fn label(&self) -> String {
        format!("GD*({})", self.cost_model.tag())
    }

    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        self.on_insert_typed(doc, size, DocumentType::Other);
    }

    fn on_hit(&mut self, doc: DocId, size: ByteSize) {
        let ty = self
            .docs
            .get(slot_of(doc))
            .copied()
            .flatten()
            .map(|d| d.ty)
            .unwrap_or(DocumentType::Other);
        self.on_hit_typed(doc, size, ty);
    }

    fn on_insert_typed(&mut self, doc: DocId, size: ByteSize, doc_type: DocumentType) {
        self.clock += 1;
        let state = slot_entry(&mut self.docs, slot_of(doc), None);
        debug_assert!(state.is_none(), "double insert of {doc}");
        *state = Some(DocState {
            size,
            ty: doc_type,
            freq: 1,
            last_access: self.clock,
        });
        self.push_key(doc, 1, size, doc_type, HeapOp::Insert);
    }

    fn on_hit_typed(&mut self, doc: DocId, size: ByteSize, doc_type: DocumentType) {
        self.clock += 1;
        let Some(state) = self.docs.get_mut(slot_of(doc)).and_then(Option::as_mut) else {
            return;
        };
        state.freq += 1;
        state.size = size;
        state.ty = doc_type;
        let gap = self.clock - state.last_access;
        state.last_access = self.clock;
        let (freq, size) = (state.freq, state.size);
        self.estimator.sample(gap);
        self.per_type_estimators[doc_type].sample(gap);
        self.maybe_refresh_beta(doc_type);
        self.push_key(doc, freq, size, doc_type, HeapOp::Update);
    }

    fn evict(&mut self) -> Option<DocId> {
        let (doc, key, cost) = self.heap.pop_min_counted()?;
        self.sink.heap_op(HeapOp::PopMin, cost);
        self.docs[slot_of(doc)] = None;
        let h = key.value.get();
        self.sink
            .evict_reason(webcache_obs::Reason::greedy_dual(h, self.inflation));
        self.inflation = h;
        self.sink.inflation(self.inflation);
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if let Some(state) = self.docs.get_mut(slot_of(doc)) {
            if state.take().is_some() {
                if let Some((_, cost)) = self.heap.remove_counted(doc) {
                    self.sink.heap_op(HeapOp::Remove, cost);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_slots(&mut self, n: usize) {
        self.heap.reserve(n);
        if self.docs.len() < n {
            self.docs.resize(n, None);
        }
    }
    fn set_batched(&mut self, enabled: bool) {
        self.heap.set_deferred(enabled);
    }

    fn flush_deferred(&mut self) {
        let _ = self.heap.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn frequency_raises_priority() {
        let mut p = GdStar::with_fixed_beta(CostModel::Constant, 1.0);
        p.on_insert(doc(1), ByteSize::new(10));
        p.on_insert(doc(2), ByteSize::new(10));
        p.on_hit(doc(1), ByteSize::new(10));
        // f(1)=2, f(2)=1, same size: doc 2 must go first.
        assert_eq!(p.evict(), Some(doc(2)));
    }

    #[test]
    fn beta_one_matches_gdsf_value() {
        let mut p = GdStar::with_fixed_beta(CostModel::Constant, 1.0);
        p.on_insert(doc(1), ByteSize::new(4));
        assert_eq!(p.h_value(doc(1)), Some(0.25), "H = (1·1/4)^(1/1)");
        p.on_hit(doc(1), ByteSize::new(4));
        assert_eq!(p.h_value(doc(1)), Some(0.5), "H = (2·1/4)^(1/1)");
    }

    #[test]
    fn small_beta_amplifies_value_differences() {
        // value < 1 and 1/β > 1 pushes H towards 0, the behaviour the paper
        // uses to explain GD*(1)'s weak multi-media hit rates.
        let mut half = GdStar::with_fixed_beta(CostModel::Constant, 0.5);
        let mut one = GdStar::with_fixed_beta(CostModel::Constant, 1.0);
        for p in [&mut half, &mut one] {
            p.on_insert(doc(1), ByteSize::new(1_000_000));
        }
        assert!(half.h_value(doc(1)).unwrap() < one.h_value(doc(1)).unwrap());
    }

    #[test]
    fn inflation_is_monotone_and_applied() {
        let mut p = GdStar::with_fixed_beta(CostModel::Constant, 1.0);
        p.on_insert(doc(1), ByteSize::new(2)); // H = 0.5
        assert_eq!(p.evict(), Some(doc(1)));
        assert_eq!(p.inflation(), 0.5);
        p.on_insert(doc(2), ByteSize::new(2));
        assert_eq!(p.h_value(doc(2)), Some(1.0));
    }

    #[test]
    fn frequency_resets_on_reinsertion() {
        let mut p = GdStar::with_fixed_beta(CostModel::Constant, 1.0);
        p.on_insert(doc(1), ByteSize::new(2));
        p.on_hit(doc(1), ByteSize::new(2));
        assert_eq!(p.frequency(doc(1)), Some(2));
        assert_eq!(p.evict(), Some(doc(1)));
        p.on_insert(doc(1), ByteSize::new(2));
        assert_eq!(p.frequency(doc(1)), Some(1), "f(p) is in-cache state");
    }

    #[test]
    fn adaptive_beta_updates_from_gaps() {
        let mut p = GdStar::new(
            CostModel::Constant,
            BetaMode::Adaptive {
                initial: 1.0,
                refresh_interval: 50,
            },
        );
        p.on_insert(doc(1), ByteSize::new(10));
        p.on_insert(doc(2), ByteSize::new(10));
        // Alternate hits: every gap is exactly 2 requests -> after enough
        // samples the estimator has only one bucket, so β stays at the
        // initial value...
        for _ in 0..30 {
            p.on_hit(doc(1), ByteSize::new(10));
            p.on_hit(doc(2), ByteSize::new(10));
        }
        let before = p.beta();
        // ...now mix in long gaps so two buckets populate and a refresh
        // fires.
        for i in 0..60 {
            for j in 0..20 {
                p.on_hit(doc(1 + (i + j) % 2), ByteSize::new(10));
            }
        }
        assert!(p.estimator.samples() > 100);
        let _ = before; // β may or may not move; the contract is "no panic,
                        // stays positive".
        assert!(p.beta() > 0.0);
    }

    #[test]
    fn per_type_beta_diverges_between_types() {
        use webcache_trace::DocumentType;
        let mut p = GdStar::new(
            CostModel::Constant,
            BetaMode::AdaptivePerType {
                initial: 1.0,
                refresh_interval: 64,
            },
        );
        // Multimedia hits arrive in immediate bursts (gaps of exactly 1
        // dominate, with one long gap per round); image re-references
        // always wait out a long filler run. After enough samples the
        // per-type estimates must separate, with multimedia's β (steeply
        // decaying gap distribution) the larger.
        p.on_insert_typed(DocId::new(1), ByteSize::new(10), DocumentType::Image);
        p.on_insert_typed(DocId::new(2), ByteSize::new(10), DocumentType::MultiMedia);
        let mut filler = 100u64;
        for round in 0..400u64 {
            // Multimedia: a burst of back-to-back hits.
            for _ in 0..6 {
                p.on_hit_typed(DocId::new(2), ByteSize::new(10), DocumentType::MultiMedia);
            }
            // Image: one hit per round after a long filler run.
            for _ in 0..8 + (round % 16) {
                p.on_insert_typed(DocId::new(filler), ByteSize::new(10), DocumentType::Other);
                filler += 1;
            }
            p.on_hit_typed(DocId::new(1), ByteSize::new(10), DocumentType::Image);
        }
        let b_mm = p.beta_for(DocumentType::MultiMedia);
        let b_img = p.beta_for(DocumentType::Image);
        assert!(
            b_mm > b_img,
            "multimedia β {b_mm} must exceed image β {b_img}"
        );
        // Types without samples keep the initial β.
        assert_eq!(p.beta_for(DocumentType::Application), 1.0);
    }

    #[test]
    fn per_type_mode_tracks_type_changes() {
        use webcache_trace::DocumentType;
        let mut p = GdStar::with_per_type_beta(CostModel::Packet);
        p.on_insert_typed(DocId::new(1), ByteSize::new(100), DocumentType::Html);
        p.on_hit_typed(DocId::new(1), ByteSize::new(100), DocumentType::Html);
        assert_eq!(p.frequency(DocId::new(1)), Some(2));
        assert_eq!(p.evict(), Some(DocId::new(1)));
    }

    #[test]
    fn untyped_hooks_still_work_in_per_type_mode() {
        let mut p = GdStar::with_per_type_beta(CostModel::Constant);
        p.on_insert(DocId::new(5), ByteSize::new(10));
        p.on_hit(DocId::new(5), ByteSize::new(10));
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic(expected = "β must be positive")]
    fn rejects_non_positive_beta() {
        let _ = GdStar::with_fixed_beta(CostModel::Constant, 0.0);
    }

    #[test]
    fn estimator_recovers_steep_slopes() {
        // Feed gaps from P(n) ∝ n^-2 over 1..1024 using deterministic
        // inverse-CDF sampling.
        let mut est = BetaEstimator::new();
        let norm: f64 = (1..=1024u64).map(|n| (n as f64).powf(-2.0)).sum();
        for i in 0..20_000u64 {
            let u = (i as f64 + 0.5) / 20_000.0;
            let mut acc = 0.0;
            let mut chosen = 1024;
            for n in 1..=1024u64 {
                acc += (n as f64).powf(-2.0) / norm;
                if acc >= u {
                    chosen = n;
                    break;
                }
            }
            est.sample(chosen);
        }
        let beta = est.estimate().unwrap();
        assert!(
            (beta - 2.0).abs() < 0.35,
            "expected β ≈ 2.0, estimated {beta}"
        );
    }

    #[test]
    fn estimator_recovers_shallow_slopes() {
        let mut est = BetaEstimator::new();
        let target = 0.8;
        let norm: f64 = (1..=4095u64).map(|n| (n as f64).powf(-target)).sum();
        for i in 0..40_000u64 {
            let u = (i as f64 + 0.5) / 40_000.0;
            let mut acc = 0.0;
            let mut chosen = 4095;
            for n in 1..=4095u64 {
                acc += (n as f64).powf(-target) / norm;
                if acc >= u {
                    chosen = n;
                    break;
                }
            }
            est.sample(chosen);
        }
        let beta = est.estimate().unwrap();
        assert!(
            (beta - target).abs() < 0.3,
            "expected β ≈ {target}, estimated {beta}"
        );
    }

    #[test]
    fn estimator_needs_two_buckets() {
        let mut est = BetaEstimator::new();
        assert_eq!(est.estimate(), None);
        for _ in 0..100 {
            est.sample(1);
        }
        assert_eq!(est.estimate(), None, "one bucket cannot define a slope");
        est.sample(100);
        assert!(est.estimate().is_some());
        est.reset();
        assert_eq!(est.samples(), 0);
    }

    #[test]
    fn estimator_zero_gap_clamps_to_one() {
        let mut est = BetaEstimator::new();
        est.sample(0);
        assert_eq!(est.samples(), 1);
    }
}
