//! Least Frequently Used (without aging).
//!
//! Evicts the document with the smallest in-cache reference count, breaking
//! ties towards the least recently used. Plain LFU suffers from *cache
//! pollution*: documents that were popular once keep large counts and are
//! never evicted — the defect that LFU-DA's dynamic aging repairs. Included
//! as a baseline for the aging ablation.

use webcache_obs::{HeapOp, MetricsSink};
use webcache_trace::{ByteSize, DocId};

use super::{slot_entry, slot_of, PriorityKey, ReplacementPolicy};
use crate::pqueue::DenseIndexedHeap;

/// LFU replacement state. See the module-level documentation above.
///
/// `M` is the [`MetricsSink`] receiving heap-cost events; the default
/// `()` compiles the instrumentation away entirely.
#[derive(Debug, Default)]
pub struct Lfu<M: MetricsSink = ()> {
    heap: DenseIndexedHeap<DocId, PriorityKey>,
    /// Per-slot reference count; 0 = not tracked.
    counts: Vec<u64>,
    seq: u64,
    sink: M,
}

impl Lfu {
    /// Creates an empty LFU tracker.
    pub fn new() -> Self {
        Lfu::default()
    }
}

impl<M: MetricsSink> Lfu<M> {
    /// Like [`Lfu::new`], but routing internal events into `sink`.
    pub fn with_sink(sink: M) -> Self {
        Lfu {
            heap: DenseIndexedHeap::new(),
            counts: Vec::new(),
            seq: 0,
            sink,
        }
    }

    /// The in-cache reference count of `doc`, if tracked.
    pub fn reference_count(&self, doc: DocId) -> Option<u64> {
        match self.counts.get(slot_of(doc)) {
            Some(&count) if count > 0 => Some(count),
            _ => None,
        }
    }

    fn touch(&mut self, doc: DocId, op: HeapOp) {
        let count = slot_entry(&mut self.counts, slot_of(doc), 0);
        *count += 1;
        let count = *count;
        self.seq += 1;
        let cost = self
            .heap
            .upsert(doc, PriorityKey::new(count as f64, self.seq));
        self.sink.heap_op(op, cost);
    }
}

impl<M: MetricsSink> ReplacementPolicy for Lfu<M> {
    fn label(&self) -> String {
        "LFU".to_owned()
    }

    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        debug_assert!(
            self.reference_count(doc).is_none(),
            "double insert of {doc}"
        );
        self.touch(doc, HeapOp::Insert);
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        if self.reference_count(doc).is_some() {
            self.touch(doc, HeapOp::Update);
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        let (doc, _, cost) = self.heap.pop_min_counted()?;
        self.sink.heap_op(HeapOp::PopMin, cost);
        let count = self.counts[slot_of(doc)];
        self.counts[slot_of(doc)] = 0;
        self.sink
            .evict_reason(webcache_obs::Reason::frequency(count as f64));
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if self.reference_count(doc).is_some() {
            self.counts[slot_of(doc)] = 0;
            if let Some((_, cost)) = self.heap.remove_counted(doc) {
                self.sink.heap_op(HeapOp::Remove, cost);
            }
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_slots(&mut self, n: usize) {
        self.heap.reserve(n);
        if self.counts.len() < n {
            self.counts.resize(n, 0);
        }
    }
    fn set_batched(&mut self, enabled: bool) {
        self.heap.set_deferred(enabled);
    }

    fn flush_deferred(&mut self) {
        let _ = self.heap.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::new(1)
    }

    #[test]
    fn evicts_smallest_count() {
        let mut p = Lfu::new();
        p.on_insert(doc(1), sz());
        p.on_insert(doc(2), sz());
        p.on_hit(doc(1), sz());
        p.on_hit(doc(1), sz());
        p.on_hit(doc(2), sz());
        assert_eq!(p.reference_count(doc(1)), Some(3));
        assert_eq!(p.reference_count(doc(2)), Some(2));
        assert_eq!(p.evict(), Some(doc(2)));
    }

    #[test]
    fn ties_break_towards_older_access() {
        let mut p = Lfu::new();
        p.on_insert(doc(1), sz());
        p.on_insert(doc(2), sz());
        // Both have count 1; doc 1 was touched earlier, so it goes first.
        assert_eq!(p.evict(), Some(doc(1)));

        let mut p = Lfu::new();
        p.on_insert(doc(1), sz());
        p.on_insert(doc(2), sz());
        p.on_hit(doc(1), sz());
        p.on_hit(doc(2), sz());
        // Counts equal (2); doc 1's last access is older.
        assert_eq!(p.evict(), Some(doc(1)));
    }

    #[test]
    fn pollution_demonstration() {
        // A document with a huge historical count survives even though it
        // is never referenced again — the defect LFU-DA fixes.
        let mut p = Lfu::new();
        p.on_insert(doc(1), sz());
        for _ in 0..100 {
            p.on_hit(doc(1), sz());
        }
        for i in 2..10 {
            p.on_insert(doc(i), sz());
            p.on_hit(doc(i), sz());
        }
        for _ in 0..8 {
            let v = p.evict().unwrap();
            assert_ne!(v, doc(1), "stale popular doc pollutes the cache");
        }
    }

    #[test]
    fn remove_clears_count() {
        let mut p = Lfu::new();
        p.on_insert(doc(1), sz());
        p.remove(doc(1));
        assert_eq!(p.reference_count(doc(1)), None);
        assert_eq!(p.len(), 0);
        // Re-insert starts the count over.
        p.on_insert(doc(1), sz());
        assert_eq!(p.reference_count(doc(1)), Some(1));
    }
}
