//! Least Frequently Used with Dynamic Aging.
//!
//! Frequency-based with a recency correction under fixed cost and size
//! assumptions (paper, Section 3; Arlitt et al.). Each cached document `p`
//! carries the key
//!
//! ```text
//! K(p) = f(p) + L
//! ```
//!
//! where `f(p)` is the in-cache reference count and `L` is the *cache age*:
//! `L` starts at 0 and is set to the key of each evicted victim. Adding the
//! age when a document enters or is referenced lets newly inserted
//! documents compete with long-resident popular ones, avoiding the cache
//! pollution of plain LFU. LFU-DA achieves high byte hit rates because it
//! does not discriminate against large documents.

use webcache_obs::{HeapOp, MetricsSink};
use webcache_trace::{ByteSize, DocId};

use super::{slot_entry, slot_of, PriorityKey, ReplacementPolicy};
use crate::pqueue::DenseIndexedHeap;

/// LFU-DA replacement state. See the module-level documentation above.
///
/// `M` is the [`MetricsSink`] receiving heap-cost and aging events; the
/// default `()` compiles the instrumentation away entirely.
#[derive(Debug, Default)]
pub struct LfuDa<M: MetricsSink = ()> {
    heap: DenseIndexedHeap<DocId, PriorityKey>,
    /// Per-slot reference count; 0 = not tracked.
    counts: Vec<u64>,
    /// Cache age `L`: the key value of the last evicted document.
    age: f64,
    seq: u64,
    sink: M,
}

impl LfuDa {
    /// Creates an empty LFU-DA tracker.
    pub fn new() -> Self {
        LfuDa::default()
    }
}

impl<M: MetricsSink> LfuDa<M> {
    /// Like [`LfuDa::new`], but routing internal events into `sink`.
    pub fn with_sink(sink: M) -> Self {
        LfuDa {
            heap: DenseIndexedHeap::new(),
            counts: Vec::new(),
            age: 0.0,
            seq: 0,
            sink,
        }
    }

    /// The current cache age `L`.
    pub fn cache_age(&self) -> f64 {
        self.age
    }

    /// The key `K(p) = f(p) + L` currently assigned to `doc`.
    pub fn key_of(&self, doc: DocId) -> Option<f64> {
        self.heap.key_of(doc).map(|k| k.value.get())
    }

    fn tracked(&self, doc: DocId) -> bool {
        self.counts.get(slot_of(doc)).copied().unwrap_or(0) > 0
    }

    fn touch(&mut self, doc: DocId, op: HeapOp) {
        let count = slot_entry(&mut self.counts, slot_of(doc), 0);
        *count += 1;
        let count = *count;
        self.seq += 1;
        let key = PriorityKey::new(count as f64 + self.age, self.seq);
        let cost = self.heap.upsert(doc, key);
        self.sink.heap_op(op, cost);
    }
}

impl<M: MetricsSink> ReplacementPolicy for LfuDa<M> {
    fn label(&self) -> String {
        "LFU-DA".to_owned()
    }

    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        debug_assert!(!self.tracked(doc), "double insert of {doc}");
        self.touch(doc, HeapOp::Insert);
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        if self.tracked(doc) {
            self.touch(doc, HeapOp::Update);
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        let (doc, key, cost) = self.heap.pop_min_counted()?;
        self.sink.heap_op(HeapOp::PopMin, cost);
        let count = self.counts[slot_of(doc)];
        self.counts[slot_of(doc)] = 0;
        let key = key.value.get();
        self.sink
            .evict_reason(webcache_obs::Reason::lfu_da(key, count as f64));
        // Dynamic aging: the cache age inflates to the victim's key.
        self.age = key;
        self.sink.inflation(self.age);
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if self.tracked(doc) {
            self.counts[slot_of(doc)] = 0;
            if let Some((_, cost)) = self.heap.remove_counted(doc) {
                self.sink.heap_op(HeapOp::Remove, cost);
            }
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_slots(&mut self, n: usize) {
        self.heap.reserve(n);
        if self.counts.len() < n {
            self.counts.resize(n, 0);
        }
    }
    fn set_batched(&mut self, enabled: bool) {
        self.heap.set_deferred(enabled);
    }

    fn flush_deferred(&mut self) {
        let _ = self.heap.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::new(1)
    }

    #[test]
    fn evicts_least_frequent_when_age_is_zero() {
        let mut p = LfuDa::new();
        p.on_insert(doc(1), sz());
        p.on_insert(doc(2), sz());
        p.on_hit(doc(1), sz());
        assert_eq!(p.evict(), Some(doc(2)));
        assert_eq!(p.cache_age(), 1.0);
    }

    #[test]
    fn age_advances_to_victim_key() {
        let mut p = LfuDa::new();
        p.on_insert(doc(1), sz());
        for _ in 0..4 {
            p.on_hit(doc(1), sz());
        }
        assert_eq!(p.key_of(doc(1)), Some(5.0));
        assert_eq!(p.evict(), Some(doc(1)));
        assert_eq!(p.cache_age(), 5.0);
        // A new document now starts at K = 1 + 5.
        p.on_insert(doc(2), sz());
        assert_eq!(p.key_of(doc(2)), Some(6.0));
    }

    #[test]
    fn aging_prevents_pollution() {
        // Build up a popular-but-stale document, then stream new ones
        // through a small cache; the stale document must eventually fall.
        let mut p = LfuDa::new();
        p.on_insert(doc(0), sz());
        for _ in 0..10 {
            p.on_hit(doc(0), sz());
        }
        let mut evicted_stale = false;
        for next_doc in 1u64..=20 {
            // Keep exactly 2 tracked documents: insert one, evict one.
            p.on_insert(doc(next_doc), sz());
            if p.evict() == Some(doc(0)) {
                evicted_stale = true;
                break;
            }
        }
        assert!(
            evicted_stale,
            "dynamic aging must eventually evict the stale popular doc"
        );
    }

    #[test]
    fn keys_are_monotone_for_repeated_hits() {
        let mut p = LfuDa::new();
        p.on_insert(doc(1), sz());
        let mut last = p.key_of(doc(1)).unwrap();
        for _ in 0..5 {
            p.on_hit(doc(1), sz());
            let k = p.key_of(doc(1)).unwrap();
            assert!(k > last);
            last = k;
        }
    }

    #[test]
    fn remove_does_not_age() {
        let mut p = LfuDa::new();
        p.on_insert(doc(1), sz());
        p.on_hit(doc(1), sz());
        p.remove(doc(1));
        assert_eq!(p.cache_age(), 0.0, "invalidation must not inflate the age");
    }
}
