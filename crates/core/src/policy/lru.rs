//! Least Recently Used.
//!
//! The most widely deployed scheme. Recency-based: on replacement it
//! removes the document that has not been referenced for the longest
//! period of time. It neither discriminates by size nor uses frequency
//! information, which in the study makes it (together with LFU-DA) the
//! strongest scheme for multi-media *byte* hit rate and the weakest for
//! image/HTML hit rate.
//!
//! Implemented as an intrusive doubly-linked list over a slab with a
//! position map — all operations are `O(1)`.

use webcache_trace::{ByteSize, DocId};

use super::{slot_entry, slot_of, ReplacementPolicy};

#[derive(Debug, Clone, Copy)]
struct Node {
    doc: DocId,
    prev: Option<usize>,
    next: Option<usize>,
}

/// Sentinel marking an untracked document slot in [`Lru::map`].
const UNTRACKED: u32 = u32::MAX;

/// LRU replacement state. See the module-level documentation above.
#[derive(Debug, Default)]
pub struct Lru {
    /// Document slot -> node index; [`UNTRACKED`] = not in the cache.
    map: Vec<u32>,
    live: usize,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used.
    head: Option<usize>,
    /// Least recently used (the eviction victim).
    tail: Option<usize>,
}

impl Lru {
    /// Creates an empty LRU tracker.
    pub fn new() -> Self {
        Lru::default()
    }

    /// The current victim-if-evicted-now, without removing it.
    pub fn peek_victim(&self) -> Option<DocId> {
        self.tail.map(|i| self.nodes[i].doc)
    }

    fn node_of(&self, doc: DocId) -> Option<usize> {
        match self.map.get(slot_of(doc)) {
            Some(&idx) if idx != UNTRACKED => Some(idx as usize),
            _ => None,
        }
    }

    fn push_front(&mut self, doc: DocId) -> usize {
        let node = Node {
            doc,
            prev: None,
            next: self.head,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if let Some(old_head) = self.head {
            self.nodes[old_head].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
        idx
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.free.push(idx);
    }
}

impl ReplacementPolicy for Lru {
    fn label(&self) -> String {
        "LRU".to_owned()
    }

    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        debug_assert!(self.node_of(doc).is_none(), "double insert of {doc}");
        let idx = self.push_front(doc);
        *slot_entry(&mut self.map, slot_of(doc), UNTRACKED) = idx as u32;
        self.live += 1;
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        if let Some(idx) = self.node_of(doc) {
            if self.head == Some(idx) {
                return;
            }
            self.unlink(idx);
            // `unlink` freed the slot; `push_front` reuses it immediately.
            let new_idx = self.push_front(doc);
            debug_assert_eq!(new_idx, idx);
            self.map[slot_of(doc)] = new_idx as u32;
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        let idx = self.tail?;
        let doc = self.nodes[idx].doc;
        self.unlink(idx);
        self.map[slot_of(doc)] = UNTRACKED;
        self.live -= 1;
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if let Some(idx) = self.node_of(doc) {
            self.unlink(idx);
            self.map[slot_of(doc)] = UNTRACKED;
            self.live -= 1;
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn reserve_slots(&mut self, n: usize) {
        if self.map.len() < n {
            self.map.resize(n, UNTRACKED);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::new(1)
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new();
        for i in 0..3 {
            lru.on_insert(doc(i), sz());
        }
        lru.on_hit(doc(0), sz()); // order (MRU..LRU): 0, 2, 1
        assert_eq!(lru.peek_victim(), Some(doc(1)));
        assert_eq!(lru.evict(), Some(doc(1)));
        assert_eq!(lru.evict(), Some(doc(2)));
        assert_eq!(lru.evict(), Some(doc(0)));
        assert_eq!(lru.evict(), None);
    }

    #[test]
    fn hit_on_head_is_noop() {
        let mut lru = Lru::new();
        lru.on_insert(doc(1), sz());
        lru.on_insert(doc(2), sz());
        lru.on_hit(doc(2), sz());
        assert_eq!(lru.evict(), Some(doc(1)));
    }

    #[test]
    fn hit_on_unknown_doc_is_ignored() {
        let mut lru = Lru::new();
        lru.on_insert(doc(1), sz());
        lru.on_hit(doc(99), sz());
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn remove_middle_keeps_list_intact() {
        let mut lru = Lru::new();
        for i in 0..5 {
            lru.on_insert(doc(i), sz());
        }
        lru.remove(doc(2));
        let order: Vec<u64> = std::iter::from_fn(|| lru.evict().map(DocId::as_u64)).collect();
        assert_eq!(order, vec![0, 1, 3, 4]);
    }

    #[test]
    fn slots_are_reused() {
        let mut lru = Lru::new();
        for i in 0..100 {
            lru.on_insert(doc(i), sz());
            lru.evict();
        }
        assert!(lru.nodes.len() <= 2, "slab must recycle slots");
    }

    /// Differential test against the obvious Vec-based model.
    #[test]
    fn differential_against_vec_model() {
        let mut lru = Lru::new();
        let mut model: Vec<u64> = Vec::new(); // front = MRU

        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };

        for step in 0..4000 {
            match next() % 4 {
                0 => {
                    let d = next() % 40;
                    if !model.contains(&d) {
                        lru.on_insert(doc(d), sz());
                        model.insert(0, d);
                    }
                }
                1 => {
                    let d = next() % 40;
                    lru.on_hit(doc(d), sz());
                    if let Some(pos) = model.iter().position(|&x| x == d) {
                        let d = model.remove(pos);
                        model.insert(0, d);
                    }
                }
                2 => {
                    let got = lru.evict().map(DocId::as_u64);
                    let expected = model.pop();
                    assert_eq!(got, expected, "step {step}");
                }
                _ => {
                    let d = next() % 40;
                    lru.remove(doc(d));
                    model.retain(|&x| x != d);
                }
            }
            assert_eq!(lru.len(), model.len(), "step {step}");
        }
    }
}
