//! LRU-K (O'Neil, O'Neil & Weikum).
//!
//! LRU-K evicts the document whose K-th most recent reference lies
//! furthest in the past (its *backward K-distance*); documents with
//! fewer than K references have infinite distance and evict first,
//! ordered by their oldest reference. K = 1 degenerates to LRU; K = 2 —
//! the variant implemented by [`LruK::two`] and used in the comparative
//! cache literature — discriminates one-timers sharply, the same goal
//! SLRU and the second-hit admission filter pursue by other means.

use webcache_trace::{ByteSize, DocId};

use super::{slot_of, PriorityKey, ReplacementPolicy};
use crate::pqueue::DenseIndexedHeap;

/// LRU-K replacement state. See the module-level documentation above.
///
/// Reference histories are flattened into one vector of `k` fixed rows
/// per document slot (`history[slot*k .. slot*k+k]`, oldest first, with
/// `lens[slot]` valid entries); K is a small constant (2 in the classic
/// variant), so the left-shift on overflow is a couple of word moves.
#[derive(Debug)]
pub struct LruK {
    k: usize,
    /// Flattened last-K reference times, `k` slots per document row.
    history: Vec<u64>,
    /// Valid entries per document row; 0 = not tracked.
    lens: Vec<u32>,
    /// Min-heap on the backward K-distance key.
    heap: DenseIndexedHeap<DocId, PriorityKey>,
    clock: u64,
}

impl Default for LruK {
    /// The classic K = 2 variant ([`LruK::two`]).
    fn default() -> Self {
        LruK::two()
    }
}

impl LruK {
    /// Creates an LRU-K tracker.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "LRU-K needs K ≥ 1");
        LruK {
            k,
            history: Vec::new(),
            lens: Vec::new(),
            heap: DenseIndexedHeap::new(),
            clock: 0,
        }
    }

    /// The classic K = 2 variant.
    pub fn two() -> Self {
        LruK::new(2)
    }

    /// The configured K.
    pub fn k(&self) -> usize {
        self.k
    }

    fn tracked(&self, doc: DocId) -> bool {
        self.lens.get(slot_of(doc)).copied().unwrap_or(0) > 0
    }

    fn touch(&mut self, doc: DocId) {
        self.clock += 1;
        let slot = slot_of(doc);
        if slot >= self.lens.len() {
            self.lens.resize(slot + 1, 0);
            self.history.resize((slot + 1) * self.k, 0);
        }
        let row = slot * self.k;
        let len = self.lens[slot] as usize;
        if len < self.k {
            self.history[row + len] = self.clock;
            self.lens[slot] = (len + 1) as u32;
        } else {
            // Row full: shift out the oldest reference.
            self.history.copy_within(row + 1..row + self.k, row);
            self.history[row + self.k - 1] = self.clock;
        }
        // Priority: the K-th most recent reference time when available —
        // the min-heap then pops the *oldest* K-th reference, i.e. the
        // largest backward K-distance. Documents with fewer than K
        // references have infinite distance: keyed below every full
        // history (-1e18 + first reference), so they evict first, oldest
        // first.
        let key = if self.lens[slot] as usize == self.k {
            PriorityKey::new(self.history[row] as f64, doc.as_u64())
        } else {
            PriorityKey::new(-1e18 + self.history[row] as f64, doc.as_u64())
        };
        self.heap.upsert(doc, key);
    }
}

impl ReplacementPolicy for LruK {
    fn label(&self) -> String {
        format!("LRU-{}", self.k)
    }

    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        debug_assert!(!self.tracked(doc), "double insert of {doc}");
        self.touch(doc);
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        if self.tracked(doc) {
            self.touch(doc);
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        let (doc, _) = self.heap.pop_min()?;
        self.lens[slot_of(doc)] = 0;
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if self.tracked(doc) {
            self.lens[slot_of(doc)] = 0;
            self.heap.remove(doc);
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_slots(&mut self, n: usize) {
        self.heap.reserve(n);
        if self.lens.len() < n {
            self.lens.resize(n, 0);
            self.history.resize(n * self.k, 0);
        }
    }
    fn set_batched(&mut self, enabled: bool) {
        self.heap.set_deferred(enabled);
    }

    fn flush_deferred(&mut self) {
        let _ = self.heap.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::new(1)
    }

    #[test]
    fn one_timers_evict_before_twice_referenced() {
        let mut p = LruK::two();
        p.on_insert(doc(1), sz());
        p.on_hit(doc(1), sz()); // doc 1 has 2 references
        p.on_insert(doc(2), sz()); // doc 2 has 1 (more recent than doc 1!)
        assert_eq!(p.evict(), Some(doc(2)), "infinite K-distance evicts first");
        assert_eq!(p.evict(), Some(doc(1)));
    }

    #[test]
    fn among_full_histories_oldest_kth_reference_loses() {
        let mut p = LruK::two();
        p.on_insert(doc(1), sz()); // t1
        p.on_insert(doc(2), sz()); // t2
        p.on_hit(doc(1), sz()); // t3: doc1 history [t1, t3]
        p.on_hit(doc(2), sz()); // t4: doc2 history [t2, t4]
        p.on_hit(doc(1), sz()); // t5: doc1 history [t3, t5]
                                // K-th most recent: doc1 -> t3, doc2 -> t2; doc2 is older.
        assert_eq!(p.evict(), Some(doc(2)));
    }

    #[test]
    fn among_partial_histories_oldest_first_reference_loses() {
        let mut p = LruK::new(3);
        p.on_insert(doc(1), sz());
        p.on_insert(doc(2), sz());
        p.on_hit(doc(1), sz()); // still only 2 < K references
        assert_eq!(p.evict(), Some(doc(1)), "doc 1's first reference is older");
    }

    #[test]
    fn k_equal_one_behaves_like_lru() {
        use crate::policy::Lru;
        let mut lruk = LruK::new(1);
        let mut lru = Lru::new();
        let ops: [(u64, bool); 12] = [
            (1, true),
            (2, true),
            (3, true),
            (1, false),
            (4, true),
            (2, false),
            (5, true),
            (3, false),
            (1, false),
            (6, true),
            (4, false),
            (2, false),
        ];
        for (d, is_insert) in ops {
            if is_insert {
                lruk.on_insert(doc(d), sz());
                lru.on_insert(doc(d), sz());
            } else {
                lruk.on_hit(doc(d), sz());
                lru.on_hit(doc(d), sz());
            }
        }
        loop {
            let a = lruk.evict();
            let b = lru.evict();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn history_is_bounded_to_k() {
        let mut p = LruK::two();
        p.on_insert(doc(1), sz());
        for _ in 0..10 {
            p.on_hit(doc(1), sz());
        }
        assert_eq!(p.lens[slot_of(doc(1))], 2);
        assert_eq!(p.k(), 2);
        assert_eq!(p.label(), "LRU-2");
    }

    #[test]
    fn remove_and_reinsert_forget_history() {
        let mut p = LruK::two();
        p.on_insert(doc(1), sz());
        p.on_hit(doc(1), sz());
        p.remove(doc(1));
        p.on_insert(doc(1), sz());
        p.on_insert(doc(2), sz());
        p.on_hit(doc(2), sz());
        // doc 1 is back to a partial history; it evicts before doc 2.
        assert_eq!(p.evict(), Some(doc(1)));
    }

    #[test]
    #[should_panic(expected = "K ≥ 1")]
    fn zero_k_rejected() {
        let _ = LruK::new(0);
    }
}
