//! LRU-K (O'Neil, O'Neil & Weikum).
//!
//! LRU-K evicts the document whose K-th most recent reference lies
//! furthest in the past (its *backward K-distance*); documents with
//! fewer than K references have infinite distance and evict first,
//! ordered by their oldest reference. K = 1 degenerates to LRU; K = 2 —
//! the variant implemented by [`LruK::two`] and used in the comparative
//! cache literature — discriminates one-timers sharply, the same goal
//! SLRU and the second-hit admission filter pursue by other means.

use std::collections::{HashMap, VecDeque};

use webcache_trace::{ByteSize, DocId};

use super::{PriorityKey, ReplacementPolicy};
use crate::pqueue::IndexedHeap;

/// LRU-K replacement state. See the module-level documentation above.
#[derive(Debug)]
pub struct LruK {
    k: usize,
    /// Last K reference times per document, most recent at the back.
    history: HashMap<DocId, VecDeque<u64>>,
    /// Min-heap on the backward K-distance key.
    heap: IndexedHeap<DocId, PriorityKey>,
    clock: u64,
}

impl LruK {
    /// Creates an LRU-K tracker.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "LRU-K needs K ≥ 1");
        LruK {
            k,
            history: HashMap::new(),
            heap: IndexedHeap::new(),
            clock: 0,
        }
    }

    /// The classic K = 2 variant.
    pub fn two() -> Self {
        LruK::new(2)
    }

    /// The configured K.
    pub fn k(&self) -> usize {
        self.k
    }

    fn touch(&mut self, doc: DocId) {
        self.clock += 1;
        let history = self.history.entry(doc).or_default();
        history.push_back(self.clock);
        while history.len() > self.k {
            history.pop_front();
        }
        // Priority: the K-th most recent reference time when available —
        // the min-heap then pops the *oldest* K-th reference, i.e. the
        // largest backward K-distance. Documents with fewer than K
        // references have infinite distance: keyed below every full
        // history (-1e18 + first reference), so they evict first, oldest
        // first.
        let key = if history.len() == self.k {
            PriorityKey::new(history[0] as f64, doc.as_u64())
        } else {
            PriorityKey::new(-1e18 + history[0] as f64, doc.as_u64())
        };
        self.heap.upsert(doc, key);
    }
}

impl ReplacementPolicy for LruK {
    fn label(&self) -> String {
        format!("LRU-{}", self.k)
    }

    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        debug_assert!(!self.history.contains_key(&doc), "double insert of {doc}");
        self.touch(doc);
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        if self.history.contains_key(&doc) {
            self.touch(doc);
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        let (doc, _) = self.heap.pop_min()?;
        self.history.remove(&doc);
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if self.history.remove(&doc).is_some() {
            self.heap.remove(doc);
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::new(1)
    }

    #[test]
    fn one_timers_evict_before_twice_referenced() {
        let mut p = LruK::two();
        p.on_insert(doc(1), sz());
        p.on_hit(doc(1), sz()); // doc 1 has 2 references
        p.on_insert(doc(2), sz()); // doc 2 has 1 (more recent than doc 1!)
        assert_eq!(p.evict(), Some(doc(2)), "infinite K-distance evicts first");
        assert_eq!(p.evict(), Some(doc(1)));
    }

    #[test]
    fn among_full_histories_oldest_kth_reference_loses() {
        let mut p = LruK::two();
        p.on_insert(doc(1), sz()); // t1
        p.on_insert(doc(2), sz()); // t2
        p.on_hit(doc(1), sz()); // t3: doc1 history [t1, t3]
        p.on_hit(doc(2), sz()); // t4: doc2 history [t2, t4]
        p.on_hit(doc(1), sz()); // t5: doc1 history [t3, t5]
        // K-th most recent: doc1 -> t3, doc2 -> t2; doc2 is older.
        assert_eq!(p.evict(), Some(doc(2)));
    }

    #[test]
    fn among_partial_histories_oldest_first_reference_loses() {
        let mut p = LruK::new(3);
        p.on_insert(doc(1), sz());
        p.on_insert(doc(2), sz());
        p.on_hit(doc(1), sz()); // still only 2 < K references
        assert_eq!(p.evict(), Some(doc(1)), "doc 1's first reference is older");
    }

    #[test]
    fn k_equal_one_behaves_like_lru() {
        use crate::policy::Lru;
        let mut lruk = LruK::new(1);
        let mut lru = Lru::new();
        let ops: [(u64, bool); 12] = [
            (1, true),
            (2, true),
            (3, true),
            (1, false),
            (4, true),
            (2, false),
            (5, true),
            (3, false),
            (1, false),
            (6, true),
            (4, false),
            (2, false),
        ];
        for (d, is_insert) in ops {
            if is_insert {
                lruk.on_insert(doc(d), sz());
                lru.on_insert(doc(d), sz());
            } else {
                lruk.on_hit(doc(d), sz());
                lru.on_hit(doc(d), sz());
            }
        }
        loop {
            let a = lruk.evict();
            let b = lru.evict();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn history_is_bounded_to_k() {
        let mut p = LruK::two();
        p.on_insert(doc(1), sz());
        for _ in 0..10 {
            p.on_hit(doc(1), sz());
        }
        assert_eq!(p.history[&doc(1)].len(), 2);
        assert_eq!(p.k(), 2);
        assert_eq!(p.label(), "LRU-2");
    }

    #[test]
    fn remove_and_reinsert_forget_history() {
        let mut p = LruK::two();
        p.on_insert(doc(1), sz());
        p.on_hit(doc(1), sz());
        p.remove(doc(1));
        p.on_insert(doc(1), sz());
        p.on_insert(doc(2), sz());
        p.on_hit(doc(2), sz());
        // doc 1 is back to a partial history; it evicts before doc 2.
        assert_eq!(p.evict(), Some(doc(1)));
    }

    #[test]
    #[should_panic(expected = "K ≥ 1")]
    fn zero_k_rejected() {
        let _ = LruK::new(0);
    }
}
