//! Replacement policies.
//!
//! A [`ReplacementPolicy`] tracks per-document bookkeeping (recency,
//! frequency, GreedyDual `H` values) and answers eviction queries; the
//! [`Cache`](crate::cache::Cache) owns the actual store and byte
//! accounting and drives the policy through the trait's lifecycle hooks.

use std::fmt;

use serde::{Deserialize, Serialize};

use webcache_trace::{ByteSize, DocId, DocumentType};

use crate::cost::CostModel;
use crate::float::OrderedF64;

mod arc;
mod fifo;
mod gds;
mod gdsf;
mod gdstar;
mod lfu;
mod lfuda;
mod lru;
mod lruk;
mod s3fifo;
mod size;
mod slru;

pub use arc::Arc;
pub use fifo::Fifo;
pub use gds::Gds;
pub use gdsf::Gdsf;
pub use gdstar::{BetaEstimator, BetaMode, GdStar};
pub use lfu::Lfu;
pub use lfuda::LfuDa;
pub use lru::Lru;
pub use lruk::LruK;
pub use s3fifo::S3Fifo;
pub use size::SizeBased;
pub use slru::Slru;

/// Bookkeeping interface implemented by every replacement scheme.
///
/// The contract, enforced by the cache and checked by the policy
/// conformance tests:
///
/// * `on_insert` is called exactly once for a document entering the cache;
///   the document is not already tracked.
/// * `on_hit` is called for accesses to tracked documents.
/// * `evict` removes and returns the policy's victim; it must return a
///   currently tracked document, and applies any aging side effects
///   (GreedyDual / LFU-DA cache-age updates).
/// * `remove` untracks a document without aging side effects (used for
///   invalidation after a document modification).
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// Human-readable label, e.g. `"GD*(P)"`.
    fn label(&self) -> String;

    /// A document of the given size was inserted into the cache.
    fn on_insert(&mut self, doc: DocId, size: ByteSize);

    /// A tracked document was requested and served from the cache.
    fn on_hit(&mut self, doc: DocId, size: ByteSize);

    /// Type-aware insert hook. The cache calls this variant (it knows
    /// every document's [`DocumentType`]); the default forwards to
    /// [`ReplacementPolicy::on_insert`]. Only type-aware schemes (GD\*
    /// with per-type β) override it.
    fn on_insert_typed(&mut self, doc: DocId, size: ByteSize, doc_type: DocumentType) {
        let _ = doc_type;
        self.on_insert(doc, size);
    }

    /// Type-aware hit hook; the default forwards to
    /// [`ReplacementPolicy::on_hit`].
    fn on_hit_typed(&mut self, doc: DocId, size: ByteSize, doc_type: DocumentType) {
        let _ = doc_type;
        self.on_hit(doc, size);
    }

    /// Chooses, untracks and returns the eviction victim.
    ///
    /// Returns `None` when no documents are tracked.
    fn evict(&mut self) -> Option<DocId>;

    /// Untracks `doc` without any aging side effects.
    ///
    /// Called when a document is invalidated (e.g. modified at the origin
    /// server). Unknown documents are ignored.
    fn remove(&mut self, doc: DocId);

    /// Number of tracked documents.
    fn len(&self) -> usize;

    /// Whether no documents are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Announces that document handles will be dense slots `0..n`, so
    /// slot-indexed state can be sized once up front instead of growing
    /// on demand. Purely an optimization hint; the default does nothing.
    fn reserve_slots(&mut self, n: usize) {
        let _ = n;
    }

    /// Switches the policy into (or out of) batched replay mode.
    ///
    /// Heap-backed policies forward this to
    /// [`IndexedHeap::set_deferred`](crate::pqueue::IndexedHeap::set_deferred),
    /// amortizing sift work across a batch of requests. Purely an
    /// optimization hint: observable behavior (victims, hit decisions)
    /// must be identical either way, which the batched-vs-serial
    /// differential proptests pin for every policy. Policies without
    /// deferrable structure ignore it.
    fn set_batched(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Applies any maintenance deferred by batched mode. No-op by default.
    fn flush_deferred(&mut self) {}
}

/// The slot a document handle indexes in per-document vectors.
///
/// Policies store per-document state in plain vectors indexed by
/// `doc.as_u64()`: the [`Cache`](crate::Cache) interns every real
/// document id to a dense slot before calling the policy hooks, so these
/// values are small contiguous integers, never sparse 64-bit ids.
#[inline]
pub(crate) fn slot_of(doc: DocId) -> usize {
    doc.as_u64() as usize
}

/// Grows `vec` with `fill` until `index` is in bounds, then returns the
/// element — the on-demand counterpart of
/// [`ReplacementPolicy::reserve_slots`].
#[inline]
pub(crate) fn slot_entry<T: Copy>(vec: &mut Vec<T>, index: usize, fill: T) -> &mut T {
    if index >= vec.len() {
        vec.resize(index + 1, fill);
    }
    &mut vec[index]
}

/// A heap key combining a priority value with a deterministic tie-breaker.
///
/// Smaller values evict first; among equal values, the smaller `tie` (the
/// older event) evicts first, making every policy fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct PriorityKey {
    pub value: OrderedF64,
    pub tie: u64,
}

impl PriorityKey {
    pub(crate) fn new(value: f64, tie: u64) -> Self {
        PriorityKey {
            value: OrderedF64::new(value),
            tie,
        }
    }
}

/// Identifies a replacement scheme; used to configure sweeps and to
/// construct policies.
///
/// [`PolicyKind::build`] is the single construction entry point — callers
/// never juggle the per-scheme constructors (`Gds::new(cost_model)`,
/// `GdStar::new(cost_model, mode)`, `LruK::two()`, …) directly.
///
/// ```
/// use webcache_core::{CostModel, PolicyKind};
///
/// let policy = PolicyKind::GdStar(CostModel::Packet).build();
/// assert_eq!(policy.label(), "GD*(P)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least Recently Used.
    Lru,
    /// First In First Out.
    Fifo,
    /// Least Frequently Used (no aging; prone to cache pollution).
    Lfu,
    /// Evict the largest document first (SIZE, Williams et al.).
    SizeBased,
    /// Least Frequently Used with Dynamic Aging.
    LfuDa,
    /// Segmented LRU (two recency segments; promotion on re-reference).
    Slru,
    /// LRU-2: evict by backward-2 reference distance (O'Neil et al.).
    LruTwo,
    /// GreedyDual-Size under the given cost model.
    Gds(CostModel),
    /// GreedyDual-Size-Frequency under the given cost model (the β = 1
    /// special case of GreedyDual\*, as deployed in Squid).
    Gdsf(CostModel),
    /// GreedyDual\* under the given cost model, with online-adaptive β.
    GdStar(CostModel),
    /// Adaptive Replacement Cache (Megiddo & Modha): recency/frequency
    /// balance learned online from ghost-list hits.
    Arc,
    /// S3-FIFO (Yang et al.): small/main/ghost FIFO queues with 2-bit
    /// access counters; scan-resistant without any reordering.
    S3Fifo,
}

impl PolicyKind {
    /// The four schemes of the paper's constant-cost experiments
    /// (Figure 2): LRU, LFU-DA, GDS(1), GD\*(1).
    pub const PAPER_CONSTANT: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::LfuDa,
        PolicyKind::Gds(CostModel::Constant),
        PolicyKind::GdStar(CostModel::Constant),
    ];

    /// The four schemes of the paper's packet-cost experiments
    /// (Figure 3): LRU, LFU-DA, GDS(P), GD\*(P).
    pub const PAPER_PACKET: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::LfuDa,
        PolicyKind::Gds(CostModel::Packet),
        PolicyKind::GdStar(CostModel::Packet),
    ];

    /// Every kind, for exhaustive tests.
    pub const ALL: [PolicyKind; 15] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Lfu,
        PolicyKind::SizeBased,
        PolicyKind::LfuDa,
        PolicyKind::Slru,
        PolicyKind::LruTwo,
        PolicyKind::Gds(CostModel::Constant),
        PolicyKind::Gds(CostModel::Packet),
        PolicyKind::Gdsf(CostModel::Constant),
        PolicyKind::Gdsf(CostModel::Packet),
        PolicyKind::GdStar(CostModel::Constant),
        PolicyKind::GdStar(CostModel::Packet),
        PolicyKind::Arc,
        PolicyKind::S3Fifo,
    ];

    /// The 13 schemes that predate the modern cohort — the construction
    /// surface the pre-`PolicySpec` entry points supported, pinned by
    /// the spec-compatibility differential tests.
    pub const LEGACY: [PolicyKind; 13] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Lfu,
        PolicyKind::SizeBased,
        PolicyKind::LfuDa,
        PolicyKind::Slru,
        PolicyKind::LruTwo,
        PolicyKind::Gds(CostModel::Constant),
        PolicyKind::Gds(CostModel::Packet),
        PolicyKind::Gdsf(CostModel::Constant),
        PolicyKind::Gdsf(CostModel::Packet),
        PolicyKind::GdStar(CostModel::Constant),
        PolicyKind::GdStar(CostModel::Packet),
    ];

    /// Constructs a fresh policy instance of this kind.
    ///
    /// This is the only construction path the rest of the workspace uses;
    /// the per-scheme constructors remain available for code that needs
    /// non-default parameters (a fixed β, K ≠ 2, …).
    pub fn build(&self) -> Box<dyn ReplacementPolicy> {
        self.build_instrumented(())
    }

    /// Constructs a fresh policy instance routing internal events
    /// (heap-operation costs, inflation steps) into `sink`.
    ///
    /// The list-based schemes (LRU, FIFO, SLRU, LRU-2) maintain no
    /// priority heap and report no events — the sink is dropped for
    /// them. ARC and S3-FIFO are heap-free too but do report eviction
    /// *reasons* (queue provenance) through the sink's `evict_reason`
    /// channel. `build_instrumented(())` is exactly
    /// [`PolicyKind::build`].
    pub fn build_instrumented<M: webcache_obs::MetricsSink>(
        &self,
        sink: M,
    ) -> Box<dyn ReplacementPolicy> {
        match *self {
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Fifo => Box::new(Fifo::new()),
            PolicyKind::Lfu => Box::new(Lfu::with_sink(sink)),
            PolicyKind::SizeBased => Box::new(SizeBased::with_sink(sink)),
            PolicyKind::LfuDa => Box::new(LfuDa::with_sink(sink)),
            PolicyKind::Slru => Box::new(Slru::new()),
            PolicyKind::LruTwo => Box::new(LruK::two()),
            PolicyKind::Gds(cost) => Box::new(Gds::with_sink(cost, sink)),
            PolicyKind::Gdsf(cost) => Box::new(Gdsf::with_sink(cost, sink)),
            PolicyKind::GdStar(cost) => {
                Box::new(GdStar::with_sink(cost, BetaMode::default(), sink))
            }
            PolicyKind::Arc => Box::new(Arc::with_sink(sink)),
            PolicyKind::S3Fifo => Box::new(S3Fifo::with_sink(sink)),
        }
    }

    /// Constructs a fresh policy instance of this kind.
    ///
    /// Alias of [`PolicyKind::build`], kept for source compatibility with
    /// pre-observability callers.
    pub fn instantiate(self) -> Box<dyn ReplacementPolicy> {
        self.build()
    }

    /// Parses a policy name as used on command lines and in config
    /// files. Accepts the paper's labels (case-insensitive, `*` or
    /// `star`): `lru`, `fifo`, `lfu`, `size`, `lfu-da`, `slru`,
    /// `gds(1)`, `gds(p)`, `gdsf(1)`, `gdsf(p)`, `gd*(1)`, `gd*(p)`
    /// (parentheses optional).
    ///
    /// ```
    /// use webcache_core::{CostModel, PolicyKind};
    /// assert_eq!(PolicyKind::parse("gd*(p)"), Some(PolicyKind::GdStar(CostModel::Packet)));
    /// assert_eq!(PolicyKind::parse("LFU-DA"), Some(PolicyKind::LfuDa));
    /// assert_eq!(PolicyKind::parse("nonsense"), None);
    /// ```
    pub fn parse(name: &str) -> Option<PolicyKind> {
        let normalized: String = name
            .to_ascii_lowercase()
            .chars()
            .filter(|c| !matches!(c, '(' | ')' | '-' | '_' | ' '))
            .collect();
        let normalized = normalized.replace("star", "*");
        Some(match normalized.as_str() {
            "lru" => PolicyKind::Lru,
            "fifo" => PolicyKind::Fifo,
            "lfu" => PolicyKind::Lfu,
            "size" => PolicyKind::SizeBased,
            "lfuda" => PolicyKind::LfuDa,
            "slru" => PolicyKind::Slru,
            "lru2" | "lruk" => PolicyKind::LruTwo,
            "gds" | "gds1" => PolicyKind::Gds(CostModel::Constant),
            "gdsp" => PolicyKind::Gds(CostModel::Packet),
            "gdsf" | "gdsf1" => PolicyKind::Gdsf(CostModel::Constant),
            "gdsfp" => PolicyKind::Gdsf(CostModel::Packet),
            "gd*" | "gd*1" => PolicyKind::GdStar(CostModel::Constant),
            "gd*p" => PolicyKind::GdStar(CostModel::Packet),
            "arc" => PolicyKind::Arc,
            "s3fifo" => PolicyKind::S3Fifo,
            _ => return None,
        })
    }

    /// The label the paper uses for this scheme.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Lru => "LRU".to_owned(),
            PolicyKind::Fifo => "FIFO".to_owned(),
            PolicyKind::Lfu => "LFU".to_owned(),
            PolicyKind::SizeBased => "SIZE".to_owned(),
            PolicyKind::LfuDa => "LFU-DA".to_owned(),
            PolicyKind::Slru => "SLRU".to_owned(),
            PolicyKind::LruTwo => "LRU-2".to_owned(),
            PolicyKind::Gds(cost) => format!("GDS({})", cost.tag()),
            PolicyKind::Gdsf(cost) => format!("GDSF({})", cost.tag()),
            PolicyKind::GdStar(cost) => format!("GD*({})", cost.tag()),
            PolicyKind::Arc => "ARC".to_owned(),
            PolicyKind::S3Fifo => "S3-FIFO".to_owned(),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(PolicyKind::LfuDa.label(), "LFU-DA");
        assert_eq!(PolicyKind::Gds(CostModel::Constant).label(), "GDS(1)");
        assert_eq!(PolicyKind::Gds(CostModel::Packet).label(), "GDS(P)");
        assert_eq!(PolicyKind::GdStar(CostModel::Constant).label(), "GD*(1)");
        assert_eq!(PolicyKind::GdStar(CostModel::Packet).to_string(), "GD*(P)");
    }

    #[test]
    fn build_labels_agree_with_kind() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().label(), kind.label());
            assert_eq!(kind.instantiate().label(), kind.label());
        }
    }

    #[test]
    fn default_impls_match_the_paper_defaults() {
        assert_eq!(Gds::default().label(), "GDS(1)");
        assert_eq!(Gdsf::default().label(), "GDSF(1)");
        assert_eq!(GdStar::default().label(), "GD*(1)");
        assert_eq!(LruK::default().k(), 2);
        assert_eq!(Lru::default().label(), "LRU");
        assert_eq!(Slru::default().label(), "SLRU");
    }

    /// Trait-contract conformance for every policy: insert/hit/evict/remove
    /// keep `len` consistent, eviction drains exactly the tracked set, and
    /// removed documents are never chosen as victims.
    #[test]
    fn conformance_lifecycle() {
        for kind in PolicyKind::ALL {
            let mut p = kind.instantiate();
            assert!(p.is_empty(), "{kind}");
            assert_eq!(p.evict(), None, "{kind}");

            for i in 0..10 {
                p.on_insert(doc(i), ByteSize::new(100 * (i + 1)));
            }
            assert_eq!(p.len(), 10, "{kind}");
            p.on_hit(doc(3), ByteSize::new(400));
            p.on_hit(doc(3), ByteSize::new(400));
            p.remove(doc(5));
            p.remove(doc(5)); // idempotent
            assert_eq!(p.len(), 9, "{kind}");

            let mut victims = Vec::new();
            while let Some(v) = p.evict() {
                victims.push(v.as_u64());
            }
            victims.sort_unstable();
            assert_eq!(
                victims,
                vec![0, 1, 2, 3, 4, 6, 7, 8, 9],
                "{kind}: eviction must drain exactly the tracked set"
            );
            assert!(p.is_empty(), "{kind}");
        }
    }

    #[test]
    fn parse_roundtrips_every_label() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(&kind.label()), Some(kind), "{kind}");
        }
        // Forgiving spellings.
        assert_eq!(
            PolicyKind::parse("GDStar(P)"),
            Some(PolicyKind::GdStar(CostModel::Packet))
        );
        assert_eq!(
            PolicyKind::parse("gds_1"),
            Some(PolicyKind::Gds(CostModel::Constant))
        );
        assert_eq!(PolicyKind::parse("lfu da"), Some(PolicyKind::LfuDa));
        assert_eq!(PolicyKind::parse(""), None);
        assert_eq!(PolicyKind::parse("gdq"), None);
    }

    #[test]
    fn priority_key_orders_by_value_then_tie() {
        let a = PriorityKey::new(1.0, 5);
        let b = PriorityKey::new(1.0, 6);
        let c = PriorityKey::new(2.0, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn instrumented_build_matches_plain_build_and_records_events() {
        use std::collections::HashSet;
        use webcache_obs::{PolicyProbe, Registry};
        use webcache_trace::ByteSize;

        for kind in PolicyKind::ALL {
            let registry = Registry::new();
            let probe = PolicyProbe::register(&registry, &kind.label());
            let mut plain = kind.build();
            let mut probed = kind.build_instrumented(probe);
            // Drive both instances with the same access sequence: the sink
            // must not perturb policy decisions.
            let mut tracked: HashSet<u64> = HashSet::new();
            for i in 0u64..400 {
                let slot = (i * 31) % 40;
                let d = webcache_trace::DocId::new(slot);
                let s = ByteSize::new(64 + (i * 97) % 4096);
                if tracked.insert(slot) {
                    plain.on_insert(d, s);
                    probed.on_insert(d, s);
                } else {
                    plain.on_hit(d, s);
                    probed.on_hit(d, s);
                }
                if i % 9 == 0 {
                    let a = plain.evict();
                    let b = probed.evict();
                    assert_eq!(a, b, "{kind} diverged at step {i}");
                    if let Some(v) = a {
                        tracked.remove(&v.as_u64());
                    }
                }
                assert_eq!(plain.len(), probed.len(), "{kind} at step {i}");
            }
            // Heap-backed policies must have reported operations; the
            // list-based ones drop the sink and report nothing.
            let heap_backed = !matches!(
                kind,
                PolicyKind::Lru
                    | PolicyKind::Fifo
                    | PolicyKind::Slru
                    | PolicyKind::LruTwo
                    | PolicyKind::Arc
                    | PolicyKind::S3Fifo
            );
            let text = registry.prometheus_text();
            let ops_reported = text
                .lines()
                .filter(|l| l.starts_with("webcache_heap_ops_total{"))
                .any(|l| !l.ends_with(" 0"));
            assert_eq!(
                ops_reported, heap_backed,
                "{kind}: heap-op metrics mismatch\n{text}"
            );
        }
    }
}
