//! S3-FIFO: Simple, Scalable, Scan-resistant FIFO queues.
//!
//! S3-FIFO (Yang et al., SOSP '23) replaces LRU's reordering with three
//! plain FIFO queues: a *small* probationary queue absorbing new
//! documents, a *main* queue holding documents that earned a hit while
//! probationary, and a *ghost* queue remembering recently evicted
//! one-timers so their quick return goes straight to main. Each resident
//! document carries a 2-bit access counter instead of a recency
//! position; eviction scans from the FIFO tail, demoting or reinserting
//! hot entries (a CLOCK-style second chance) and evicting cold ones.
//!
//! The original sizes the small queue at 10% of cache *entries*; web
//! documents vary widely in size, so here the small queue targets 10% of
//! resident *bytes* (the policy never learns the cache's capacity — the
//! trait has no such channel — so resident bytes is the observable
//! proxy). The ghost queue is bounded by the resident document count.
//!
//! All queues use the lazy-deletion generation idiom shared with
//! [`Slru`](super::Slru) and [`Arc`](super::Arc): state lives in a
//! per-slot vector, queue handles are (doc, generation) pairs, and stale
//! handles are skipped on pop. FIFO insertion order *is* the queue
//! order, so batching (`set_batched`) has nothing to amortize and stays
//! a no-op.

use std::collections::VecDeque;

use webcache_obs::{MetricsSink, Reason};
use webcache_trace::{ByteSize, DocId};

use super::{slot_entry, slot_of, ReplacementPolicy};

/// Per-slot location codes.
const NONE: u8 = 0;
const SMALL: u8 = 1;
const MAIN: u8 = 2;
const GHOST: u8 = 3;

/// Access counters saturate here (2 bits in the paper).
const FREQ_MAX: u8 = 3;

/// Per-slot state: (location, access count, generation, size in bytes).
type SlotState = (u8, u8, u64, u64);

const EMPTY: SlotState = (NONE, 0, 0, 0);

/// S3-FIFO replacement state. See the module-level documentation above.
///
/// `M` is the [`MetricsSink`] receiving eviction-reason events (queue
/// provenance: small or main, with the victim's 2-bit counter); the
/// default `()` compiles the instrumentation away entirely. S3-FIFO has
/// no heap, so it never emits heap-op events.
#[derive(Debug, Default)]
pub struct S3Fifo<M: MetricsSink = ()> {
    /// Front = newest. Entries are (doc, generation).
    small: VecDeque<(DocId, u64)>,
    main: VecDeque<(DocId, u64)>,
    ghost: VecDeque<(DocId, u64)>,
    state: Vec<SlotState>,
    small_count: usize,
    main_count: usize,
    ghost_count: usize,
    small_bytes: u64,
    main_bytes: u64,
    generation: u64,
    sink: M,
}

impl S3Fifo {
    /// Creates an empty S3-FIFO tracker.
    pub fn new() -> Self {
        S3Fifo::default()
    }
}

impl<M: MetricsSink> S3Fifo<M> {
    /// Like [`S3Fifo::new`], but routing eviction reasons into `sink`.
    pub fn with_sink(sink: M) -> Self {
        S3Fifo {
            small: VecDeque::new(),
            main: VecDeque::new(),
            ghost: VecDeque::new(),
            state: Vec::new(),
            small_count: 0,
            main_count: 0,
            ghost_count: 0,
            small_bytes: 0,
            main_bytes: 0,
            generation: 0,
            sink,
        }
    }

    fn state_of(&self, doc: DocId) -> SlotState {
        self.state.get(slot_of(doc)).copied().unwrap_or(EMPTY)
    }

    /// Stamps `doc` into a queue at the head. The caller maintains the
    /// counters.
    fn push(&mut self, doc: DocId, loc: u8, freq: u8, size: u64) {
        self.generation += 1;
        let entry = (doc, self.generation);
        match loc {
            SMALL => self.small.push_front(entry),
            MAIN => self.main.push_front(entry),
            GHOST => self.ghost.push_front(entry),
            _ => unreachable!("push to NONE"),
        }
        *slot_entry(&mut self.state, slot_of(doc), EMPTY) = (loc, freq, self.generation, size);
    }

    /// Pops the live tail entry of a queue, skipping stale handles.
    /// Returns (doc, freq, size).
    fn pop_live(
        queue: &mut VecDeque<(DocId, u64)>,
        state: &[SlotState],
        loc: u8,
    ) -> Option<(DocId, u8, u64)> {
        while let Some((doc, generation)) = queue.pop_back() {
            match state.get(slot_of(doc)) {
                Some(&(l, freq, g, size)) if l == loc && g == generation => {
                    return Some((doc, freq, size))
                }
                _ => {}
            }
        }
        None
    }

    fn clear_state(&mut self, doc: DocId) {
        if let Some(s) = self.state.get_mut(slot_of(doc)) {
            *s = EMPTY;
        }
    }

    /// Whether the next eviction should scan the small queue: small is
    /// above its 10%-of-resident-bytes target, or main is empty.
    fn evict_from_small(&self) -> bool {
        self.small_count > 0
            && (self.small_bytes * 10 > self.small_bytes + self.main_bytes || self.main_count == 0)
    }

    /// Drops ghost tail entries beyond the resident-count bound.
    fn trim_ghost(&mut self) {
        while self.ghost_count > self.small_count + self.main_count + 1 {
            let Some((doc, _, _)) = Self::pop_live(&mut self.ghost, &self.state, GHOST) else {
                break;
            };
            self.clear_state(doc);
            self.ghost_count -= 1;
        }
    }
}

impl<M: MetricsSink> ReplacementPolicy for S3Fifo<M> {
    fn label(&self) -> String {
        "S3-FIFO".to_owned()
    }

    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        let size = size.as_u64();
        match self.state_of(doc).0 {
            GHOST => {
                // A quick return after eviction: straight to main.
                self.ghost_count -= 1;
                self.push(doc, MAIN, 0, size);
                self.main_count += 1;
                self.main_bytes += size;
            }
            NONE => {
                self.push(doc, SMALL, 0, size);
                self.small_count += 1;
                self.small_bytes += size;
            }
            _ => unreachable!("insert of resident {doc}"),
        }
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        // A hit only bumps the 2-bit counter; queue order never changes.
        if let Some(s) = self.state.get_mut(slot_of(doc)) {
            if s.0 == SMALL || s.0 == MAIN {
                s.1 = (s.1 + 1).min(FREQ_MAX);
            }
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        loop {
            if self.evict_from_small() {
                let (doc, freq, size) = Self::pop_live(&mut self.small, &self.state, SMALL)?;
                self.small_count -= 1;
                self.small_bytes -= size;
                if freq > 0 {
                    // Earned a hit while probationary: promote to main
                    // (counter resets) and keep scanning.
                    self.push(doc, MAIN, 0, size);
                    self.main_count += 1;
                    self.main_bytes += size;
                    continue;
                }
                // Cold one-timer: evict, but remember it in ghost.
                self.push(doc, GHOST, 0, size);
                self.ghost_count += 1;
                self.trim_ghost();
                self.sink.evict_reason(Reason::s3_small(f64::from(freq)));
                return Some(doc);
            }
            if self.main_count > 0 {
                let (doc, freq, size) = Self::pop_live(&mut self.main, &self.state, MAIN)?;
                self.main_count -= 1;
                self.main_bytes -= size;
                if freq > 0 {
                    // Second chance: reinsert at the head, one credit
                    // spent.
                    self.push(doc, MAIN, freq - 1, size);
                    self.main_count += 1;
                    self.main_bytes += size;
                    continue;
                }
                // Main evictions are not ghosted: the document already
                // had its probationary chance.
                self.clear_state(doc);
                self.trim_ghost();
                self.sink.evict_reason(Reason::s3_main(f64::from(freq)));
                return Some(doc);
            }
            return None;
        }
    }

    fn remove(&mut self, doc: DocId) {
        let (loc, _, _, size) = self.state_of(doc);
        match loc {
            SMALL => {
                self.small_count -= 1;
                self.small_bytes -= size;
            }
            MAIN => {
                self.main_count -= 1;
                self.main_bytes -= size;
            }
            GHOST => self.ghost_count -= 1,
            _ => return,
        }
        self.clear_state(doc);
    }

    fn len(&self) -> usize {
        self.small_count + self.main_count
    }

    fn reserve_slots(&mut self, n: usize) {
        if self.state.len() < n {
            self.state.resize(n, EMPTY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz(n: u64) -> ByteSize {
        ByteSize::new(n)
    }

    #[test]
    fn one_timers_evict_in_fifo_order() {
        let mut p = S3Fifo::new();
        for i in 0..4 {
            p.on_insert(doc(i), sz(10));
        }
        let order: Vec<u64> = (0..4).map(|_| p.evict().unwrap().as_u64()).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn probationary_hit_promotes_to_main() {
        let mut p = S3Fifo::new();
        p.on_insert(doc(0), sz(10));
        p.on_hit(doc(0), sz(10));
        for i in 1..5 {
            p.on_insert(doc(i), sz(10));
        }
        // The scan drains the cold one-timers; doc 0 rides out the scan
        // in main and evicts last.
        let order: Vec<u64> = (0..5).map(|_| p.evict().unwrap().as_u64()).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 0]);
    }

    #[test]
    fn ghost_return_goes_straight_to_main() {
        let mut p = S3Fifo::new();
        p.on_insert(doc(0), sz(10));
        p.on_insert(doc(1), sz(10));
        assert_eq!(p.evict(), Some(doc(0)), "doc 0 to ghost");
        p.on_insert(doc(0), sz(10)); // ghost hit
        assert_eq!(p.main_count, 1, "ghost return bypasses small");
        assert_eq!(p.evict(), Some(doc(1)), "small still drains first");
        assert_eq!(p.evict(), Some(doc(0)));
    }

    #[test]
    fn main_hits_get_second_chances() {
        let mut p = S3Fifo::new();
        p.on_insert(doc(0), sz(10));
        p.on_hit(doc(0), sz(10)); // probationary hit: will promote
        p.on_insert(doc(1), sz(10));
        assert_eq!(p.evict(), Some(doc(1)), "cold one-timer goes first");
        p.on_hit(doc(0), sz(10)); // now a main hit: one credit
        p.on_insert(doc(2), sz(10));
        assert_eq!(p.evict(), Some(doc(2)), "small drains before main");
        // Doc 0's credit buys one reinsertion; the scan then evicts it.
        assert_eq!(p.evict(), Some(doc(0)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn remove_is_idempotent_and_clears_all_state() {
        let mut p = S3Fifo::new();
        for i in 0..6 {
            p.on_insert(doc(i), sz(100 * (i + 1)));
        }
        p.on_hit(doc(3), sz(400));
        p.remove(doc(5));
        p.remove(doc(5));
        p.remove(doc(99));
        assert_eq!(p.len(), 5);
        let mut drained = Vec::new();
        while let Some(v) = p.evict() {
            drained.push(v.as_u64());
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ghost_queue_stays_bounded() {
        let mut p = S3Fifo::new();
        for i in 0..10_000u64 {
            p.on_insert(doc(i), sz(10));
            if p.len() > 4 {
                p.evict();
            }
        }
        assert!(
            p.ghost_count <= p.len() + 1,
            "ghost leaked: {}",
            p.ghost_count
        );
    }

    #[test]
    fn eviction_terminates_with_all_hot_entries() {
        let mut p = S3Fifo::new();
        for i in 0..8 {
            p.on_insert(doc(i), sz(10));
            for _ in 0..5 {
                p.on_hit(doc(i), sz(10));
            }
        }
        // Every entry is saturated-hot; the scan must still converge.
        let mut drained = 0;
        while p.evict().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 8);
    }
}
