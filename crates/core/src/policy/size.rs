//! SIZE: evict the largest document first.
//!
//! The size-greedy baseline of Williams et al. — maximizes the *number* of
//! documents held and therefore the hit rate, at the expense of byte hit
//! rate. Ties between equally sized documents break towards the least
//! recently used.

use webcache_obs::{HeapOp, MetricsSink};
use webcache_trace::{ByteSize, DocId};

use super::{PriorityKey, ReplacementPolicy};
use crate::pqueue::DenseIndexedHeap;

/// SIZE replacement state. See the module-level documentation above.
///
/// `M` is the [`MetricsSink`] receiving heap-cost events; the default
/// `()` compiles the instrumentation away entirely.
#[derive(Debug, Default)]
pub struct SizeBased<M: MetricsSink = ()> {
    heap: DenseIndexedHeap<DocId, PriorityKey>,
    seq: u64,
    sink: M,
}

impl SizeBased {
    /// Creates an empty SIZE tracker.
    pub fn new() -> Self {
        SizeBased::default()
    }
}

impl<M: MetricsSink> SizeBased<M> {
    /// Like [`SizeBased::new`], but routing internal events into `sink`.
    pub fn with_sink(sink: M) -> Self {
        SizeBased {
            heap: DenseIndexedHeap::new(),
            seq: 0,
            sink,
        }
    }
}

impl<M: MetricsSink> ReplacementPolicy for SizeBased<M> {
    fn label(&self) -> String {
        "SIZE".to_owned()
    }

    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        self.seq += 1;
        // The heap pops the minimum key; negate the size so the largest
        // document has the smallest key.
        let cost = self
            .heap
            .insert(doc, PriorityKey::new(-size.as_f64(), self.seq));
        self.sink.heap_op(HeapOp::Insert, cost);
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        if self.heap.contains(doc) {
            // Refresh the tie-breaker so equal-size ties follow recency.
            let key = self.heap.key_of(doc).expect("contains checked");
            self.seq += 1;
            let cost = self.heap.update(
                doc,
                PriorityKey {
                    tie: self.seq,
                    ..key
                },
            );
            self.sink.heap_op(HeapOp::Update, cost);
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        let (doc, key, cost) = self.heap.pop_min_counted()?;
        self.sink.heap_op(HeapOp::PopMin, cost);
        // Keys are negated sizes; negate back for the audit record.
        self.sink
            .evict_reason(webcache_obs::Reason::size(-key.value.get()));
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        if let Some((_, cost)) = self.heap.remove_counted(doc) {
            self.sink.heap_op(HeapOp::Remove, cost);
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_slots(&mut self, n: usize) {
        self.heap.reserve(n);
    }

    fn set_batched(&mut self, enabled: bool) {
        self.heap.set_deferred(enabled);
    }

    fn flush_deferred(&mut self) {
        let _ = self.heap.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn evicts_largest_first() {
        let mut p = SizeBased::new();
        p.on_insert(doc(1), ByteSize::new(100));
        p.on_insert(doc(2), ByteSize::new(10_000));
        p.on_insert(doc(3), ByteSize::new(500));
        let order: Vec<u64> = std::iter::from_fn(|| p.evict().map(DocId::as_u64)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn equal_sizes_tie_break_by_recency() {
        let mut p = SizeBased::new();
        p.on_insert(doc(1), ByteSize::new(100));
        p.on_insert(doc(2), ByteSize::new(100));
        p.on_hit(doc(1), ByteSize::new(100));
        // doc 2 is now the least recently touched among equals.
        assert_eq!(p.evict(), Some(doc(2)));
        assert_eq!(p.evict(), Some(doc(1)));
    }

    #[test]
    fn hit_on_unknown_doc_is_ignored() {
        let mut p = SizeBased::new();
        p.on_hit(doc(9), ByteSize::new(1));
        assert_eq!(p.len(), 0);
    }
}
