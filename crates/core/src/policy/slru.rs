//! Segmented LRU.
//!
//! SLRU splits the recency order into a *probationary* and a *protected*
//! segment. Documents enter the probationary segment; a hit promotes a
//! document into the protected segment, whose capacity (counted in
//! documents here, as in the original disk-cache formulation) is bounded.
//! Overflowing the protected segment demotes its LRU document back to the
//! head of the probationary segment. Eviction always takes the
//! probationary LRU document.
//!
//! SLRU approximates frequency awareness with two bits of recency
//! history — cheaper than LFU-DA's heap, stronger than plain LRU against
//! the one-timer floods that dominate web traces (most documents in the
//! DFN/RTP workloads are referenced exactly once).

use std::collections::VecDeque;

use webcache_trace::{ByteSize, DocId};

use super::{slot_entry, slot_of, ReplacementPolicy};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probationary,
    Protected,
}

impl Segment {
    fn code(self) -> u8 {
        match self {
            Segment::Probationary => 1,
            Segment::Protected => 2,
        }
    }
}

/// Per-slot segment code: 0 = not tracked, 1 = probationary, 2 = protected.
const GONE: u8 = 0;

/// SLRU replacement state. See the module-level documentation above.
///
/// Both segments are kept as recency-ordered deques with lazy deletion
/// (stale handles are skipped on pop), plus a per-slot live-state vector
/// and running live counters (so `len`/`protected_len` are O(1)).
#[derive(Debug)]
pub struct Slru {
    /// Front = most recent. Entries are (doc, generation).
    probationary: VecDeque<(DocId, u64)>,
    protected: VecDeque<(DocId, u64)>,
    /// Per document slot: (segment code, generation of its live entry).
    state: Vec<(u8, u64)>,
    /// Live documents across both segments.
    live: usize,
    /// Live documents in the protected segment.
    protected_live: usize,
    /// Protected-segment capacity in documents.
    protected_capacity: usize,
    generation: u64,
}

impl Slru {
    /// Default protected-segment capacity.
    pub const DEFAULT_PROTECTED_CAPACITY: usize = 4_096;

    /// Creates an SLRU tracker with the default protected capacity.
    pub fn new() -> Self {
        Slru::with_protected_capacity(Self::DEFAULT_PROTECTED_CAPACITY)
    }

    /// Creates an SLRU tracker whose protected segment holds at most
    /// `capacity` documents.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_protected_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "protected capacity must be positive");
        Slru {
            probationary: VecDeque::new(),
            protected: VecDeque::new(),
            state: Vec::new(),
            live: 0,
            protected_live: 0,
            protected_capacity: capacity,
            generation: 0,
        }
    }

    /// Number of live documents in the protected segment.
    pub fn protected_len(&self) -> usize {
        self.protected_live
    }

    fn state_of(&self, doc: DocId) -> (u8, u64) {
        self.state.get(slot_of(doc)).copied().unwrap_or((GONE, 0))
    }

    /// Clears a live document's state, maintaining the counters.
    fn forget(&mut self, doc: DocId) {
        let slot = slot_of(doc);
        if self.state[slot].0 == Segment::Protected.code() {
            self.protected_live -= 1;
        }
        self.state[slot] = (GONE, 0);
        self.live -= 1;
    }

    fn push(&mut self, doc: DocId, segment: Segment) {
        self.generation += 1;
        let entry = (doc, self.generation);
        match segment {
            Segment::Probationary => self.probationary.push_front(entry),
            Segment::Protected => self.protected.push_front(entry),
        }
        let state = slot_entry(&mut self.state, slot_of(doc), (GONE, 0));
        let old = state.0;
        *state = (segment.code(), self.generation);
        if old == GONE {
            self.live += 1;
        }
        if old != Segment::Protected.code() && segment == Segment::Protected {
            self.protected_live += 1;
        } else if old == Segment::Protected.code() && segment != Segment::Protected {
            self.protected_live -= 1;
        }
    }

    /// Pops the live LRU entry of a queue, skipping stale handles.
    fn pop_live(
        queue: &mut VecDeque<(DocId, u64)>,
        state: &[(u8, u64)],
        segment: Segment,
    ) -> Option<DocId> {
        while let Some((doc, generation)) = queue.pop_back() {
            if state.get(slot_of(doc)).copied() == Some((segment.code(), generation)) {
                return Some(doc);
            }
        }
        None
    }

    fn demote_protected_overflow(&mut self) {
        while self.protected_live > self.protected_capacity {
            let Some(victim) = Self::pop_live(&mut self.protected, &self.state, Segment::Protected)
            else {
                break;
            };
            // Demotion: back to the *head* of the probationary segment.
            self.push(victim, Segment::Probationary);
        }
    }
}

impl Default for Slru {
    fn default() -> Self {
        Slru::new()
    }
}

impl ReplacementPolicy for Slru {
    fn label(&self) -> String {
        "SLRU".to_owned()
    }

    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        debug_assert!(self.state_of(doc).0 == GONE, "double insert of {doc}");
        self.push(doc, Segment::Probationary);
    }

    fn on_hit(&mut self, doc: DocId, _size: ByteSize) {
        if self.state_of(doc).0 != GONE {
            self.push(doc, Segment::Protected);
            self.demote_protected_overflow();
        }
    }

    fn evict(&mut self) -> Option<DocId> {
        if let Some(doc) =
            Self::pop_live(&mut self.probationary, &self.state, Segment::Probationary)
        {
            self.forget(doc);
            return Some(doc);
        }
        // Probationary empty: fall back to the protected LRU.
        let doc = Self::pop_live(&mut self.protected, &self.state, Segment::Protected)?;
        self.forget(doc);
        Some(doc)
    }

    fn remove(&mut self, doc: DocId) {
        // Lazy deletion: clear the live state; stale queue handles are
        // skipped during pops.
        if self.state_of(doc).0 != GONE {
            self.forget(doc);
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn reserve_slots(&mut self, n: usize) {
        if self.state.len() < n {
            self.state.resize(n, (GONE, 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::new(1)
    }

    #[test]
    fn one_timers_evict_before_reused_documents() {
        let mut p = Slru::new();
        p.on_insert(doc(1), sz());
        p.on_hit(doc(1), sz()); // promoted
        for i in 2..6 {
            p.on_insert(doc(i), sz());
        }
        // Probationary order (LRU first): 2, 3, 4, 5. Doc 1 is protected.
        let order: Vec<u64> = (0..4).map(|_| p.evict().unwrap().as_u64()).collect();
        assert_eq!(order, vec![2, 3, 4, 5]);
        assert_eq!(p.evict(), Some(doc(1)), "protected falls back last");
    }

    #[test]
    fn protected_overflow_demotes_to_probationary() {
        let mut p = Slru::with_protected_capacity(2);
        for i in 1..=3 {
            p.on_insert(doc(i), sz());
            p.on_hit(doc(i), sz()); // promote all three
        }
        assert_eq!(p.protected_len(), 2, "capacity bounds the protected set");
        // Doc 1 was demoted to probationary head, so it evicts first.
        assert_eq!(p.evict(), Some(doc(1)));
    }

    #[test]
    fn repeated_hits_keep_document_protected() {
        let mut p = Slru::with_protected_capacity(1);
        p.on_insert(doc(1), sz());
        p.on_hit(doc(1), sz());
        p.on_hit(doc(1), sz());
        p.on_hit(doc(1), sz());
        assert_eq!(p.len(), 1);
        assert_eq!(p.protected_len(), 1);
        assert_eq!(p.evict(), Some(doc(1)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut p = Slru::new();
        for i in 0..10 {
            p.on_insert(doc(i), sz());
        }
        p.on_hit(doc(3), sz());
        p.remove(doc(0));
        p.remove(doc(3));
        p.remove(doc(99)); // unknown: no-op
        assert_eq!(p.len(), 8);
        let mut drained = Vec::new();
        while let Some(v) = p.evict() {
            drained.push(v.as_u64());
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn reinsert_after_eviction_starts_probationary() {
        let mut p = Slru::new();
        p.on_insert(doc(1), sz());
        p.on_hit(doc(1), sz());
        assert_eq!(p.evict(), Some(doc(1)));
        p.on_insert(doc(1), sz());
        assert_eq!(p.protected_len(), 0, "history does not survive eviction");
    }

    #[test]
    #[should_panic(expected = "protected capacity")]
    fn zero_protected_capacity_rejected() {
        let _ = Slru::with_protected_capacity(0);
    }
}
