//! An indexed binary min-heap with `O(log n)` key updates.
//!
//! The GreedyDual family and LFU-DA need a priority queue supporting
//! *extract-min* and *arbitrary key change on hit*. [`IndexedHeap`] keeps a
//! position map from item to heap slot, so updating or removing any item is
//! `O(log n)` without lazy-deletion garbage.

use std::collections::HashMap;
use std::hash::Hash;

/// A binary min-heap over `(key, item)` pairs with by-item addressing.
///
/// `I` is the item (e.g. a document id), `K` the priority key. The heap
/// orders by `K`; ties should be broken inside `K` itself (e.g. with a
/// sequence number) if deterministic extraction order matters.
///
/// ```
/// use webcache_core::pqueue::IndexedHeap;
///
/// let mut heap: IndexedHeap<&str, u64> = IndexedHeap::new();
/// heap.insert("a", 5);
/// heap.insert("b", 2);
/// heap.update("a", 1);
/// assert_eq!(heap.pop_min(), Some(("a", 1)));
/// assert_eq!(heap.pop_min(), Some(("b", 2)));
/// assert!(heap.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IndexedHeap<I, K> {
    /// Heap-ordered `(key, item)` pairs.
    slots: Vec<(K, I)>,
    /// Item -> index into `slots`.
    positions: HashMap<I, usize>,
}

impl<I, K> Default for IndexedHeap<I, K>
where
    I: Copy + Eq + Hash,
    K: Ord + Copy,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<I, K> IndexedHeap<I, K>
where
    I: Copy + Eq + Hash,
    K: Ord + Copy,
{
    /// Creates an empty heap.
    pub fn new() -> Self {
        IndexedHeap {
            slots: Vec::new(),
            positions: HashMap::new(),
        }
    }

    /// Number of items in the heap.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `item` is present.
    pub fn contains(&self, item: I) -> bool {
        self.positions.contains_key(&item)
    }

    /// The key currently associated with `item`, if present.
    pub fn key_of(&self, item: I) -> Option<K> {
        self.positions.get(&item).map(|&i| self.slots[i].0)
    }

    /// Inserts a new item.
    ///
    /// # Panics
    ///
    /// Panics if `item` is already present — use [`IndexedHeap::update`] to
    /// change an existing key, or [`IndexedHeap::upsert`] when presence is
    /// unknown.
    pub fn insert(&mut self, item: I, key: K) {
        assert!(
            !self.positions.contains_key(&item),
            "item already present; use update/upsert"
        );
        let idx = self.slots.len();
        self.slots.push((key, item));
        self.positions.insert(item, idx);
        self.sift_up(idx);
    }

    /// Changes the key of an existing item.
    ///
    /// # Panics
    ///
    /// Panics if `item` is not present.
    pub fn update(&mut self, item: I, key: K) {
        let &idx = self
            .positions
            .get(&item)
            .expect("update of item not in heap");
        let old = self.slots[idx].0;
        self.slots[idx].0 = key;
        if key < old {
            self.sift_up(idx);
        } else if key > old {
            self.sift_down(idx);
        }
    }

    /// Inserts `item` or updates its key if already present.
    pub fn upsert(&mut self, item: I, key: K) {
        if self.contains(item) {
            self.update(item, key);
        } else {
            self.insert(item, key);
        }
    }

    /// The minimum `(item, key)` without removing it.
    pub fn peek_min(&self) -> Option<(I, K)> {
        self.slots.first().map(|&(k, i)| (i, k))
    }

    /// Removes and returns the minimum `(item, key)`.
    pub fn pop_min(&mut self) -> Option<(I, K)> {
        let (key, item) = *self.slots.first()?;
        self.remove_at(0);
        Some((item, key))
    }

    /// Removes `item`, returning its key if it was present.
    pub fn remove(&mut self, item: I) -> Option<K> {
        let &idx = self.positions.get(&item)?;
        let key = self.slots[idx].0;
        self.remove_at(idx);
        Some(key)
    }

    /// Removes every item, keeping allocations.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.positions.clear();
    }

    fn remove_at(&mut self, idx: usize) {
        let last = self.slots.len() - 1;
        self.slots.swap(idx, last);
        let (_, removed) = self.slots.pop().expect("slot exists");
        self.positions.remove(&removed);
        if idx < self.slots.len() {
            self.positions.insert(self.slots[idx].1, idx);
            // The swapped-in element may need to move either way.
            self.sift_up(idx);
            self.sift_down(idx);
        }
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.slots[idx].0 >= self.slots[parent].0 {
                break;
            }
            self.swap(idx, parent);
            idx = parent;
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        loop {
            let left = 2 * idx + 1;
            let right = left + 1;
            let mut smallest = idx;
            if left < self.slots.len() && self.slots[left].0 < self.slots[smallest].0 {
                smallest = left;
            }
            if right < self.slots.len() && self.slots[right].0 < self.slots[smallest].0 {
                smallest = right;
            }
            if smallest == idx {
                break;
            }
            self.swap(idx, smallest);
            idx = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.positions.insert(self.slots[a].1, a);
        self.positions.insert(self.slots[b].1, b);
    }

    /// Checks the heap invariant and position map; used by tests.
    #[cfg(test)]
    fn check_invariants(&self) {
        for idx in 1..self.slots.len() {
            let parent = (idx - 1) / 2;
            assert!(
                self.slots[parent].0 <= self.slots[idx].0,
                "heap order violated at {idx}"
            );
        }
        assert_eq!(self.positions.len(), self.slots.len());
        for (i, &(_, item)) in self.slots.iter().enumerate() {
            assert_eq!(self.positions[&item], i, "position map stale");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let mut h = IndexedHeap::new();
        for (i, k) in [(1u64, 50u64), (2, 10), (3, 30), (4, 20), (5, 40)] {
            h.insert(i, k);
            h.check_invariants();
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.peek_min(), Some((2, 10)));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop_min().map(|(i, _)| i)).collect();
        assert_eq!(order, vec![2, 4, 3, 5, 1]);
    }

    #[test]
    fn update_moves_items_both_ways() {
        let mut h = IndexedHeap::new();
        h.insert("a", 10);
        h.insert("b", 20);
        h.insert("c", 30);
        h.update("c", 5); // decrease-key
        h.check_invariants();
        assert_eq!(h.peek_min(), Some(("c", 5)));
        h.update("c", 25); // increase-key
        h.check_invariants();
        assert_eq!(h.peek_min(), Some(("a", 10)));
        assert_eq!(h.key_of("c"), Some(25));
    }

    #[test]
    fn upsert_inserts_then_updates() {
        let mut h = IndexedHeap::new();
        h.upsert(7u32, 1u32);
        h.upsert(7, 9);
        assert_eq!(h.len(), 1);
        assert_eq!(h.key_of(7), Some(9));
    }

    #[test]
    fn remove_arbitrary_items() {
        let mut h = IndexedHeap::new();
        for i in 0u64..20 {
            h.insert(i, (i * 7) % 13);
        }
        assert_eq!(h.remove(10), Some((10 * 7) % 13));
        assert_eq!(h.remove(10), None, "double remove yields None");
        h.check_invariants();
        assert_eq!(h.len(), 19);
        assert!(!h.contains(10));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut h = IndexedHeap::new();
        h.insert(1u8, 1u8);
        h.insert(1, 2);
    }

    #[test]
    #[should_panic(expected = "not in heap")]
    fn update_missing_panics() {
        let mut h: IndexedHeap<u8, u8> = IndexedHeap::new();
        h.update(1, 2);
    }

    #[test]
    fn clear_resets() {
        let mut h = IndexedHeap::new();
        h.insert(1u8, 1u8);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
    }

    /// Randomized differential test against a sorted-map reference model.
    #[test]
    fn differential_against_btreemap() {
        use std::collections::BTreeMap;

        // Simple deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        let mut heap: IndexedHeap<u32, (u32, u32)> = IndexedHeap::new();
        let mut model: BTreeMap<(u32, u32), u32> = BTreeMap::new(); // key -> item
        let mut keys: HashMap<u32, (u32, u32)> = HashMap::new();
        let mut tie = 0u32;

        for step in 0..5000 {
            match next() % 4 {
                0 | 1 => {
                    // insert or update a random item with a fresh unique key
                    let item = next() % 64;
                    let key = (next() % 1000, tie);
                    tie += 1;
                    if let Some(old) = keys.insert(item, key) {
                        model.remove(&old);
                        heap.update(item, key);
                    } else {
                        heap.insert(item, key);
                    }
                    model.insert(key, item);
                }
                2 => {
                    // pop-min must match the model's first entry
                    let expected = model.iter().next().map(|(&k, &i)| (i, k));
                    let got = heap.pop_min();
                    assert_eq!(got, expected, "step {step}");
                    if let Some((item, key)) = got {
                        model.remove(&key);
                        keys.remove(&item);
                    }
                }
                _ => {
                    // remove a random item
                    let item = next() % 64;
                    let got = heap.remove(item);
                    let expected = keys.remove(&item);
                    assert_eq!(got, expected, "step {step}");
                    if let Some(key) = expected {
                        model.remove(&key);
                    }
                }
            }
            assert_eq!(heap.len(), model.len(), "step {step}");
        }
        heap.check_invariants();
    }
}
