//! An indexed 4-ary min-heap with `O(log n)` key updates.
//!
//! The GreedyDual family and LFU-DA need a priority queue supporting
//! *extract-min* and *arbitrary key change on hit*. [`IndexedHeap`] keeps a
//! position index from item to heap slot, so updating or removing any item
//! is `O(log n)` without lazy-deletion garbage.
//!
//! The position index is pluggable through [`PositionIndex`]: the default
//! [`HashPositions`] works for any hashable item, while [`DensePositions`]
//! backs the index with a plain `Vec<u32>` for items that are small dense
//! integers (interned document slots). Every sift step updates the
//! position of the swapped pair, so on the simulator hot path — millions
//! of sift steps per run — replacing the two hash-map writes per swap
//! with two vector stores is the single largest win of the dense layout.
//!
//! The heap is 4-ary rather than binary: extract-min dominates the
//! simulator's heap traffic (every eviction pops), and a fan-out of four
//! halves the tree depth a pop's sift-down must walk while keeping all
//! four children of a node in one or two cache lines. With every key
//! made unique by a tie-breaking sequence number, the extraction order
//! is the sorted key order regardless of arity, so the fan-out is purely
//! a layout choice — it cannot change simulation results.
//!
//! For batched replay the heap additionally supports a **deferred
//! maintenance** mode ([`IndexedHeap::set_deferred`]): key changes are
//! buffered in an append-only pending list, repeated touches to the same
//! item coalesce to the latest key, and the sift work is paid once per
//! touched item when the batch is [`flushed`](IndexedHeap::flush) — or
//! lazily, when a pop actually needs the order. A heap entry superseded
//! by a buffered key acts as a tombstone: [`IndexedHeap::pop_min`]
//! discards it if it surfaces at the root, and a conservative lower bound
//! over the buffered keys (the *pending floor*) proves when the root can
//! be popped without flushing at all. Because callers key ties with a
//! unique sequence number, the extraction order depends only on the
//! latest key per item, never on when sifts physically happen — deferred
//! and eager mode therefore pop identical sequences.

use std::fmt::Debug;
use std::hash::Hash;

use webcache_obs::HeapCost;
use webcache_trace::fxhash::FxHashMap;
use webcache_trace::DocId;

/// Heap fan-out. See the module docs for why 4 beats 2 here.
const ARITY: usize = 4;

/// Reverse index from heap item to its current slot position.
///
/// Implementations must behave like a map from `I` to `usize`: `set`
/// overwrites, `remove` is idempotent, `clear` empties while keeping
/// allocations.
pub trait PositionIndex<I>: Debug + Default {
    /// The position of `item`, if tracked.
    fn get(&self, item: I) -> Option<usize>;

    /// Records `item` at `pos`.
    fn set(&mut self, item: I, pos: usize);

    /// Forgets `item`, returning its last position if it was tracked.
    fn remove(&mut self, item: I) -> Option<usize>;

    /// Forgets every item, keeping allocations.
    fn clear(&mut self);

    /// Pre-sizes the index for `n` distinct items. Optional.
    fn reserve(&mut self, n: usize) {
        let _ = n;
    }
}

/// The general-purpose position index: a hash map (fx-hashed — heap items
/// are trusted small keys, never attacker-controlled input).
#[derive(Debug, Clone)]
pub struct HashPositions<I> {
    map: FxHashMap<I, usize>,
}

impl<I> Default for HashPositions<I> {
    fn default() -> Self {
        HashPositions {
            map: FxHashMap::default(),
        }
    }
}

impl<I: Copy + Eq + Hash + Debug> PositionIndex<I> for HashPositions<I> {
    #[inline]
    fn get(&self, item: I) -> Option<usize> {
        self.map.get(&item).copied()
    }

    #[inline]
    fn set(&mut self, item: I, pos: usize) {
        self.map.insert(item, pos);
    }

    #[inline]
    fn remove(&mut self, item: I) -> Option<usize> {
        self.map.remove(&item)
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn reserve(&mut self, n: usize) {
        self.map.reserve(n);
    }
}

/// Items usable with [`DensePositions`]: small dense non-negative integers.
pub trait DenseItem: Copy {
    /// The dense index of this item. Indices should be contiguous from 0;
    /// the position vector grows to the largest index seen.
    fn dense_index(self) -> usize;
}

impl DenseItem for u32 {
    #[inline]
    fn dense_index(self) -> usize {
        self as usize
    }
}

impl DenseItem for u64 {
    #[inline]
    fn dense_index(self) -> usize {
        self as usize
    }
}

impl DenseItem for usize {
    #[inline]
    fn dense_index(self) -> usize {
        self
    }
}

impl DenseItem for DocId {
    #[inline]
    fn dense_index(self) -> usize {
        self.as_u64() as usize
    }
}

/// Sentinel marking an untracked slot in [`DensePositions`].
const ABSENT: u32 = u32::MAX;

/// A `Vec<u32>`-backed position index for dense items.
///
/// Position lookups and updates are single vector accesses. Heap
/// positions are stored as `u32` (a heap cannot meaningfully exceed
/// 4 billion live entries); `u32::MAX` marks absence.
#[derive(Debug, Clone, Default)]
pub struct DensePositions {
    positions: Vec<u32>,
}

impl DensePositions {
    fn slot(&mut self, index: usize) -> &mut u32 {
        if index >= self.positions.len() {
            self.positions.resize(index + 1, ABSENT);
        }
        &mut self.positions[index]
    }
}

impl<I: DenseItem + Debug> PositionIndex<I> for DensePositions {
    #[inline]
    fn get(&self, item: I) -> Option<usize> {
        match self.positions.get(item.dense_index()) {
            Some(&pos) if pos != ABSENT => Some(pos as usize),
            _ => None,
        }
    }

    #[inline]
    fn set(&mut self, item: I, pos: usize) {
        debug_assert!(pos < ABSENT as usize, "heap position overflows u32");
        *self.slot(item.dense_index()) = pos as u32;
    }

    #[inline]
    fn remove(&mut self, item: I) -> Option<usize> {
        match self.positions.get_mut(item.dense_index()) {
            Some(pos) if *pos != ABSENT => {
                let old = *pos as usize;
                *pos = ABSENT;
                Some(old)
            }
            _ => None,
        }
    }

    fn clear(&mut self) {
        // Keep the allocation; the vector is reusable across runs.
        self.positions.fill(ABSENT);
    }

    fn reserve(&mut self, n: usize) {
        if n > self.positions.len() {
            self.positions.resize(n, ABSENT);
        }
    }
}

/// A 4-ary min-heap over `(key, item)` pairs with by-item addressing.
///
/// `I` is the item (e.g. a document id), `K` the priority key, `X` the
/// [`PositionIndex`] implementation. The heap orders by `K`; ties should
/// be broken inside `K` itself (e.g. with a sequence number) if
/// deterministic extraction order matters.
///
/// ```
/// use webcache_core::pqueue::IndexedHeap;
///
/// let mut heap: IndexedHeap<&str, u64> = IndexedHeap::new();
/// heap.insert("a", 5);
/// heap.insert("b", 2);
/// heap.update("a", 1);
/// assert_eq!(heap.pop_min(), Some(("a", 1)));
/// assert_eq!(heap.pop_min(), Some(("b", 2)));
/// assert!(heap.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IndexedHeap<I, K, X = HashPositions<I>> {
    /// Heap-ordered `(key, item)` pairs.
    slots: Vec<(K, I)>,
    /// Item -> index into `slots`.
    positions: X,
    /// Whether key changes are buffered instead of sifted eagerly.
    deferred: bool,
    /// Coalesced pending upserts in first-touch order; empty in eager mode.
    pending: Vec<(I, K)>,
    /// Item -> index into `pending`.
    pending_pos: X,
    /// Pending items with no entry in `slots` (fresh inserts).
    pending_new: usize,
    /// Entries in `slots` superseded by a pending key (tombstones).
    stale: usize,
    /// Conservative lower bound over the pending keys. Coalescing may
    /// leave it below the true pending minimum; it only ever errs toward
    /// an unnecessary flush, never a wrong pop.
    pending_floor: Option<K>,
}

/// An [`IndexedHeap`] whose position index is a plain vector — for items
/// that are dense interned slots.
pub type DenseIndexedHeap<I, K> = IndexedHeap<I, K, DensePositions>;

impl<I, K, X> Default for IndexedHeap<I, K, X>
where
    I: Copy,
    K: Ord + Copy,
    X: PositionIndex<I>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<I, K, X> IndexedHeap<I, K, X>
where
    I: Copy,
    K: Ord + Copy,
    X: PositionIndex<I>,
{
    /// Creates an empty heap.
    pub fn new() -> Self {
        IndexedHeap {
            slots: Vec::new(),
            positions: X::default(),
            deferred: false,
            pending: Vec::new(),
            pending_pos: X::default(),
            pending_new: 0,
            stale: 0,
            pending_floor: None,
        }
    }

    /// Pre-sizes the heap for `n` items.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n);
        self.positions.reserve(n);
        self.pending_pos.reserve(n);
    }

    /// Number of items in the heap, buffered inserts included. A
    /// tombstoned item has exactly one `slots` entry (holding its stale
    /// key) plus a pending overlay, so it counts once either way.
    pub fn len(&self) -> usize {
        self.slots.len() + self.pending_new
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `item` is present.
    pub fn contains(&self, item: I) -> bool {
        self.positions.get(item).is_some() || self.pending_pos.get(item).is_some()
    }

    /// The key currently associated with `item`, if present. A buffered
    /// key shadows the (stale) one still sitting in the heap.
    pub fn key_of(&self, item: I) -> Option<K> {
        if !self.pending.is_empty() {
            if let Some(i) = self.pending_pos.get(item) {
                return Some(self.pending[i].1);
            }
        }
        self.positions.get(item).map(|i| self.slots[i].0)
    }

    /// Inserts a new item, returning the measured sift cost.
    ///
    /// The [`HeapCost`] is deliberately not `#[must_use]`: statement-position
    /// callers drop it and the accounting code is eliminated.
    ///
    /// # Panics
    ///
    /// Panics if `item` is already present — use [`IndexedHeap::update`] to
    /// change an existing key, or [`IndexedHeap::upsert`] when presence is
    /// unknown.
    pub fn insert(&mut self, item: I, key: K) -> HeapCost {
        if self.deferred {
            // Inserts apply eagerly even in deferred mode: a fresh entry
            // lands on a leaf, where the (typically large) key settles
            // after a single failed parent comparison, and keeping it
            // out of the pending buffer keeps the pending floor high —
            // fewer forced flushes on pop. Buffering would save a sift
            // only if the item were re-touched before the next flush,
            // which coalescing measurements show is rare; the live
            // item→key map — all that extraction order depends on — is
            // identical either way.
            assert!(
                self.pending_pos.get(item).is_none(),
                "item already present; use update/upsert"
            );
        }
        assert!(
            self.positions.get(item).is_none(),
            "item already present; use update/upsert"
        );
        let idx = self.slots.len();
        self.slots.push((key, item));
        self.positions.set(item, idx);
        self.sift_up(idx)
    }

    /// Changes the key of an existing item, returning the sift cost.
    ///
    /// # Panics
    ///
    /// Panics if `item` is not present.
    pub fn update(&mut self, item: I, key: K) -> HeapCost {
        if self.deferred {
            if self.try_leaf_increase(item, key) {
                return HeapCost::ZERO;
            }
            assert!(self.contains(item), "update of item not in heap");
            self.defer(item, key);
            return HeapCost::ZERO;
        }
        let idx = self
            .positions
            .get(item)
            .expect("update of item not in heap");
        let old = self.slots[idx].0;
        self.slots[idx].0 = key;
        if key < old {
            self.sift_up(idx)
        } else if key > old {
            self.sift_down(idx)
        } else {
            HeapCost::ZERO
        }
    }

    /// Inserts `item` or updates its key if already present, returning the
    /// sift cost.
    pub fn upsert(&mut self, item: I, key: K) -> HeapCost {
        if self.deferred {
            if self.try_leaf_increase(item, key) {
                return HeapCost::ZERO;
            }
            if !self.contains(item) {
                return self.insert(item, key);
            }
            self.defer(item, key);
            return HeapCost::ZERO;
        }
        if self.contains(item) {
            self.update(item, key)
        } else {
            self.insert(item, key)
        }
    }

    /// The minimum `(item, key)` without removing it.
    ///
    /// With buffered key changes outstanding this is a linear scan; only
    /// diagnostics peek mid-batch, the hot path pops.
    pub fn peek_min(&self) -> Option<(I, K)> {
        if self.pending.is_empty() {
            return self.slots.first().map(|&(k, i)| (i, k));
        }
        let mut best: Option<(I, K)> = None;
        for &(key, item) in &self.slots {
            if self.pending_pos.get(item).is_none() && best.is_none_or(|(_, b)| key < b) {
                best = Some((item, key));
            }
        }
        for &(item, key) in &self.pending {
            if best.is_none_or(|(_, b)| key < b) {
                best = Some((item, key));
            }
        }
        best
    }

    /// Removes and returns the minimum `(item, key)`.
    pub fn pop_min(&mut self) -> Option<(I, K)> {
        self.pop_min_counted().map(|(item, key, _)| (item, key))
    }

    /// [`IndexedHeap::pop_min`], also returning the measured sift cost.
    pub fn pop_min_counted(&mut self) -> Option<(I, K, HeapCost)> {
        let mut cost = HeapCost::ZERO;
        loop {
            let Some(&(key, item)) = self.slots.first() else {
                if self.pending.is_empty() {
                    return None;
                }
                cost += self.flush();
                continue;
            };
            if !self.pending.is_empty() {
                if let Some(pi) = self.pending_pos.get(item) {
                    // Tombstone: a newer key for this item is buffered.
                    // Apply it in place — one sift-down settles the item
                    // at its final position and retires the pending
                    // entry, instead of discarding the root now and
                    // paying a second sift to re-insert it at flush.
                    let (_, new_key) = self.pending.swap_remove(pi);
                    self.pending_pos.remove(item);
                    if pi < self.pending.len() {
                        self.pending_pos.set(self.pending[pi].0, pi);
                    }
                    self.stale -= 1;
                    // Keep the floor exact: leaving a retired floor key
                    // stale-low would force a needless flush on the
                    // very next pop. The min over the buffer only moves
                    // when the retired key *was* the floor, so the
                    // O(pending) rescan is paid exactly then — for any
                    // higher key the floor stands untouched.
                    self.retire_from_floor(new_key);
                    self.slots[0].0 = new_key;
                    cost += self.sift_down(0);
                    continue;
                }
                if let Some(floor) = self.pending_floor {
                    // A buffered key at or below the root could be the
                    // true minimum: apply the batch and re-examine.
                    if floor <= key {
                        cost += self.flush();
                        continue;
                    }
                }
            }
            cost += self.remove_at(0);
            return Some((item, key, cost));
        }
    }

    /// Removes `item`, returning its key if it was present.
    pub fn remove(&mut self, item: I) -> Option<K> {
        self.remove_counted(item).map(|(key, _)| key)
    }

    /// [`IndexedHeap::remove`], also returning the measured sift cost.
    pub fn remove_counted(&mut self, item: I) -> Option<(K, HeapCost)> {
        if !self.pending.is_empty() {
            if let Some(pi) = self.pending_pos.remove(item) {
                let (_, key) = self.pending.swap_remove(pi);
                if pi < self.pending.len() {
                    self.pending_pos.set(self.pending[pi].0, pi);
                }
                let mut cost = HeapCost::ZERO;
                if let Some(idx) = self.positions.get(item) {
                    // Also drop the superseded heap entry.
                    cost = self.remove_at(idx);
                    self.stale -= 1;
                } else {
                    self.pending_new -= 1;
                }
                self.retire_from_floor(key);
                return Some((key, cost));
            }
        }
        let idx = self.positions.get(item)?;
        let key = self.slots[idx].0;
        let cost = self.remove_at(idx);
        Some((key, cost))
    }

    /// Removes every item, keeping allocations. Buffered changes are
    /// discarded, not applied; deferred mode itself stays as set.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.positions.clear();
        self.pending.clear();
        self.pending_pos.clear();
        self.pending_new = 0;
        self.stale = 0;
        self.pending_floor = None;
    }

    /// Switches deferred (batched) maintenance on or off. Turning it off
    /// applies any buffered changes first, so the heap is always eagerly
    /// consistent outside deferred mode.
    pub fn set_deferred(&mut self, deferred: bool) {
        if !deferred {
            self.flush();
        }
        self.deferred = deferred;
    }

    /// Whether deferred maintenance is active.
    pub fn is_deferred(&self) -> bool {
        self.deferred
    }

    /// Number of buffered key changes awaiting a flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Applies every buffered key change in first-touch order, compacting
    /// tombstones back into live entries, and returns the total sift cost.
    ///
    /// Flushing is idempotent and safe in any mode; pops trigger it
    /// automatically when the pending floor no longer proves the root is
    /// the true minimum.
    pub fn flush(&mut self) -> HeapCost {
        let mut cost = HeapCost::ZERO;
        for i in 0..self.pending.len() {
            let (item, key) = self.pending[i];
            self.pending_pos.remove(item);
            cost += match self.positions.get(item) {
                Some(idx) => {
                    let old = self.slots[idx].0;
                    self.slots[idx].0 = key;
                    if key < old {
                        self.sift_up(idx)
                    } else if key > old {
                        self.sift_down(idx)
                    } else {
                        HeapCost::ZERO
                    }
                }
                None => {
                    let idx = self.slots.len();
                    self.slots.push((key, item));
                    self.positions.set(item, idx);
                    self.sift_up(idx)
                }
            };
        }
        self.pending.clear();
        self.pending_new = 0;
        self.stale = 0;
        self.pending_floor = None;
        cost
    }

    /// Deferred-mode fast path: raising the key of an item that sits on
    /// a heap *leaf* (and has no buffered entry shadowing it) cannot
    /// violate the heap order — `parent ≤ old ≤ new` — so the key is
    /// written in place for free, with no sift and no pending entry.
    /// Three quarters of a 4-ary heap's items are leaves and the
    /// GreedyDual family only ever raises keys on a hit, so this turns
    /// most buffered touches into `O(1)` writes. Applying a change
    /// eagerly is always equivalent to buffering it: extraction order
    /// depends only on the latest key per item.
    fn try_leaf_increase(&mut self, item: I, key: K) -> bool {
        let Some(idx) = self.positions.get(item) else {
            return false;
        };
        if self.pending_pos.get(item).is_some() {
            // The slots key is stale; only the pending entry may coalesce.
            return false;
        }
        if key < self.slots[idx].0 {
            return false;
        }
        self.slots[idx].0 = key;
        if ARITY * idx + 1 < self.slots.len() {
            self.sift_down(idx);
        }
        true
    }

    /// Buffers `key` for `item`, coalescing with any earlier buffered key.
    fn defer(&mut self, item: I, key: K) {
        match self.pending_pos.get(item) {
            Some(i) => self.pending[i].1 = key,
            None => {
                self.pending_pos.set(item, self.pending.len());
                self.pending.push((item, key));
                if self.positions.get(item).is_some() {
                    self.stale += 1;
                } else {
                    self.pending_new += 1;
                }
            }
        }
        self.pending_floor = Some(match self.pending_floor {
            Some(floor) if floor <= key => floor,
            _ => key,
        });
    }

    /// Restores the pending floor after an entry with `retired` was
    /// removed from the buffer. The floor is a lower bound on every
    /// buffered key, so a retired key strictly above it cannot have been
    /// the minimum and the floor stands; only `retired <= floor` (the
    /// retired entry was the floor, or the floor had gone stale-low
    /// through coalescing) forces the exact rescan.
    fn retire_from_floor(&mut self, retired: K) {
        match self.pending_floor {
            Some(floor) if retired > floor => {}
            _ => self.pending_floor = self.pending.iter().map(|&(_, k)| k).min(),
        }
    }

    fn remove_at(&mut self, idx: usize) -> HeapCost {
        let last = self.slots.len() - 1;
        self.slots.swap(idx, last);
        let (_, removed) = self.slots.pop().expect("slot exists");
        self.positions.remove(removed);
        if idx < self.slots.len() {
            self.positions.set(self.slots[idx].1, idx);
            // The swapped-in element may need to move either way.
            self.sift_up(idx) + self.sift_down(idx)
        } else {
            HeapCost::ZERO
        }
    }

    // Both sifts are hole-based: the moving element is held out in a
    // register and written back once at its final slot, so every level
    // costs one slot write and one position write instead of a swap's
    // two of each. The resulting array and the counted costs are
    // identical to the classical swap formulation.

    fn sift_up(&mut self, mut idx: usize) -> HeapCost {
        let mut cost = HeapCost::ZERO;
        let moving = self.slots[idx];
        while idx > 0 {
            let parent = (idx - 1) / ARITY;
            cost.comparisons += 1;
            if moving.0 >= self.slots[parent].0 {
                break;
            }
            self.slots[idx] = self.slots[parent];
            self.positions.set(self.slots[idx].1, idx);
            cost.sift_steps += 1;
            idx = parent;
        }
        if cost.sift_steps > 0 {
            self.slots[idx] = moving;
            self.positions.set(moving.1, idx);
        }
        cost
    }

    fn sift_down(&mut self, mut idx: usize) -> HeapCost {
        let mut cost = HeapCost::ZERO;
        let len = self.slots.len();
        let moving = self.slots[idx];
        loop {
            let first = ARITY * idx + 1;
            if first >= len {
                break;
            }
            let mut smallest = idx;
            let mut smallest_key = moving.0;
            for child in first..(first + ARITY).min(len) {
                cost.comparisons += 1;
                if self.slots[child].0 < smallest_key {
                    smallest = child;
                    smallest_key = self.slots[child].0;
                }
            }
            if smallest == idx {
                break;
            }
            self.slots[idx] = self.slots[smallest];
            self.positions.set(self.slots[idx].1, idx);
            cost.sift_steps += 1;
            idx = smallest;
        }
        if cost.sift_steps > 0 {
            self.slots[idx] = moving;
            self.positions.set(moving.1, idx);
        }
        cost
    }

    /// Checks the heap invariant and position index; used by tests.
    #[cfg(test)]
    fn check_invariants(&self) {
        for idx in 1..self.slots.len() {
            let parent = (idx - 1) / ARITY;
            assert!(
                self.slots[parent].0 <= self.slots[idx].0,
                "heap order violated at {idx}"
            );
        }
        for (i, &(_, item)) in self.slots.iter().enumerate() {
            assert_eq!(self.positions.get(item), Some(i), "position index stale");
        }
        let mut stale = 0;
        for (i, &(item, key)) in self.pending.iter().enumerate() {
            assert_eq!(self.pending_pos.get(item), Some(i), "pending index stale");
            if self.positions.get(item).is_some() {
                stale += 1;
            }
            let floor = self.pending_floor.expect("pending entries imply a floor");
            assert!(floor <= key, "floor above a pending key");
        }
        assert_eq!(self.stale, stale, "tombstone count drifted");
        assert_eq!(
            self.pending.len(),
            self.stale + self.pending_new,
            "pending accounting drifted"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let mut h: IndexedHeap<u64, u64> = IndexedHeap::new();
        for (i, k) in [(1u64, 50u64), (2, 10), (3, 30), (4, 20), (5, 40)] {
            h.insert(i, k);
            h.check_invariants();
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.peek_min(), Some((2, 10)));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop_min().map(|(i, _)| i)).collect();
        assert_eq!(order, vec![2, 4, 3, 5, 1]);
    }

    #[test]
    fn update_moves_items_both_ways() {
        let mut h: IndexedHeap<&str, i32> = IndexedHeap::new();
        h.insert("a", 10);
        h.insert("b", 20);
        h.insert("c", 30);
        h.update("c", 5); // decrease-key
        h.check_invariants();
        assert_eq!(h.peek_min(), Some(("c", 5)));
        h.update("c", 25); // increase-key
        h.check_invariants();
        assert_eq!(h.peek_min(), Some(("a", 10)));
        assert_eq!(h.key_of("c"), Some(25));
    }

    #[test]
    fn upsert_inserts_then_updates() {
        let mut h: IndexedHeap<u32, u32> = IndexedHeap::new();
        h.upsert(7u32, 1u32);
        h.upsert(7, 9);
        assert_eq!(h.len(), 1);
        assert_eq!(h.key_of(7), Some(9));
    }

    #[test]
    fn remove_arbitrary_items() {
        let mut h: IndexedHeap<u64, u64> = IndexedHeap::new();
        for i in 0u64..20 {
            h.insert(i, (i * 7) % 13);
        }
        assert_eq!(h.remove(10), Some((10 * 7) % 13));
        assert_eq!(h.remove(10), None, "double remove yields None");
        h.check_invariants();
        assert_eq!(h.len(), 19);
        assert!(!h.contains(10));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut h: IndexedHeap<u8, u8> = IndexedHeap::new();
        h.insert(1u8, 1u8);
        h.insert(1, 2);
    }

    #[test]
    #[should_panic(expected = "not in heap")]
    fn update_missing_panics() {
        let mut h: IndexedHeap<u8, u8> = IndexedHeap::new();
        h.update(1, 2);
    }

    #[test]
    fn clear_resets() {
        let mut h: IndexedHeap<u8, u8> = IndexedHeap::new();
        h.insert(1u8, 1u8);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn dense_positions_grow_clear_and_reuse() {
        let mut h: DenseIndexedHeap<u32, u32> = IndexedHeap::new();
        h.reserve(8);
        for i in 0..8u32 {
            h.insert(i, 100 - i);
        }
        h.check_invariants();
        assert_eq!(h.pop_min(), Some((7, 93)));
        // Sparse-ish index far beyond the reservation still works.
        h.insert(5_000, 1);
        assert_eq!(h.peek_min(), Some((5_000, 1)));
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(0), "clear must forget dense positions");
        // Reuse after clear: same items, fresh keys.
        for i in 0..8u32 {
            h.insert(i, i);
        }
        h.check_invariants();
        assert_eq!(h.pop_min(), Some((0, 0)));
        assert_eq!(h.len(), 7);
    }

    #[test]
    fn sift_costs_are_measured() {
        let mut h: IndexedHeap<u32, u32> = IndexedHeap::new();
        // First insert lands at the root: no parent to compare against.
        assert_eq!(h.insert(0, 10), HeapCost::ZERO);
        // 5 beats the root: one comparison, one swap.
        assert_eq!(
            h.insert(1, 5),
            HeapCost {
                sift_steps: 1,
                comparisons: 1
            }
        );
        // 20 stays put: one (failed) comparison, no swap.
        assert_eq!(
            h.insert(2, 20),
            HeapCost {
                sift_steps: 0,
                comparisons: 1
            }
        );
        let (item, key, cost) = h.pop_min_counted().unwrap();
        assert_eq!((item, key), (1, 5));
        assert!(cost.comparisons >= 1, "{cost:?}");
        // An equal-key update does not sift at all.
        assert_eq!(h.update(0, 10), HeapCost::ZERO);
        let (_, cost) = h.remove_counted(2).unwrap();
        assert_eq!(h.remove_counted(2), None);
        let _ = cost;
        h.check_invariants();
    }

    /// Randomized differential test against a sorted-map reference model,
    /// run over both position-index variants.
    #[test]
    fn differential_against_btreemap() {
        differential_model_run::<HashPositions<u32>>();
        differential_model_run::<DensePositions>();
    }

    fn differential_model_run<X: PositionIndex<u32>>() {
        use std::collections::BTreeMap;
        use std::collections::HashMap;

        // Simple deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        let mut heap: IndexedHeap<u32, (u32, u32), X> = IndexedHeap::new();
        let mut model: BTreeMap<(u32, u32), u32> = BTreeMap::new(); // key -> item
        let mut keys: HashMap<u32, (u32, u32)> = HashMap::new();
        let mut tie = 0u32;

        for step in 0..5000 {
            match next() % 4 {
                0 | 1 => {
                    // insert or update a random item with a fresh unique key
                    let item = next() % 64;
                    let key = (next() % 1000, tie);
                    tie += 1;
                    if let Some(old) = keys.insert(item, key) {
                        model.remove(&old);
                        heap.update(item, key);
                    } else {
                        heap.insert(item, key);
                    }
                    model.insert(key, item);
                }
                2 => {
                    // pop-min must match the model's first entry
                    let expected = model.iter().next().map(|(&k, &i)| (i, k));
                    let got = heap.pop_min();
                    assert_eq!(got, expected, "step {step}");
                    if let Some((item, key)) = got {
                        model.remove(&key);
                        keys.remove(&item);
                    }
                }
                _ => {
                    // remove a random item
                    let item = next() % 64;
                    let got = heap.remove(item);
                    let expected = keys.remove(&item);
                    assert_eq!(got, expected, "step {step}");
                    if let Some(key) = expected {
                        model.remove(&key);
                    }
                }
            }
            assert_eq!(heap.len(), model.len(), "step {step}");
        }
        heap.check_invariants();

        // `clear()` reuse: replay a short prefix after clearing and check
        // the two variants still agree with the model discipline.
        heap.clear();
        assert!(heap.is_empty());
        for i in 0..32u32 {
            heap.insert(i, (i % 7, i));
        }
        let mut popped = Vec::new();
        while let Some((item, _)) = heap.pop_min() {
            popped.push(item);
        }
        let mut sorted = popped.clone();
        sorted.sort_by_key(|&i| (i % 7, i));
        assert_eq!(popped, sorted, "post-clear ordering must be exact");
    }

    #[test]
    fn deferred_applies_increases_in_place_and_coalesces_decreases() {
        let mut h: DenseIndexedHeap<u32, (u32, u32)> = IndexedHeap::new();
        h.insert(0, (10, 0));
        h.insert(1, (20, 1));
        h.set_deferred(true);
        // Raising a key can never violate the heap order from below, so
        // repeated touches apply in place — nothing accumulates in the
        // pending buffer.
        h.upsert(0, (30, 2));
        h.upsert(0, (40, 3));
        h.upsert(0, (50, 4));
        assert_eq!(h.pending_len(), 0, "increases must not buffer");
        assert_eq!(h.key_of(0), Some((50, 4)));
        assert_eq!(h.len(), 2);
        // Inserts land eagerly too: a fresh leaf entry is cheap and
        // keeping it out of the buffer keeps the pending floor high.
        h.upsert(2, (5, 5));
        assert_eq!(h.pending_len(), 0, "inserts must not buffer");
        assert_eq!(h.len(), 3);
        assert!(h.contains(2));
        // Decreases buffer, and repeated touches coalesce into a single
        // pending entry holding only the last key.
        h.update(1, (18, 6));
        h.update(1, (12, 7));
        assert_eq!(h.pending_len(), 1);
        assert_eq!(h.key_of(1), Some((12, 7)), "pending key shadows stale");
        // Pops see the coalesced state.
        assert_eq!(h.pop_min(), Some((2, (5, 5))));
        assert_eq!(h.pop_min(), Some((1, (12, 7))));
        assert_eq!(h.pop_min(), Some((0, (50, 4))));
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn deferred_pop_retires_root_tombstone_in_place_without_flushing() {
        let mut h: DenseIndexedHeap<u32, (u32, u32)> = IndexedHeap::new();
        h.insert(0, (10, 0)); // root
        h.insert(1, (20, 1));
        h.insert(2, (30, 2));
        h.set_deferred(true);
        // Decrease the root's key: its heap entry is now a tombstone
        // shadowed by the buffered (5, 3).
        h.update(0, (5, 3));
        // A second buffered decrease that no early pop reaches: it must
        // survive the next pop untouched, proving the root tombstone
        // was retired in place rather than by flushing the buffer.
        h.update(2, (25, 4));
        assert_eq!(h.pending_len(), 2);
        assert_eq!(h.len(), 3);
        assert_eq!(h.key_of(0), Some((5, 3)));
        // The pop finds the tombstoned root, applies its buffered key in
        // place (one sift) and returns it; item 2 stays buffered.
        assert_eq!(h.pop_min(), Some((0, (5, 3))));
        assert_eq!(h.pending_len(), 1, "tombstone retirement must not flush");
        assert_eq!(h.key_of(2), Some((25, 4)));
        // The floor (25) proves the next root (20) pops without a flush.
        assert_eq!(h.pop_min(), Some((1, (20, 1))));
        assert_eq!(h.pending_len(), 1, "floor-guarded pop must not flush");
        assert_eq!(h.pop_min(), Some((2, (25, 4))));
        assert!(h.is_empty());
    }

    #[test]
    fn deferred_remove_covers_pending_and_tombstoned_items() {
        let mut h: DenseIndexedHeap<u32, (u32, u32)> = IndexedHeap::new();
        h.insert(0, (10, 0));
        h.insert(1, (20, 1));
        h.set_deferred(true);
        // Tombstoned item (buffered decrease): remove returns the
        // *newest* key and drops the stale heap entry too.
        h.update(1, (5, 2));
        assert_eq!(h.pending_len(), 1);
        assert_eq!(h.remove(1), Some((5, 2)));
        assert!(!h.contains(1));
        assert_eq!(h.pending_len(), 0);
        // Eagerly applied entries remove through the ordinary path.
        h.upsert(0, (99, 3));
        assert_eq!(h.remove(0), Some((99, 3)));
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
        h.check_invariants();
    }

    #[test]
    fn set_deferred_off_flushes() {
        let mut h: DenseIndexedHeap<u32, (u32, u32)> = IndexedHeap::new();
        h.set_deferred(true);
        h.upsert(3, (30, 0));
        h.upsert(4, (40, 1));
        h.update(4, (25, 2)); // buffered decrease
        assert_eq!(h.pending_len(), 1);
        h.set_deferred(false);
        assert_eq!(h.pending_len(), 0);
        assert_eq!(h.len(), 2);
        assert_eq!(h.peek_min(), Some((4, (25, 2))));
        h.check_invariants();
    }

    /// The central equivalence: a deferred heap driven by the same
    /// operation stream as an eager one pops identical sequences,
    /// regardless of when flushes physically happen. Keys carry a unique
    /// tie-breaker, as on the simulator hot path.
    #[test]
    fn deferred_matches_eager_under_random_workload() {
        let mut state = 0x9E3779B9_7F4A7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        let mut eager: DenseIndexedHeap<u32, (u32, u32)> = IndexedHeap::new();
        let mut lazy: DenseIndexedHeap<u32, (u32, u32)> = IndexedHeap::new();
        lazy.set_deferred(true);
        let mut tie = 0u32;

        for step in 0..20_000 {
            match next() % 8 {
                // Narrow key range so pending floors frequently undercut
                // the root and force mid-stream flushes.
                0..=4 => {
                    let item = next() % 48;
                    let key = (next() % 64, tie);
                    tie += 1;
                    eager.upsert(item, key);
                    lazy.upsert(item, key);
                }
                5 => {
                    assert_eq!(lazy.pop_min(), eager.pop_min(), "step {step}");
                }
                6 => {
                    let item = next() % 48;
                    assert_eq!(lazy.remove(item), eager.remove(item), "step {step}");
                }
                _ => {
                    let item = next() % 48;
                    assert_eq!(lazy.key_of(item), eager.key_of(item), "step {step}");
                    assert_eq!(lazy.contains(item), eager.contains(item), "step {step}");
                    assert_eq!(lazy.len(), eager.len(), "step {step}");
                    assert_eq!(lazy.peek_min(), eager.peek_min(), "step {step}");
                    if next() % 4 == 0 {
                        lazy.flush();
                        lazy.check_invariants();
                    }
                }
            }
        }
        lazy.check_invariants();
        while let Some(got) = lazy.pop_min() {
            assert_eq!(Some(got), eager.pop_min(), "drain order");
        }
        assert!(eager.is_empty() && lazy.is_empty());
    }
}
