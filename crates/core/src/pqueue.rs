//! An indexed binary min-heap with `O(log n)` key updates.
//!
//! The GreedyDual family and LFU-DA need a priority queue supporting
//! *extract-min* and *arbitrary key change on hit*. [`IndexedHeap`] keeps a
//! position index from item to heap slot, so updating or removing any item
//! is `O(log n)` without lazy-deletion garbage.
//!
//! The position index is pluggable through [`PositionIndex`]: the default
//! [`HashPositions`] works for any hashable item, while [`DensePositions`]
//! backs the index with a plain `Vec<u32>` for items that are small dense
//! integers (interned document slots). Every sift step updates the
//! position of the swapped pair, so on the simulator hot path — millions
//! of sift steps per run — replacing the two hash-map writes per swap
//! with two vector stores is the single largest win of the dense layout.

use std::fmt::Debug;
use std::hash::Hash;

use webcache_obs::HeapCost;
use webcache_trace::fxhash::FxHashMap;
use webcache_trace::DocId;

/// Reverse index from heap item to its current slot position.
///
/// Implementations must behave like a map from `I` to `usize`: `set`
/// overwrites, `remove` is idempotent, `clear` empties while keeping
/// allocations.
pub trait PositionIndex<I>: Debug + Default {
    /// The position of `item`, if tracked.
    fn get(&self, item: I) -> Option<usize>;

    /// Records `item` at `pos`.
    fn set(&mut self, item: I, pos: usize);

    /// Forgets `item`, returning its last position if it was tracked.
    fn remove(&mut self, item: I) -> Option<usize>;

    /// Forgets every item, keeping allocations.
    fn clear(&mut self);

    /// Pre-sizes the index for `n` distinct items. Optional.
    fn reserve(&mut self, n: usize) {
        let _ = n;
    }
}

/// The general-purpose position index: a hash map (fx-hashed — heap items
/// are trusted small keys, never attacker-controlled input).
#[derive(Debug, Clone)]
pub struct HashPositions<I> {
    map: FxHashMap<I, usize>,
}

impl<I> Default for HashPositions<I> {
    fn default() -> Self {
        HashPositions {
            map: FxHashMap::default(),
        }
    }
}

impl<I: Copy + Eq + Hash + Debug> PositionIndex<I> for HashPositions<I> {
    #[inline]
    fn get(&self, item: I) -> Option<usize> {
        self.map.get(&item).copied()
    }

    #[inline]
    fn set(&mut self, item: I, pos: usize) {
        self.map.insert(item, pos);
    }

    #[inline]
    fn remove(&mut self, item: I) -> Option<usize> {
        self.map.remove(&item)
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn reserve(&mut self, n: usize) {
        self.map.reserve(n);
    }
}

/// Items usable with [`DensePositions`]: small dense non-negative integers.
pub trait DenseItem: Copy {
    /// The dense index of this item. Indices should be contiguous from 0;
    /// the position vector grows to the largest index seen.
    fn dense_index(self) -> usize;
}

impl DenseItem for u32 {
    #[inline]
    fn dense_index(self) -> usize {
        self as usize
    }
}

impl DenseItem for u64 {
    #[inline]
    fn dense_index(self) -> usize {
        self as usize
    }
}

impl DenseItem for usize {
    #[inline]
    fn dense_index(self) -> usize {
        self
    }
}

impl DenseItem for DocId {
    #[inline]
    fn dense_index(self) -> usize {
        self.as_u64() as usize
    }
}

/// Sentinel marking an untracked slot in [`DensePositions`].
const ABSENT: u32 = u32::MAX;

/// A `Vec<u32>`-backed position index for dense items.
///
/// Position lookups and updates are single vector accesses. Heap
/// positions are stored as `u32` (a heap cannot meaningfully exceed
/// 4 billion live entries); `u32::MAX` marks absence.
#[derive(Debug, Clone, Default)]
pub struct DensePositions {
    positions: Vec<u32>,
}

impl DensePositions {
    fn slot(&mut self, index: usize) -> &mut u32 {
        if index >= self.positions.len() {
            self.positions.resize(index + 1, ABSENT);
        }
        &mut self.positions[index]
    }
}

impl<I: DenseItem + Debug> PositionIndex<I> for DensePositions {
    #[inline]
    fn get(&self, item: I) -> Option<usize> {
        match self.positions.get(item.dense_index()) {
            Some(&pos) if pos != ABSENT => Some(pos as usize),
            _ => None,
        }
    }

    #[inline]
    fn set(&mut self, item: I, pos: usize) {
        debug_assert!(pos < ABSENT as usize, "heap position overflows u32");
        *self.slot(item.dense_index()) = pos as u32;
    }

    #[inline]
    fn remove(&mut self, item: I) -> Option<usize> {
        match self.positions.get_mut(item.dense_index()) {
            Some(pos) if *pos != ABSENT => {
                let old = *pos as usize;
                *pos = ABSENT;
                Some(old)
            }
            _ => None,
        }
    }

    fn clear(&mut self) {
        // Keep the allocation; the vector is reusable across runs.
        self.positions.fill(ABSENT);
    }

    fn reserve(&mut self, n: usize) {
        if n > self.positions.len() {
            self.positions.resize(n, ABSENT);
        }
    }
}

/// A binary min-heap over `(key, item)` pairs with by-item addressing.
///
/// `I` is the item (e.g. a document id), `K` the priority key, `X` the
/// [`PositionIndex`] implementation. The heap orders by `K`; ties should
/// be broken inside `K` itself (e.g. with a sequence number) if
/// deterministic extraction order matters.
///
/// ```
/// use webcache_core::pqueue::IndexedHeap;
///
/// let mut heap: IndexedHeap<&str, u64> = IndexedHeap::new();
/// heap.insert("a", 5);
/// heap.insert("b", 2);
/// heap.update("a", 1);
/// assert_eq!(heap.pop_min(), Some(("a", 1)));
/// assert_eq!(heap.pop_min(), Some(("b", 2)));
/// assert!(heap.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IndexedHeap<I, K, X = HashPositions<I>> {
    /// Heap-ordered `(key, item)` pairs.
    slots: Vec<(K, I)>,
    /// Item -> index into `slots`.
    positions: X,
}

/// An [`IndexedHeap`] whose position index is a plain vector — for items
/// that are dense interned slots.
pub type DenseIndexedHeap<I, K> = IndexedHeap<I, K, DensePositions>;

impl<I, K, X> Default for IndexedHeap<I, K, X>
where
    I: Copy,
    K: Ord + Copy,
    X: PositionIndex<I>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<I, K, X> IndexedHeap<I, K, X>
where
    I: Copy,
    K: Ord + Copy,
    X: PositionIndex<I>,
{
    /// Creates an empty heap.
    pub fn new() -> Self {
        IndexedHeap {
            slots: Vec::new(),
            positions: X::default(),
        }
    }

    /// Pre-sizes the heap for `n` items.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n);
        self.positions.reserve(n);
    }

    /// Number of items in the heap.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `item` is present.
    pub fn contains(&self, item: I) -> bool {
        self.positions.get(item).is_some()
    }

    /// The key currently associated with `item`, if present.
    pub fn key_of(&self, item: I) -> Option<K> {
        self.positions.get(item).map(|i| self.slots[i].0)
    }

    /// Inserts a new item, returning the measured sift cost.
    ///
    /// The [`HeapCost`] is deliberately not `#[must_use]`: statement-position
    /// callers drop it and the accounting code is eliminated.
    ///
    /// # Panics
    ///
    /// Panics if `item` is already present — use [`IndexedHeap::update`] to
    /// change an existing key, or [`IndexedHeap::upsert`] when presence is
    /// unknown.
    pub fn insert(&mut self, item: I, key: K) -> HeapCost {
        assert!(
            self.positions.get(item).is_none(),
            "item already present; use update/upsert"
        );
        let idx = self.slots.len();
        self.slots.push((key, item));
        self.positions.set(item, idx);
        self.sift_up(idx)
    }

    /// Changes the key of an existing item, returning the sift cost.
    ///
    /// # Panics
    ///
    /// Panics if `item` is not present.
    pub fn update(&mut self, item: I, key: K) -> HeapCost {
        let idx = self
            .positions
            .get(item)
            .expect("update of item not in heap");
        let old = self.slots[idx].0;
        self.slots[idx].0 = key;
        if key < old {
            self.sift_up(idx)
        } else if key > old {
            self.sift_down(idx)
        } else {
            HeapCost::ZERO
        }
    }

    /// Inserts `item` or updates its key if already present, returning the
    /// sift cost.
    pub fn upsert(&mut self, item: I, key: K) -> HeapCost {
        if self.contains(item) {
            self.update(item, key)
        } else {
            self.insert(item, key)
        }
    }

    /// The minimum `(item, key)` without removing it.
    pub fn peek_min(&self) -> Option<(I, K)> {
        self.slots.first().map(|&(k, i)| (i, k))
    }

    /// Removes and returns the minimum `(item, key)`.
    pub fn pop_min(&mut self) -> Option<(I, K)> {
        self.pop_min_counted().map(|(item, key, _)| (item, key))
    }

    /// [`IndexedHeap::pop_min`], also returning the measured sift cost.
    pub fn pop_min_counted(&mut self) -> Option<(I, K, HeapCost)> {
        let (key, item) = *self.slots.first()?;
        let cost = self.remove_at(0);
        Some((item, key, cost))
    }

    /// Removes `item`, returning its key if it was present.
    pub fn remove(&mut self, item: I) -> Option<K> {
        self.remove_counted(item).map(|(key, _)| key)
    }

    /// [`IndexedHeap::remove`], also returning the measured sift cost.
    pub fn remove_counted(&mut self, item: I) -> Option<(K, HeapCost)> {
        let idx = self.positions.get(item)?;
        let key = self.slots[idx].0;
        let cost = self.remove_at(idx);
        Some((key, cost))
    }

    /// Removes every item, keeping allocations.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.positions.clear();
    }

    fn remove_at(&mut self, idx: usize) -> HeapCost {
        let last = self.slots.len() - 1;
        self.slots.swap(idx, last);
        let (_, removed) = self.slots.pop().expect("slot exists");
        self.positions.remove(removed);
        if idx < self.slots.len() {
            self.positions.set(self.slots[idx].1, idx);
            // The swapped-in element may need to move either way.
            self.sift_up(idx) + self.sift_down(idx)
        } else {
            HeapCost::ZERO
        }
    }

    fn sift_up(&mut self, mut idx: usize) -> HeapCost {
        let mut cost = HeapCost::ZERO;
        while idx > 0 {
            let parent = (idx - 1) / 2;
            cost.comparisons += 1;
            if self.slots[idx].0 >= self.slots[parent].0 {
                break;
            }
            self.swap(idx, parent);
            cost.sift_steps += 1;
            idx = parent;
        }
        cost
    }

    fn sift_down(&mut self, mut idx: usize) -> HeapCost {
        let mut cost = HeapCost::ZERO;
        loop {
            let left = 2 * idx + 1;
            let right = left + 1;
            let mut smallest = idx;
            if left < self.slots.len() {
                cost.comparisons += 1;
                if self.slots[left].0 < self.slots[smallest].0 {
                    smallest = left;
                }
            }
            if right < self.slots.len() {
                cost.comparisons += 1;
                if self.slots[right].0 < self.slots[smallest].0 {
                    smallest = right;
                }
            }
            if smallest == idx {
                break;
            }
            self.swap(idx, smallest);
            cost.sift_steps += 1;
            idx = smallest;
        }
        cost
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.positions.set(self.slots[a].1, a);
        self.positions.set(self.slots[b].1, b);
    }

    /// Checks the heap invariant and position index; used by tests.
    #[cfg(test)]
    fn check_invariants(&self) {
        for idx in 1..self.slots.len() {
            let parent = (idx - 1) / 2;
            assert!(
                self.slots[parent].0 <= self.slots[idx].0,
                "heap order violated at {idx}"
            );
        }
        for (i, &(_, item)) in self.slots.iter().enumerate() {
            assert_eq!(self.positions.get(item), Some(i), "position index stale");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let mut h: IndexedHeap<u64, u64> = IndexedHeap::new();
        for (i, k) in [(1u64, 50u64), (2, 10), (3, 30), (4, 20), (5, 40)] {
            h.insert(i, k);
            h.check_invariants();
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.peek_min(), Some((2, 10)));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop_min().map(|(i, _)| i)).collect();
        assert_eq!(order, vec![2, 4, 3, 5, 1]);
    }

    #[test]
    fn update_moves_items_both_ways() {
        let mut h: IndexedHeap<&str, i32> = IndexedHeap::new();
        h.insert("a", 10);
        h.insert("b", 20);
        h.insert("c", 30);
        h.update("c", 5); // decrease-key
        h.check_invariants();
        assert_eq!(h.peek_min(), Some(("c", 5)));
        h.update("c", 25); // increase-key
        h.check_invariants();
        assert_eq!(h.peek_min(), Some(("a", 10)));
        assert_eq!(h.key_of("c"), Some(25));
    }

    #[test]
    fn upsert_inserts_then_updates() {
        let mut h: IndexedHeap<u32, u32> = IndexedHeap::new();
        h.upsert(7u32, 1u32);
        h.upsert(7, 9);
        assert_eq!(h.len(), 1);
        assert_eq!(h.key_of(7), Some(9));
    }

    #[test]
    fn remove_arbitrary_items() {
        let mut h: IndexedHeap<u64, u64> = IndexedHeap::new();
        for i in 0u64..20 {
            h.insert(i, (i * 7) % 13);
        }
        assert_eq!(h.remove(10), Some((10 * 7) % 13));
        assert_eq!(h.remove(10), None, "double remove yields None");
        h.check_invariants();
        assert_eq!(h.len(), 19);
        assert!(!h.contains(10));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut h: IndexedHeap<u8, u8> = IndexedHeap::new();
        h.insert(1u8, 1u8);
        h.insert(1, 2);
    }

    #[test]
    #[should_panic(expected = "not in heap")]
    fn update_missing_panics() {
        let mut h: IndexedHeap<u8, u8> = IndexedHeap::new();
        h.update(1, 2);
    }

    #[test]
    fn clear_resets() {
        let mut h: IndexedHeap<u8, u8> = IndexedHeap::new();
        h.insert(1u8, 1u8);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn dense_positions_grow_clear_and_reuse() {
        let mut h: DenseIndexedHeap<u32, u32> = IndexedHeap::new();
        h.reserve(8);
        for i in 0..8u32 {
            h.insert(i, 100 - i);
        }
        h.check_invariants();
        assert_eq!(h.pop_min(), Some((7, 93)));
        // Sparse-ish index far beyond the reservation still works.
        h.insert(5_000, 1);
        assert_eq!(h.peek_min(), Some((5_000, 1)));
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(0), "clear must forget dense positions");
        // Reuse after clear: same items, fresh keys.
        for i in 0..8u32 {
            h.insert(i, i);
        }
        h.check_invariants();
        assert_eq!(h.pop_min(), Some((0, 0)));
        assert_eq!(h.len(), 7);
    }

    #[test]
    fn sift_costs_are_measured() {
        let mut h: IndexedHeap<u32, u32> = IndexedHeap::new();
        // First insert lands at the root: no parent to compare against.
        assert_eq!(h.insert(0, 10), HeapCost::ZERO);
        // 5 beats the root: one comparison, one swap.
        assert_eq!(
            h.insert(1, 5),
            HeapCost {
                sift_steps: 1,
                comparisons: 1
            }
        );
        // 20 stays put: one (failed) comparison, no swap.
        assert_eq!(
            h.insert(2, 20),
            HeapCost {
                sift_steps: 0,
                comparisons: 1
            }
        );
        let (item, key, cost) = h.pop_min_counted().unwrap();
        assert_eq!((item, key), (1, 5));
        assert!(cost.comparisons >= 1, "{cost:?}");
        // An equal-key update does not sift at all.
        assert_eq!(h.update(0, 10), HeapCost::ZERO);
        let (_, cost) = h.remove_counted(2).unwrap();
        assert_eq!(h.remove_counted(2), None);
        let _ = cost;
        h.check_invariants();
    }

    /// Randomized differential test against a sorted-map reference model,
    /// run over both position-index variants.
    #[test]
    fn differential_against_btreemap() {
        differential_model_run::<HashPositions<u32>>();
        differential_model_run::<DensePositions>();
    }

    fn differential_model_run<X: PositionIndex<u32>>() {
        use std::collections::BTreeMap;
        use std::collections::HashMap;

        // Simple deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        let mut heap: IndexedHeap<u32, (u32, u32), X> = IndexedHeap::new();
        let mut model: BTreeMap<(u32, u32), u32> = BTreeMap::new(); // key -> item
        let mut keys: HashMap<u32, (u32, u32)> = HashMap::new();
        let mut tie = 0u32;

        for step in 0..5000 {
            match next() % 4 {
                0 | 1 => {
                    // insert or update a random item with a fresh unique key
                    let item = next() % 64;
                    let key = (next() % 1000, tie);
                    tie += 1;
                    if let Some(old) = keys.insert(item, key) {
                        model.remove(&old);
                        heap.update(item, key);
                    } else {
                        heap.insert(item, key);
                    }
                    model.insert(key, item);
                }
                2 => {
                    // pop-min must match the model's first entry
                    let expected = model.iter().next().map(|(&k, &i)| (i, k));
                    let got = heap.pop_min();
                    assert_eq!(got, expected, "step {step}");
                    if let Some((item, key)) = got {
                        model.remove(&key);
                        keys.remove(&item);
                    }
                }
                _ => {
                    // remove a random item
                    let item = next() % 64;
                    let got = heap.remove(item);
                    let expected = keys.remove(&item);
                    assert_eq!(got, expected, "step {step}");
                    if let Some(key) = expected {
                        model.remove(&key);
                    }
                }
            }
            assert_eq!(heap.len(), model.len(), "step {step}");
        }
        heap.check_invariants();

        // `clear()` reuse: replay a short prefix after clearing and check
        // the two variants still agree with the model discipline.
        heap.clear();
        assert!(heap.is_empty());
        for i in 0..32u32 {
            heap.insert(i, (i % 7, i));
        }
        let mut popped = Vec::new();
        while let Some((item, _)) = heap.pop_min() {
            popped.push(item);
        }
        let mut sorted = popped.clone();
        sorted.sort_by_key(|&i| (i % 7, i));
        assert_eq!(popped, sorted, "post-clear ordering must be exact");
    }
}
