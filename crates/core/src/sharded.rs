//! A concurrent, shard-striped cache engine.
//!
//! [`ShardedEngine`] splits one logical cache into `N` independent
//! shards (`N` a power of two). Each shard owns a full [`Cache`] — its
//! own slab store and its own replacement-policy instance — sized at
//! `capacity / N`, behind its own `Mutex`. Documents are routed to
//! shards by fx-hashing their [`DocId`] ([`ShardedEngine::route`]), so
//! a document only ever lives in, and contends on, one shard.
//!
//! Two access paths with different locking disciplines:
//!
//! * **Write path** (lookups, inserts, invalidations) — `Mutex`-striped:
//!   a request locks exactly its document's shard, so disjoint shards
//!   proceed fully in parallel.
//! * **Read path** (hit-rate accounting) — lock-free: per-shard
//!   [`ShardCounters`] are plain relaxed atomics, updated by the
//!   writers and readable by a metrics scraper (`/metrics`, `/healthz`)
//!   at any time without touching a single mutex. The counter types
//!   mirror the `webcache-obs` registry (`AtomicU64` adds), so gauges
//!   can be fed straight from a [`ShardSnapshot`].
//!
//! Sharding is not free in *quality*: each shard evicts against its own
//! `capacity / N` budget with only its own documents' recency/frequency
//! state, so eviction decisions that a global policy would make across
//! the whole population are approximated per shard. The simulator's
//! concurrent driver measures exactly this delta against the
//! single-shard oracle (`N = 1`, which degenerates to a plain
//! [`Cache`] bit-for-bit).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, TryLockError};
use std::time::Instant;

use webcache_obs::{Counter, Histogram};
use webcache_trace::{fxhash, ByteSize, DocId, DocumentType};

use crate::admission::AdmissionRule;
use crate::cache::Cache;
use crate::spec::PolicySpec;

/// Rejected shard configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardConfigError {
    /// A shard count of zero.
    Zero,
    /// A shard count that is not a power of two (carries the value).
    NotPowerOfTwo(usize),
}

impl std::fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardConfigError::Zero => write!(f, "shard count must be at least 1"),
            ShardConfigError::NotPowerOfTwo(n) => {
                write!(f, "shard count must be a power of two, got {n}")
            }
        }
    }
}

impl std::error::Error for ShardConfigError {}

/// Validates a shard count: positive and a power of two.
///
/// Power-of-two counts keep the router a shift of the hash's top bits —
/// no modulo — and make capacity splitting exact in the common case.
///
/// # Errors
///
/// [`ShardConfigError`] describing the rejected value.
pub fn validate_shard_count(shards: usize) -> Result<(), ShardConfigError> {
    if shards == 0 {
        Err(ShardConfigError::Zero)
    } else if !shards.is_power_of_two() {
        Err(ShardConfigError::NotPowerOfTwo(shards))
    } else {
        Ok(())
    }
}

/// Lock-free per-shard accounting: requests, hits and byte volumes.
///
/// Updated with relaxed atomics on the write path (either per request
/// via [`ShardCounters::record`] or amortized per batch via
/// [`ShardCounters::add_bulk`]); read at any time via
/// [`ShardCounters::snapshot`] with no locks. Individual counters are
/// each internally consistent; a snapshot taken mid-batch may be a few
/// requests stale, which is fine for rate gauges.
#[derive(Debug, Default)]
pub struct ShardCounters {
    requests: AtomicU64,
    hits: AtomicU64,
    bytes_requested: AtomicU64,
    bytes_hit: AtomicU64,
}

impl ShardCounters {
    /// Accounts one request of `size` bytes that hit (or missed).
    #[inline]
    pub fn record(&self, size: ByteSize, hit: bool) {
        self.add_bulk(
            1,
            hit as u64,
            size.as_u64(),
            if hit { size.as_u64() } else { 0 },
        );
    }

    /// Accounts a batch of requests in four adds (the amortized path).
    #[inline]
    pub fn add_bulk(&self, requests: u64, hits: u64, bytes_requested: u64, bytes_hit: u64) {
        self.requests.fetch_add(requests, Ordering::Relaxed);
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.bytes_requested
            .fetch_add(bytes_requested, Ordering::Relaxed);
        self.bytes_hit.fetch_add(bytes_hit, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            bytes_requested: self.bytes_requested.load(Ordering::Relaxed),
            bytes_hit: self.bytes_hit.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of one shard's [`ShardCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Requests routed to the shard.
    pub requests: u64,
    /// Requests served from the shard.
    pub hits: u64,
    /// Bytes requested from the shard.
    pub bytes_requested: u64,
    /// Bytes served from the shard.
    pub bytes_hit: u64,
}

impl ShardSnapshot {
    /// Hit rate (0 when the shard saw no requests).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Byte hit rate (0 when the shard served no bytes).
    pub fn byte_hit_rate(&self) -> f64 {
        if self.bytes_requested == 0 {
            0.0
        } else {
            self.bytes_hit as f64 / self.bytes_requested as f64
        }
    }

    /// Sums the other snapshot into this one.
    pub fn merge(&mut self, other: ShardSnapshot) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.bytes_requested += other.bytes_requested;
        self.bytes_hit += other.bytes_hit;
    }
}

/// How evenly requests and bytes spread across shards.
///
/// `imbalance` metrics are `max / mean` over all shards: `1.0` is a
/// perfect spread, `N` means one shard took everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardBalance {
    /// Requests routed to the busiest shard.
    pub max_requests: u64,
    /// Mean requests per shard.
    pub mean_requests: f64,
    /// `max_requests / mean_requests` (1.0 when no shard saw traffic).
    pub request_imbalance: f64,
    /// Bytes requested from the heaviest shard.
    pub max_bytes: u64,
    /// Mean bytes requested per shard.
    pub mean_bytes: f64,
    /// `max_bytes / mean_bytes` (1.0 when no bytes moved).
    pub byte_imbalance: f64,
}

impl ShardBalance {
    /// Computes the balance of per-shard `(requests, bytes_requested)`
    /// counts.
    pub fn from_counts(per_shard: &[(u64, u64)]) -> ShardBalance {
        let shards = per_shard.len().max(1);
        let total_requests: u64 = per_shard.iter().map(|&(r, _)| r).sum();
        let total_bytes: u64 = per_shard.iter().map(|&(_, b)| b).sum();
        let max_requests = per_shard.iter().map(|&(r, _)| r).max().unwrap_or(0);
        let max_bytes = per_shard.iter().map(|&(_, b)| b).max().unwrap_or(0);
        let mean_requests = total_requests as f64 / shards as f64;
        let mean_bytes = total_bytes as f64 / shards as f64;
        let ratio = |max: u64, mean: f64| if mean > 0.0 { max as f64 / mean } else { 1.0 };
        ShardBalance {
            max_requests,
            mean_requests,
            request_imbalance: ratio(max_requests, mean_requests),
            max_bytes,
            mean_bytes,
            byte_imbalance: ratio(max_bytes, mean_bytes),
        }
    }
}

/// Contention instrumentation for one shard's stripe lock.
///
/// All four handles are the `webcache-obs` relaxed-atomic cells, so the
/// probe can record from the engine while a registry exports the same
/// cells (attach the handles with `Registry::attach_histogram` /
/// `attach_counter`). Probes are opt-in per engine
/// ([`ShardedEngine::set_lock_probes`]); without them the lock path is
/// a single well-predicted branch over the plain `Mutex::lock`, the
/// same no-op-by-default discipline as the policies' `MetricsSink`.
#[derive(Debug, Clone, Default)]
pub struct ShardLockProbe {
    /// Microseconds spent blocked waiting for the stripe lock
    /// (uncontended acquisitions observe 0).
    pub wait_us: Histogram,
    /// Microseconds the stripe lock was held per critical section.
    pub hold_us: Histogram,
    /// Total lock acquisitions through the probed paths.
    pub acquisitions: Counter,
    /// Acquisitions that found the lock held (`try_lock` failed).
    pub contended: Counter,
}

impl ShardLockProbe {
    /// Fresh, detached probe cells.
    pub fn new() -> ShardLockProbe {
        ShardLockProbe::default()
    }

    /// Fraction of acquisitions that had to block (0 when idle).
    pub fn contention_ratio(&self) -> f64 {
        let acquisitions = self.acquisitions.get();
        if acquisitions == 0 {
            0.0
        } else {
            self.contended.get() as f64 / acquisitions as f64
        }
    }
}

/// One shard: its cache behind the stripe lock, plus the lock-free
/// counters beside it.
#[derive(Debug)]
struct Shard {
    cache: Mutex<Cache>,
    counters: ShardCounters,
}

/// The concurrent sharded engine. See the [module docs](self).
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    capacity: ByteSize,
    shard_capacity: ByteSize,
    policy_label: String,
    lock_probes: Option<Vec<ShardLockProbe>>,
}

impl ShardedEngine {
    /// Builds an engine of `shards` shards splitting `capacity` evenly,
    /// each with a fresh instance of `spec`'s replacement policy and its
    /// own admission-filter state, using sparse-id document interning
    /// (the general-purpose path; replay drivers with a dense trace
    /// should use [`ShardedEngine::with_dense_shards`]).
    ///
    /// `spec` is anything convertible to a [`PolicySpec`] — a composed
    /// spec or a bare [`PolicyKind`]. When the spec names an admission
    /// filter it wins over the `admission` fallback (see
    /// [`PolicySpec::admission_or`]).
    ///
    /// # Errors
    ///
    /// [`ShardConfigError`] when `shards` is zero or not a power of two.
    pub fn new(
        capacity: ByteSize,
        spec: impl Into<PolicySpec>,
        admission: AdmissionRule,
        shards: usize,
    ) -> Result<ShardedEngine, ShardConfigError> {
        let spec = spec.into();
        let admission = spec.admission_or(admission);
        validate_shard_count(shards)?;
        let shard_capacity = Self::split_capacity(capacity, shards);
        let shards = (0..shards)
            .map(|_| Shard {
                cache: Mutex::new(Cache::with_admission(
                    shard_capacity,
                    spec.build(),
                    admission,
                )),
                counters: ShardCounters::default(),
            })
            .collect();
        Ok(ShardedEngine {
            shards,
            capacity,
            shard_capacity,
            policy_label: PolicySpec::new(admission, spec.replacement).label(),
            lock_probes: None,
        })
    }

    /// Builds an engine whose shards use dense slot addressing:
    /// `per_shard_distinct[s]` is shard `s`'s distinct-document count and
    /// its documents must be addressed as `DocId::new(local_slot)` with
    /// shard-local slots `0..per_shard_distinct[s]` (a sharded trace
    /// view computes the mapping). With `batched`, every shard's policy
    /// is switched to deferred heap maintenance before it moves into its
    /// cache, matching the batched replay loop.
    ///
    /// # Errors
    ///
    /// [`ShardConfigError`] when the shard count is zero or not a power
    /// of two.
    ///
    /// # Panics
    ///
    /// Panics when `per_shard_distinct` is empty (its length is the
    /// shard count).
    pub fn with_dense_shards(
        capacity: ByteSize,
        spec: impl Into<PolicySpec>,
        admission: AdmissionRule,
        per_shard_distinct: &[usize],
        batched: bool,
    ) -> Result<ShardedEngine, ShardConfigError> {
        let spec = spec.into();
        let admission = spec.admission_or(admission);
        validate_shard_count(per_shard_distinct.len())?;
        let shard_capacity = Self::split_capacity(capacity, per_shard_distinct.len());
        let shards = per_shard_distinct
            .iter()
            .map(|&distinct| {
                let mut policy = spec.build();
                if batched {
                    policy.set_batched(true);
                }
                Shard {
                    cache: Mutex::new(Cache::with_dense_slots(
                        shard_capacity,
                        policy,
                        admission,
                        distinct,
                    )),
                    counters: ShardCounters::default(),
                }
            })
            .collect();
        Ok(ShardedEngine {
            shards,
            capacity,
            shard_capacity,
            policy_label: PolicySpec::new(admission, spec.replacement).label(),
            lock_probes: None,
        })
    }

    /// Installs one [`ShardLockProbe`] per shard; every subsequent
    /// [`ShardedEngine::request`], [`ShardedEngine::invalidate`] and
    /// [`ShardedEngine::with_shard`] times its lock wait and hold into
    /// the probe cells. Install before sharing the engine across
    /// threads (the setter takes `&mut self`).
    ///
    /// # Panics
    ///
    /// Panics when `probes.len()` differs from the shard count.
    pub fn set_lock_probes(&mut self, probes: Vec<ShardLockProbe>) {
        assert_eq!(probes.len(), self.shards.len(), "one lock probe per shard");
        self.lock_probes = Some(probes);
    }

    /// The installed lock probes, if any.
    pub fn lock_probes(&self) -> Option<&[ShardLockProbe]> {
        self.lock_probes.as_deref()
    }

    /// Splits the total byte budget evenly, never below one byte per
    /// shard (a [`Cache`] rejects a zero capacity).
    fn split_capacity(capacity: ByteSize, shards: usize) -> ByteSize {
        ByteSize::new((capacity.as_u64() / shards as u64).max(1))
    }

    /// Stateless routing: which of `shard_count` shards owns `doc`.
    ///
    /// Fx-hashes the id and keeps the hash's **top** `log2(shard_count)`
    /// bits — the single-multiply fx hash mixes upward, so the low bits
    /// of sequential ids are not usable as a bucket index.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `shard_count` is a positive power of two
    /// (validated constructors uphold this).
    #[inline]
    pub fn route(doc: DocId, shard_count: usize) -> usize {
        debug_assert!(shard_count.is_power_of_two());
        if shard_count == 1 {
            return 0;
        }
        let bits = shard_count.trailing_zeros();
        (fxhash::hash_u64(doc.as_u64()) >> (64 - bits)) as usize
    }

    /// Which of this engine's shards owns `doc` (sparse-id addressing;
    /// dense-slot drivers route through their trace view instead).
    #[inline]
    pub fn shard_of(&self, doc: DocId) -> usize {
        Self::route(doc, self.shards.len())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The total configured capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// The per-shard capacity (`capacity / shards`, at least 1 byte).
    pub fn shard_capacity(&self) -> ByteSize {
        self.shard_capacity
    }

    /// The replacement policy's display label (e.g. `"GD*(P)"`).
    pub fn policy_label(&self) -> String {
        self.policy_label.clone()
    }

    /// Runs `f` with shard `index`'s cache locked, timing lock wait and
    /// hold into the shard's [`ShardLockProbe`] when probes are
    /// installed.
    ///
    /// The probed path is `try_lock`-then-block: an uncontended
    /// acquisition observes a zero wait without ever reading the clock;
    /// only the contended slow path (which is already paying a blocking
    /// park) takes two `Instant` reads for the wait and two for the
    /// hold.
    fn locked<R>(&self, index: usize, f: impl FnOnce(&mut Cache) -> R) -> R {
        let shard = &self.shards[index];
        let Some(probe) = self.lock_probes.as_ref().map(|p| &p[index]) else {
            let mut cache = shard.cache.lock().expect("shard mutex poisoned");
            return f(&mut cache);
        };
        probe.acquisitions.inc();
        let mut cache = match shard.cache.try_lock() {
            Ok(guard) => {
                probe.wait_us.observe(0);
                guard
            }
            Err(TryLockError::WouldBlock) => {
                probe.contended.inc();
                let blocked = Instant::now();
                let guard = shard.cache.lock().expect("shard mutex poisoned");
                probe.wait_us.observe(blocked.elapsed().as_micros() as u64);
                guard
            }
            Err(TryLockError::Poisoned(_)) => panic!("shard mutex poisoned"),
        };
        let held = Instant::now();
        let result = f(&mut cache);
        drop(cache);
        probe.hold_us.observe(held.elapsed().as_micros() as u64);
        result
    }

    /// One full request against the engine: look the document up in its
    /// shard, fetch-and-insert on a miss, and account the outcome in the
    /// shard's lock-free counters. Returns `true` on a hit.
    pub fn request(&self, doc: DocId, doc_type: DocumentType, size: ByteSize) -> bool {
        let index = self.shard_of(doc);
        let hit = self.locked(index, |cache| {
            let hit = cache.access(doc);
            if !hit {
                cache.insert(doc, doc_type, size);
            }
            hit
        });
        self.shards[index].counters.record(size, hit);
        hit
    }

    /// Drops `doc`'s cached copy (origin-side modification), if any.
    pub fn invalidate(&self, doc: DocId) -> bool {
        self.locked(self.shard_of(doc), |cache| cache.invalidate(doc))
    }

    /// Runs `f` with shard `index`'s cache locked.
    ///
    /// This is the replay drivers' bulk path: a worker that owns a
    /// shard's whole request subsequence takes the stripe lock once and
    /// replays through it, instead of locking per request (so with
    /// probes installed the cost is one timed acquisition per shard per
    /// pass — nothing per request).
    pub fn with_shard<R>(&self, index: usize, f: impl FnOnce(&mut Cache) -> R) -> R {
        self.locked(index, f)
    }

    /// Shard `index`'s lock-free counters (for bulk accounting next to
    /// [`ShardedEngine::with_shard`]).
    pub fn counters(&self, index: usize) -> &ShardCounters {
        &self.shards[index].counters
    }

    /// Snapshots every shard's counters, lock-free, in shard order.
    pub fn snapshot(&self) -> Vec<ShardSnapshot> {
        self.shards.iter().map(|s| s.counters.snapshot()).collect()
    }

    /// The engine-wide counter totals, lock-free.
    pub fn totals(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::default();
        for shard in &self.shards {
            total.merge(shard.counters.snapshot());
        }
        total
    }

    /// Request/byte spread across shards, from the lock-free counters.
    pub fn balance(&self) -> ShardBalance {
        let counts: Vec<(u64, u64)> = self
            .shards
            .iter()
            .map(|s| {
                let snap = s.counters.snapshot();
                (snap.requests, snap.bytes_requested)
            })
            .collect();
        ShardBalance::from_counts(&counts)
    }

    /// Bytes resident across all shards (locks each shard briefly).
    pub fn used_bytes(&self) -> ByteSize {
        let mut total = 0u64;
        for shard in &self.shards {
            total += shard
                .cache
                .lock()
                .expect("shard mutex poisoned")
                .used_bytes()
                .as_u64();
        }
        ByteSize::new(total)
    }

    /// Documents resident across all shards (locks each shard briefly).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.cache.lock().expect("shard mutex poisoned").len())
            .sum()
    }

    /// Whether no shard holds a document.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            ByteSize::new(8_000),
            PolicyKind::Lru,
            AdmissionRule::All,
            shards,
        )
        .expect("valid shard count")
    }

    #[test]
    fn shard_count_validation() {
        assert_eq!(validate_shard_count(0), Err(ShardConfigError::Zero));
        assert_eq!(
            validate_shard_count(3),
            Err(ShardConfigError::NotPowerOfTwo(3))
        );
        assert_eq!(
            validate_shard_count(12),
            Err(ShardConfigError::NotPowerOfTwo(12))
        );
        for n in [1, 2, 4, 8, 64, 1024] {
            assert_eq!(validate_shard_count(n), Ok(()));
        }
        let err = ShardConfigError::NotPowerOfTwo(6).to_string();
        assert!(err.contains("power of two") && err.contains('6'), "{err}");
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for n in [1usize, 2, 4, 8, 256] {
            for id in 0..1_000u64 {
                let shard = ShardedEngine::route(DocId::new(id), n);
                assert!(shard < n);
                assert_eq!(shard, ShardedEngine::route(DocId::new(id), n));
            }
        }
    }

    #[test]
    fn routing_spreads_sequential_ids() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for id in 0..8_000u64 {
            counts[ShardedEngine::route(DocId::new(id), n)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max < 2 * min.max(1),
            "sequential ids skewed across shards: {counts:?}"
        );
    }

    #[test]
    fn capacity_splits_evenly_with_a_floor_of_one() {
        let e = engine(4);
        assert_eq!(e.capacity().as_u64(), 8_000);
        assert_eq!(e.shard_capacity().as_u64(), 2_000);
        let tiny =
            ShardedEngine::new(ByteSize::new(3), PolicyKind::Lru, AdmissionRule::All, 8).unwrap();
        assert_eq!(tiny.shard_capacity().as_u64(), 1);
    }

    #[test]
    fn requests_hit_their_own_shard_and_count_lock_free() {
        let e = engine(4);
        let doc = DocId::new(42);
        assert!(!e.request(doc, DocumentType::Html, ByteSize::new(100)));
        assert!(e.request(doc, DocumentType::Html, ByteSize::new(100)));
        let totals = e.totals();
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.hits, 1);
        assert_eq!(totals.bytes_requested, 200);
        assert_eq!(totals.bytes_hit, 100);
        assert!((totals.hit_rate() - 0.5).abs() < 1e-12);
        assert!((totals.byte_hit_rate() - 0.5).abs() < 1e-12);
        // Exactly one shard saw the traffic.
        let busy: Vec<_> = e
            .snapshot()
            .into_iter()
            .filter(|s| s.requests > 0)
            .collect();
        assert_eq!(busy.len(), 1);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
        assert_eq!(e.used_bytes().as_u64(), 100);
    }

    #[test]
    fn invalidate_reaches_the_owning_shard() {
        let e = engine(8);
        let doc = DocId::new(7);
        e.request(doc, DocumentType::Image, ByteSize::new(50));
        assert!(e.invalidate(doc));
        assert!(!e.invalidate(doc), "second invalidate finds nothing");
        assert!(e.is_empty());
    }

    #[test]
    fn single_shard_engine_behaves_like_a_plain_cache() {
        let e = engine(1);
        let mut plain = Cache::new(ByteSize::new(8_000), PolicyKind::Lru.build());
        for id in 0..200u64 {
            let doc = DocId::new(id % 37);
            let size = ByteSize::new(64 + id % 5);
            let expected = {
                let hit = plain.access(doc);
                if !hit {
                    plain.insert(doc, DocumentType::Html, size);
                }
                hit
            };
            assert_eq!(e.request(doc, DocumentType::Html, size), expected);
        }
        assert_eq!(e.len(), plain.len());
        assert_eq!(e.used_bytes(), plain.used_bytes());
    }

    #[test]
    fn concurrent_requests_from_many_threads_account_exactly() {
        let e = engine(4);
        let threads = 8;
        let per_thread = 500u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let e = &e;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let doc = DocId::new((t * per_thread + i) % 61);
                        e.request(doc, DocumentType::Html, ByteSize::new(10));
                    }
                });
            }
        });
        let totals = e.totals();
        assert_eq!(totals.requests, threads * per_thread);
        assert_eq!(totals.bytes_requested, threads * per_thread * 10);
        let balance = e.balance();
        assert!(balance.request_imbalance >= 1.0);
        assert_eq!(
            e.snapshot().iter().map(|s| s.requests).sum::<u64>(),
            totals.requests
        );
    }

    #[test]
    fn lock_probes_do_not_change_behavior() {
        let mut probed = engine(4);
        probed.set_lock_probes((0..4).map(|_| ShardLockProbe::new()).collect());
        let plain = engine(4);
        for id in 0..500u64 {
            let doc = DocId::new(id % 93);
            let size = ByteSize::new(40 + id % 7);
            assert_eq!(
                probed.request(doc, DocumentType::Html, size),
                plain.request(doc, DocumentType::Html, size)
            );
        }
        assert_eq!(
            probed.invalidate(DocId::new(1)),
            plain.invalidate(DocId::new(1))
        );
        assert_eq!(probed.len(), plain.len());
        assert_eq!(probed.used_bytes(), plain.used_bytes());
        assert_eq!(probed.totals(), plain.totals());
        // Every acquisition was observed, single-threaded ones uncontended.
        let probes = probed.lock_probes().unwrap();
        let acquisitions: u64 = probes.iter().map(|p| p.acquisitions.get()).sum();
        assert_eq!(acquisitions, 501);
        for p in probes {
            assert_eq!(p.contended.get(), 0);
            assert_eq!(p.contention_ratio(), 0.0);
            assert_eq!(p.wait_us.count(), p.acquisitions.get());
            assert_eq!(p.hold_us.count(), p.acquisitions.get());
        }
        assert!(plain.lock_probes().is_none());
    }

    #[test]
    fn contended_lock_registers_wait_time() {
        let mut e = engine(1);
        e.set_lock_probes(vec![ShardLockProbe::new()]);
        std::thread::scope(|scope| {
            // One holder pins the single shard's lock while another
            // thread requests through it — the request must block and
            // the probe must see the contention.
            let engine = &e;
            let holder = scope.spawn(move || {
                engine.with_shard(0, |_cache| {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                });
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            engine.request(DocId::new(1), DocumentType::Html, ByteSize::new(10));
            holder.join().unwrap();
        });
        let probe = &e.lock_probes().unwrap()[0];
        assert_eq!(probe.acquisitions.get(), 2);
        assert_eq!(probe.contended.get(), 1);
        assert!((probe.contention_ratio() - 0.5).abs() < 1e-12);
        // The blocked request waited most of the 30ms hold.
        assert!(probe.wait_us.sum() >= 10_000, "{}", probe.wait_us.sum());
        assert!(probe.hold_us.sum() >= 20_000, "{}", probe.hold_us.sum());
    }

    #[test]
    #[should_panic(expected = "one lock probe per shard")]
    fn probe_count_must_match_shards() {
        engine(4).set_lock_probes(vec![ShardLockProbe::new()]);
    }

    #[test]
    fn balance_of_empty_and_skewed_counts() {
        let empty = ShardBalance::from_counts(&[(0, 0), (0, 0)]);
        assert_eq!(empty.request_imbalance, 1.0);
        assert_eq!(empty.byte_imbalance, 1.0);
        let skewed = ShardBalance::from_counts(&[(30, 300), (10, 100)]);
        assert_eq!(skewed.max_requests, 30);
        assert!((skewed.request_imbalance - 1.5).abs() < 1e-12);
        assert!((skewed.byte_imbalance - 1.5).abs() < 1e-12);
    }
}
