//! Approximate frequency sketch for admission filtering.
//!
//! [`FrequencySketch`] is the TinyLFU frequency estimator (Einziger &
//! Friedman): a Count-Min sketch of 4-bit saturating counters fronted by
//! a *doorkeeper* bloom filter that absorbs the one-hit-wonder majority,
//! with periodic halving (the *reset* operation) so estimates track a
//! sliding window of recent popularity instead of all of history.
//!
//! The sketch is sized at construction and never reallocates, so its
//! estimates are a pure function of the recorded key sequence — the
//! property the dense-vs-hashed and batched-vs-serial differential
//! proptests rely on when a TinyLFU admission filter is attached.
//!
//! All state is deterministic: hashing is a fixed splitmix64-style mix,
//! and aging triggers on an exact sample count, never on wall time.

/// Number of Count-Min rows (independent hash functions).
const ROWS: usize = 4;

/// 4-bit counters saturate here.
const COUNTER_MAX: u8 = 15;

/// Default counter-table width per row (must be a power of two). 16 Ki
/// counters per row × 4 rows × 4 bits = 32 KiB of counter state, enough
/// for the catalog sizes the scaled DFN/RTP workloads produce while
/// staying fixed-size (see the module docs on determinism).
const DEFAULT_WIDTH: usize = 1 << 14;

/// Recorded samples between halvings, as a multiple of the row width.
/// Caffeine uses 10 × the cache's entry capacity; 8 × width lands in the
/// same regime for our fixed-width sketch.
const SAMPLE_FACTOR: usize = 8;

/// A Count-Min frequency sketch with doorkeeper and periodic aging.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    /// `ROWS` rows of packed 4-bit counters, 16 counters per `u64` word;
    /// row `r` occupies `table[r * words_per_row ..][..words_per_row]`.
    table: Vec<u64>,
    /// Doorkeeper bloom filter: one bit set per hash position, 2 probes.
    doorkeeper: Vec<u64>,
    /// Counter-index mask (`width - 1`).
    mask: u64,
    /// Doorkeeper bit-index mask.
    door_mask: u64,
    /// Records since the last halving.
    additions: usize,
    /// Halving threshold.
    sample_size: usize,
}

impl Default for FrequencySketch {
    fn default() -> Self {
        FrequencySketch::new()
    }
}

impl FrequencySketch {
    /// A sketch of the default (fixed) width.
    pub fn new() -> Self {
        FrequencySketch::with_width(DEFAULT_WIDTH)
    }

    /// A sketch with `width` counters per row, rounded up to a power of
    /// two (minimum 64).
    pub fn with_width(width: usize) -> Self {
        let width = width.max(64).next_power_of_two();
        let words_per_row = width / 16;
        // Doorkeeper: 8 bits per counter keeps its false-positive rate
        // negligible next to the counters' own collision noise.
        let door_bits = (width * 8).next_power_of_two();
        FrequencySketch {
            table: vec![0; words_per_row * ROWS],
            doorkeeper: vec![0; door_bits / 64],
            mask: (width - 1) as u64,
            door_mask: (door_bits - 1) as u64,
            additions: 0,
            sample_size: width * SAMPLE_FACTOR,
        }
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.mask as usize + 1
    }

    /// Records since the last halving (diagnostic).
    pub fn additions(&self) -> usize {
        self.additions
    }

    /// Records one occurrence of `key` and returns the estimate
    /// *including* this occurrence — the admission-filter fast path
    /// (record + estimate in one pass).
    pub fn record(&mut self, key: u64) -> u32 {
        let h = mix(key);
        let estimate = if self.door_set(h) {
            self.bump(h) + 1
        } else {
            1
        };
        self.additions += 1;
        if self.additions >= self.sample_size {
            self.halve();
        }
        estimate
    }

    /// Estimates how often `key` was recorded in the current window,
    /// without recording it.
    pub fn estimate(&self, key: u64) -> u32 {
        let h = mix(key);
        if self.door_contains(h) {
            self.min_count(h) + 1
        } else {
            0
        }
    }

    /// Tests and sets the doorkeeper bits for `h`; returns whether the
    /// key had already passed the door.
    fn door_set(&mut self, h: u64) -> bool {
        let (a, b) = door_probes(h, self.door_mask);
        let was = bit(&self.doorkeeper, a) && bit(&self.doorkeeper, b);
        set_bit(&mut self.doorkeeper, a);
        set_bit(&mut self.doorkeeper, b);
        was
    }

    fn door_contains(&self, h: u64) -> bool {
        let (a, b) = door_probes(h, self.door_mask);
        bit(&self.doorkeeper, a) && bit(&self.doorkeeper, b)
    }

    /// Conservative-update increment: only the minimal counters grow, so
    /// over-estimation from collisions stays as small as the structure
    /// allows. Returns the post-increment minimum.
    fn bump(&mut self, h: u64) -> u32 {
        let min = self.min_count(h);
        if min >= u32::from(COUNTER_MAX) {
            return min;
        }
        let words_per_row = self.table.len() / ROWS;
        for row in 0..ROWS {
            let index = (row_hash(h, row) & self.mask) as usize;
            let word = row * words_per_row + index / 16;
            let shift = (index % 16) * 4;
            let current = ((self.table[word] >> shift) & 0xF) as u32;
            if current == min {
                self.table[word] += 1u64 << shift;
            }
        }
        min + 1
    }

    fn min_count(&self, h: u64) -> u32 {
        let words_per_row = self.table.len() / ROWS;
        let mut min = u32::from(COUNTER_MAX);
        for row in 0..ROWS {
            let index = (row_hash(h, row) & self.mask) as usize;
            let word = row * words_per_row + index / 16;
            let shift = (index % 16) * 4;
            min = min.min(((self.table[word] >> shift) & 0xF) as u32);
        }
        min
    }

    /// The TinyLFU reset: every counter is halved and the doorkeeper is
    /// cleared, so stale popularity decays geometrically.
    fn halve(&mut self) {
        for word in &mut self.table {
            // Halve all sixteen 4-bit counters in the word at once.
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        for word in &mut self.doorkeeper {
            *word = 0;
        }
        self.additions /= 2;
    }
}

/// splitmix64 finalizer: spreads dense slot ids over the hash space.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-row index derivation: rotate the mixed hash so the rows probe
/// independent positions.
fn row_hash(h: u64, row: usize) -> u64 {
    h.rotate_right(row as u32 * 17)
}

fn door_probes(h: u64, mask: u64) -> (u64, u64) {
    (h & mask, (h >> 32) & mask)
}

fn bit(words: &[u64], index: u64) -> bool {
    words[(index / 64) as usize] & (1 << (index % 64)) != 0
}

fn set_bit(words: &mut [u64], index: u64) {
    words[(index / 64) as usize] |= 1 << (index % 64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_record_passes_the_doorkeeper_only() {
        let mut s = FrequencySketch::new();
        assert_eq!(s.estimate(7), 0);
        assert_eq!(s.record(7), 1, "first occurrence");
        assert_eq!(s.estimate(7), 1);
        assert_eq!(s.record(7), 2, "second occurrence hits the counters");
        assert!(s.estimate(7) >= 2);
    }

    #[test]
    fn estimates_grow_with_recorded_frequency_and_saturate() {
        let mut s = FrequencySketch::new();
        for _ in 0..40 {
            s.record(42);
        }
        let hot = s.estimate(42);
        assert!(hot >= 10, "hot key underestimated: {hot}");
        assert!(hot <= 16, "4-bit counters + door bound: {hot}");
        s.record(43);
        assert!(s.estimate(43) < hot);
    }

    #[test]
    fn halving_decays_estimates_and_clears_the_door() {
        let mut s = FrequencySketch::with_width(64);
        for _ in 0..12 {
            s.record(1);
        }
        let before = s.estimate(1);
        // Drive additions to the sample threshold with distinct keys.
        let mut k = 1_000u64;
        while s.additions() > 0 && k < 1_000 + 2 * 64 * SAMPLE_FACTOR as u64 {
            s.record(k);
            k += 1;
        }
        let after = s.estimate(1);
        assert!(
            after < before,
            "halving must decay the hot key: {before} -> {after}"
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let run = || {
            let mut s = FrequencySketch::new();
            let mut acc = Vec::new();
            for i in 0..5_000u64 {
                acc.push(s.record((i * 7) % 300));
            }
            acc
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn width_rounds_to_power_of_two() {
        assert_eq!(FrequencySketch::with_width(1000).width(), 1024);
        assert_eq!(FrequencySketch::with_width(1).width(), 64);
    }
}
