//! Composable policy specification: the single construction entry point.
//!
//! A [`PolicySpec`] pairs an [`AdmissionSpec`] with a
//! [`ReplacementKind`], so "frequency-sketch admission composed with any
//! replacement policy" is a first-class, parseable, serializable value:
//!
//! ```
//! use webcache_core::{AdmissionSpec, PolicyKind, PolicySpec};
//!
//! let spec: PolicySpec = "tinylfu+slru".parse().unwrap();
//! assert_eq!(spec.admission, AdmissionSpec::TinyLfu);
//! assert_eq!(spec.replacement, PolicyKind::Slru);
//! assert_eq!(spec.to_string(), "TinyLFU+SLRU");
//!
//! // A bare replacement name is the admit-everything spec — every
//! // pre-redesign `PolicyKind` call site means exactly this.
//! let arc: PolicySpec = "arc".parse().unwrap();
//! assert_eq!(arc, PolicyKind::Arc.into());
//! ```
//!
//! The grammar is `[admission "+"] replacement`. Replacement names are
//! everything [`PolicyKind::parse`] accepts; admission prefixes are
//! `tinylfu`, `2hit[:WINDOW]` (alias `secondhit`), `max:BYTES` (alias
//! `maxsize`), and the explicit `all`. `Display` prints the canonical
//! label (`TinyLFU+SLRU`, `2HIT:16+LRU`, or the bare replacement label
//! when admission is `All`) and `FromStr` parses it back — a round trip
//! the spec proptests pin for every combination.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use webcache_trace::ByteSize;

use crate::admission::AdmissionSpec;
use crate::policy::{PolicyKind, ReplacementPolicy};

/// The replacement half of a [`PolicySpec`]. Today this is exactly
/// [`PolicyKind`]; the alias is the documented name going forward.
pub type ReplacementKind = PolicyKind;

/// Window used when a `2hit` prefix names no explicit window.
pub const DEFAULT_SECOND_HIT_WINDOW: usize = 4_096;

/// A complete cache policy: who gets in, and who gets thrown out.
///
/// See the module-level documentation for the grammar and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Admission filter consulted before storing a fetched document.
    pub admission: AdmissionSpec,
    /// Replacement scheme choosing eviction victims.
    pub replacement: ReplacementKind,
}

impl PolicySpec {
    /// A spec composing the given admission filter and replacement kind.
    pub fn new(admission: AdmissionSpec, replacement: ReplacementKind) -> Self {
        PolicySpec {
            admission,
            replacement,
        }
    }

    /// The admit-everything spec for a replacement kind — the exact
    /// meaning every pre-redesign `PolicyKind` call site had.
    pub fn replacement_only(replacement: ReplacementKind) -> Self {
        PolicySpec {
            admission: AdmissionSpec::All,
            replacement,
        }
    }

    /// The canonical composed label: `"TinyLFU+SLRU"`, or the bare
    /// replacement label when admission is [`AdmissionSpec::All`].
    pub fn label(&self) -> String {
        match self.admission.label_prefix() {
            Some(prefix) => format!("{prefix}+{}", self.replacement.label()),
            None => self.replacement.label(),
        }
    }

    /// This spec's admission when it names one, otherwise `fallback` —
    /// the precedence rule gluing `PolicySpec` to configs that carry
    /// their own default admission rule.
    pub fn admission_or(&self, fallback: AdmissionSpec) -> AdmissionSpec {
        if self.admission == AdmissionSpec::All {
            fallback
        } else {
            self.admission
        }
    }

    /// Constructs the replacement policy instance for this spec. The
    /// admission half is built separately by the cache (it needs mutable
    /// per-cache state); see [`Cache::with_spec`](crate::Cache::with_spec).
    pub fn build(&self) -> Box<dyn ReplacementPolicy> {
        self.replacement.build()
    }

    /// Like [`PolicySpec::build`], but routing the replacement policy's
    /// internal events (heap costs, inflation, eviction reasons) into
    /// `sink`. `build_instrumented(())` is exactly [`PolicySpec::build`].
    pub fn build_instrumented<M: webcache_obs::MetricsSink>(
        &self,
        sink: M,
    ) -> Box<dyn ReplacementPolicy> {
        self.replacement.build_instrumented(sink)
    }

    /// Parses the `[admission "+"] replacement` grammar, returning
    /// `None` for anything malformed. `FromStr` wraps this with a
    /// descriptive error.
    pub fn parse(name: &str) -> Option<PolicySpec> {
        let mut parts = name.splitn(3, '+');
        let first = parts.next()?;
        let second = parts.next();
        if parts.next().is_some() {
            return None; // at most one '+'
        }
        match second {
            None => Some(PolicySpec::replacement_only(PolicyKind::parse(first)?)),
            Some(replacement) => Some(PolicySpec::new(
                parse_admission(first)?,
                PolicyKind::parse(replacement)?,
            )),
        }
    }
}

impl From<PolicyKind> for PolicySpec {
    fn from(kind: PolicyKind) -> Self {
        PolicySpec::replacement_only(kind)
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error returned when a policy spec fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    input: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy spec '{}' (expected [admission+]replacement, e.g. 'tinylfu+slru', \
             '2hit:16+lru', 'arc')",
            self.input
        )
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for PolicySpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicySpec::parse(s).ok_or_else(|| ParseSpecError {
            input: s.to_string(),
        })
    }
}

/// Parses an admission prefix token (`tinylfu`, `2hit:16`, `max:4096`,
/// `all`), with the same forgiving normalization as policy names.
fn parse_admission(token: &str) -> Option<AdmissionSpec> {
    let normalized: String = token
        .to_ascii_lowercase()
        .chars()
        .filter(|c| !matches!(c, '(' | ')' | '-' | '_' | ' '))
        .collect();
    let (name, arg) = match normalized.split_once(':') {
        Some((name, arg)) => (name, Some(arg)),
        None => (normalized.as_str(), None),
    };
    Some(match (name, arg) {
        ("all", None) => AdmissionSpec::All,
        ("tinylfu", None) => AdmissionSpec::TinyLfu,
        ("2hit" | "secondhit", None) => AdmissionSpec::SecondHit(DEFAULT_SECOND_HIT_WINDOW),
        ("2hit" | "secondhit", Some(window)) => {
            let window: usize = window.parse().ok()?;
            if window == 0 {
                return None;
            }
            AdmissionSpec::SecondHit(window)
        }
        ("max" | "maxsize", Some(bytes)) => {
            AdmissionSpec::MaxSize(ByteSize::new(bytes.parse().ok()?))
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_replacement_names_parse_to_admit_all() {
        for kind in PolicyKind::ALL {
            let spec = PolicySpec::parse(&kind.label()).unwrap();
            assert_eq!(spec, PolicySpec::from(kind), "{kind}");
            assert_eq!(spec.label(), kind.label(), "{kind}");
        }
    }

    #[test]
    fn display_from_str_round_trips_composed_specs() {
        let admissions = [
            AdmissionSpec::All,
            AdmissionSpec::TinyLfu,
            AdmissionSpec::SecondHit(16),
            AdmissionSpec::MaxSize(ByteSize::new(65_536)),
        ];
        for admission in admissions {
            for replacement in PolicyKind::ALL {
                let spec = PolicySpec::new(admission, replacement);
                let parsed: PolicySpec = spec.to_string().parse().unwrap_or_else(|e| {
                    panic!("{spec} failed to re-parse: {e}");
                });
                assert_eq!(parsed, spec);
            }
        }
    }

    #[test]
    fn acceptance_spellings_parse() {
        let spec: PolicySpec = "tinylfu+slru".parse().unwrap();
        assert_eq!(
            spec,
            PolicySpec::new(AdmissionSpec::TinyLfu, PolicyKind::Slru)
        );
        assert_eq!(spec.to_string(), "TinyLFU+SLRU");
        assert_eq!(
            "tinylfu+gd*(p)".parse::<PolicySpec>().unwrap().label(),
            "TinyLFU+GD*(P)"
        );
        assert_eq!(
            "2hit+lru".parse::<PolicySpec>().unwrap().admission,
            AdmissionSpec::SecondHit(DEFAULT_SECOND_HIT_WINDOW)
        );
        assert_eq!(
            "max:4096+size".parse::<PolicySpec>().unwrap().admission,
            AdmissionSpec::MaxSize(ByteSize::new(4096))
        );
        assert_eq!(
            "all+lru".parse::<PolicySpec>().unwrap(),
            PolicyKind::Lru.into()
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "tinylfu",         // admission with no replacement
            "tinylfu+",        // empty replacement
            "+lru",            // empty admission
            "tinylfu+nope",    // unknown replacement
            "nope+lru",        // unknown admission
            "tinylfu+lru+lru", // too many parts
            "2hit:0+lru",      // zero window
            "max+lru",         // max requires a byte count
            "2hit:x+lru",      // non-numeric window
        ] {
            assert!(PolicySpec::parse(bad).is_none(), "{bad:?} must not parse");
            assert!(bad.parse::<PolicySpec>().is_err(), "{bad:?}");
        }
        let err = "tinylfu".parse::<PolicySpec>().unwrap_err();
        assert!(err.to_string().contains("tinylfu"), "{err}");
    }

    #[test]
    fn admission_precedence_prefers_the_spec() {
        let composed = PolicySpec::new(AdmissionSpec::TinyLfu, PolicyKind::Lru);
        let bare = PolicySpec::replacement_only(PolicyKind::Lru);
        let fallback = AdmissionSpec::SecondHit(8);
        assert_eq!(composed.admission_or(fallback), AdmissionSpec::TinyLfu);
        assert_eq!(bare.admission_or(fallback), fallback);
    }

    #[test]
    fn build_constructs_the_replacement_half() {
        let spec = PolicySpec::new(AdmissionSpec::TinyLfu, PolicyKind::S3Fifo);
        assert_eq!(spec.build().label(), "S3-FIFO");
    }
}
