//! Property tests for the cache engine: the capacity invariant, policy
//! conformance under arbitrary op sequences, heap correctness against a
//! reference model, and GreedyDual aging laws.

use std::collections::BTreeMap;

use proptest::prelude::*;

use webcache_core::policy::GdStar;
use webcache_core::pqueue::IndexedHeap;
use webcache_core::{Cache, CostModel, PolicyKind};
use webcache_trace::{ByteSize, DocId, DocumentType};

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Insert(u64, u8, u32),
    Invalidate(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(Op::Access),
        (0u64..64, 0u8..5, 1u32..5_000).prop_map(|(d, t, s)| Op::Insert(d, t, s)),
        (0u64..64).prop_map(Op::Invalidate),
    ]
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

fn apply(cache: &mut Cache, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Access(d) => {
                cache.access(DocId::new(d));
            }
            Op::Insert(d, t, s) => {
                // Simulate the proxy: insert only on miss (access first).
                let doc = DocId::new(d);
                if !cache.access(doc) {
                    cache.insert(doc, DocumentType::ALL[t as usize], ByteSize::new(s as u64));
                }
            }
            Op::Invalidate(d) => {
                cache.invalidate(DocId::new(d));
            }
        }
    }
}

proptest! {
    /// Under arbitrary op sequences, every policy keeps the cache within
    /// capacity with consistent byte/occupancy accounting.
    #[test]
    fn cache_invariants_hold_for_all_policies(
        kind in arb_policy(),
        capacity in 1_000u64..50_000,
        ops in prop::collection::vec(arb_op(), 1..400),
    ) {
        let mut cache = Cache::new(ByteSize::new(capacity), kind.instantiate());
        apply(&mut cache, &ops);
        cache.debug_validate();
        prop_assert!(cache.used_bytes() <= cache.capacity());
    }

    /// Cache behaviour is a pure function of the op sequence.
    #[test]
    fn cache_is_deterministic(
        kind in arb_policy(),
        ops in prop::collection::vec(arb_op(), 1..200),
    ) {
        let run = || {
            let mut cache = Cache::new(ByteSize::new(10_000), kind.instantiate());
            apply(&mut cache, &ops);
            let mut docs: Vec<u64> = (0..64)
                .filter(|&d| cache.contains(DocId::new(d)))
                .collect();
            docs.sort_unstable();
            (docs, cache.used_bytes())
        };
        prop_assert_eq!(run(), run());
    }

    /// The indexed heap agrees with a BTreeMap reference model under
    /// arbitrary insert/update/pop/remove interleavings.
    #[test]
    fn heap_matches_reference_model(
        ops in prop::collection::vec((0u8..4, 0u32..32, 0u64..1_000), 1..300),
    ) {
        let mut heap: IndexedHeap<u32, (u64, u64)> = IndexedHeap::new();
        let mut model: BTreeMap<(u64, u64), u32> = BTreeMap::new();
        let mut keys: std::collections::HashMap<u32, (u64, u64)> =
            std::collections::HashMap::new();
        let mut tie = 0u64;

        for (op, item, key) in ops {
            match op {
                0 | 1 => {
                    let key = (key, tie);
                    tie += 1;
                    if let Some(old) = keys.insert(item, key) {
                        model.remove(&old);
                        heap.update(item, key);
                    } else {
                        heap.insert(item, key);
                    }
                    model.insert(key, item);
                }
                2 => {
                    let expected = model.iter().next().map(|(&k, &i)| (i, k));
                    let got = heap.pop_min();
                    prop_assert_eq!(got, expected);
                    if let Some((item, key)) = got {
                        model.remove(&key);
                        keys.remove(&item);
                    }
                }
                _ => {
                    let got = heap.remove(item);
                    let expected = keys.remove(&item);
                    prop_assert_eq!(got, expected);
                    if let Some(k) = expected {
                        model.remove(&k);
                    }
                }
            }
            prop_assert_eq!(heap.len(), model.len());
        }
    }

    /// GreedyDual* inflation (cache age) never decreases, regardless of
    /// the access pattern, and H values always sit at or above it.
    #[test]
    fn gdstar_inflation_is_monotone(
        cost in prop::sample::select(vec![CostModel::Constant, CostModel::Packet]),
        beta in 0.2f64..3.0,
        ops in prop::collection::vec((0u64..32, 1u32..100_000, 0u8..3), 1..300),
    ) {
        use webcache_core::ReplacementPolicy;
        let mut p = GdStar::with_fixed_beta(cost, beta);
        let mut tracked = std::collections::HashSet::new();
        let mut last_inflation = 0.0f64;
        for (doc, size, action) in ops {
            let doc = DocId::new(doc);
            let size = ByteSize::new(size as u64);
            match action {
                0 => {
                    if tracked.insert(doc) {
                        p.on_insert(doc, size);
                    } else {
                        p.on_hit(doc, size);
                    }
                }
                1 => {
                    if tracked.contains(&doc) {
                        p.on_hit(doc, size);
                    }
                }
                _ => {
                    if let Some(victim) = p.evict() {
                        tracked.remove(&victim);
                    }
                }
            }
            prop_assert!(p.inflation() >= last_inflation);
            last_inflation = p.inflation();
            if let Some(h) = tracked.iter().next().and_then(|&d| p.h_value(d)) {
                prop_assert!(h >= 0.0);
            }
        }
    }

    /// Packet costs are monotone in size and bounded below by 3 for any
    /// non-empty document.
    #[test]
    fn packet_cost_monotone(a in 1u64..10_000_000, b in 1u64..10_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let cl = CostModel::Packet.cost(ByteSize::new(lo));
        let ch = CostModel::Packet.cost(ByteSize::new(hi));
        prop_assert!(cl <= ch);
        prop_assert!(cl >= 3.0);
    }

    /// Every policy's evict() drains exactly what was inserted, in some
    /// order, with no duplicates.
    #[test]
    fn eviction_drains_exactly_the_inserted_set(
        kind in arb_policy(),
        docs in prop::collection::btree_set(0u64..1_000, 1..100),
    ) {
        let mut p = kind.instantiate();
        for &d in &docs {
            p.on_insert(DocId::new(d), ByteSize::new(d + 1));
        }
        let mut drained = Vec::new();
        while let Some(v) = p.evict() {
            drained.push(v.as_u64());
        }
        drained.sort_unstable();
        let expected: Vec<u64> = docs.into_iter().collect();
        prop_assert_eq!(drained, expected);
    }
}

mod admission_props {
    use proptest::prelude::*;
    use webcache_core::admission::{AdmissionController, AdmissionRule};
    use webcache_trace::{ByteSize, DocId};

    proptest! {
        /// The second-hit filter's memory never exceeds its window, and
        /// an admission is always preceded by exactly one rejection of
        /// the same document since its last admission.
        #[test]
        fn second_hit_memory_is_bounded(
            window in 1usize..64,
            fetches in prop::collection::vec(0u64..40, 1..500),
        ) {
            let mut c = AdmissionController::new(AdmissionRule::SecondHit(window));
            let mut pending: std::collections::HashSet<u64> =
                std::collections::HashSet::new();
            for doc in fetches {
                let admitted = c.admit(DocId::new(doc), ByteSize::new(1));
                prop_assert!(c.remembered() <= window);
                if admitted {
                    // Must have been pending (seen once and not yet
                    // forgotten by the window).
                    prop_assert!(pending.remove(&doc));
                } else {
                    pending.insert(doc);
                }
            }
        }

        /// MaxSize admissions are exactly the size-threshold predicate.
        #[test]
        fn max_size_is_pure_predicate(
            limit in 1u64..1_000_000,
            sizes in prop::collection::vec(0u64..2_000_000, 1..100),
        ) {
            let mut c = AdmissionController::new(AdmissionRule::MaxSize(ByteSize::new(limit)));
            for (i, &s) in sizes.iter().enumerate() {
                prop_assert_eq!(
                    c.admit(DocId::new(i as u64), ByteSize::new(s)),
                    s <= limit
                );
            }
        }
    }
}

mod spec_round_trip {
    use proptest::prelude::*;
    use webcache_core::{AdmissionSpec, PolicyKind, PolicySpec};
    use webcache_trace::ByteSize;

    fn arb_admission() -> impl Strategy<Value = AdmissionSpec> {
        prop_oneof![
            Just(AdmissionSpec::All),
            Just(AdmissionSpec::TinyLfu),
            (1usize..1_000_000).prop_map(AdmissionSpec::SecondHit),
            (1u64..1u64 << 50).prop_map(|b| AdmissionSpec::MaxSize(ByteSize::new(b))),
        ]
    }

    proptest! {
        /// `Display` then `FromStr` is the identity for every spec: any
        /// admission half (arbitrary windows and byte ceilings) composed
        /// with any replacement kind survives the round trip.
        #[test]
        fn display_from_str_is_identity(
            admission in arb_admission(),
            replacement in prop::sample::select(PolicyKind::ALL.to_vec()),
        ) {
            let spec = PolicySpec::new(admission, replacement);
            let reparsed: PolicySpec = spec.to_string().parse().unwrap_or_else(|e| {
                panic!("{spec} failed to re-parse: {e}")
            });
            prop_assert_eq!(reparsed, spec);
        }

        /// The canonical label also parses after lowercasing — the form
        /// a user types on the command line.
        #[test]
        fn lowercased_label_also_parses(
            admission in arb_admission(),
            replacement in prop::sample::select(PolicyKind::ALL.to_vec()),
        ) {
            let spec = PolicySpec::new(admission, replacement);
            let lower: PolicySpec = spec.to_string().to_ascii_lowercase().parse().unwrap();
            prop_assert_eq!(lower, spec);
        }
    }
}
