//! Flight recorder: a fixed-capacity audit trail of cache decisions.
//!
//! Aggregate metrics (PR 4's [`Registry`](crate::Registry)) say *that*
//! hit rates moved; the flight recorder says *why* individual documents
//! were admitted, rejected, or evicted. It keeps the last N decisions in
//! a wrap-around ring of compact [`DecisionRecord`]s — request index,
//! doc id, type, size, event kind, and a per-policy [`Reason`] payload
//! (GreedyDual H/L, LFU-DA key, TinyLFU estimate, ARC/S3-FIFO queue
//! provenance) — cheap enough to leave on during live replay and dump
//! as JSONL when an anomaly fires.
//!
//! ```
//! use webcache_obs::flight::{DecisionRecord, EventKind, FlightRecorder, Reason};
//!
//! let mut ring = FlightRecorder::new(2);
//! for i in 0..5u64 {
//!     ring.record(DecisionRecord {
//!         index: i,
//!         doc: 7,
//!         doc_type: 0,
//!         size: 100,
//!         event: EventKind::Evict,
//!         reason: Reason::greedy_dual(1.5, 0.5),
//!     });
//! }
//! // Capacity 2: only the last two survive, oldest first.
//! let kept: Vec<u64> = ring.iter().map(|r| r.index).collect();
//! assert_eq!(kept, vec![3, 4]);
//! assert_eq!(ring.total(), 5);
//!
//! let dump = ring.to_jsonl();
//! let back = FlightRecorder::parse_jsonl(&dump).unwrap();
//! assert_eq!(back, ring.snapshot());
//! ```
//!
//! The recorder itself is single-threaded; [`SharedRecorder`] wraps it
//! in `Arc<Mutex<..>>` for the serve path where the replay thread writes
//! and HTTP handlers read. [`ReasonChannel`] is the FIFO seam carrying
//! policy-emitted reasons from a [`MetricsSink`](crate::MetricsSink)
//! ([`FlightSink`]) to the observer that stamps them onto events: the
//! cache pushes exactly one reason per eviction (in victim order) and
//! one per admission verdict, and the observer pops in the same order.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::json::{self, Value};
use crate::sink::MetricsSink;

/// What happened to the document at this record's request index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Request served from cache.
    Hit,
    /// Request missed (document absent).
    Miss,
    /// Request missed because the cached copy was stale.
    ModificationMiss,
    /// Fetched document stored.
    Insert,
    /// Fetched document refused by the admission filter.
    AdmissionReject,
    /// Resident document evicted to make room.
    Evict,
}

impl EventKind {
    /// Every kind, in serialization order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Hit,
        EventKind::Miss,
        EventKind::ModificationMiss,
        EventKind::Insert,
        EventKind::AdmissionReject,
        EventKind::Evict,
    ];

    /// Stable wire label (used in JSONL dumps and `/debug/*` payloads).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Hit => "hit",
            EventKind::Miss => "miss",
            EventKind::ModificationMiss => "mod_miss",
            EventKind::Insert => "insert",
            EventKind::AdmissionReject => "admit_reject",
            EventKind::Evict => "evict",
        }
    }

    /// Parses a wire label back into a kind.
    pub fn parse(label: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Which policy mechanism produced a [`Reason`], and therefore how its
/// two scalar payload fields are named on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReasonKind {
    /// No reason attached (plain events, or policies without one).
    None,
    /// GreedyDual family (GDS/GDSF/GD\*): victim H-value and the
    /// inflation value L before this eviction. Fields `h`, `l`.
    GreedyDual,
    /// LFU-DA: victim key (count + age) and raw count. Fields `key`,
    /// `count`.
    LfuDa,
    /// Plain LFU: victim access count. Field `count`.
    Frequency,
    /// SIZE policy: victim byte size. Field `bytes`.
    Size,
    /// TinyLFU admission verdict: sketch frequency estimate vs the
    /// admit threshold. Fields `estimate`, `threshold`.
    TinyLfu,
    /// Second-hit admission verdict: whether the doc was remembered
    /// (1.0) or first-seen (0.0). Field `seen`.
    SecondHit,
    /// Max-size admission verdict: document size vs the ceiling.
    /// Fields `bytes`, `ceiling`.
    MaxSize,
    /// ARC eviction from T1 (recency queue): T1 bytes and the adaptive
    /// target p. Fields `t1_bytes`, `target`.
    ArcT1,
    /// ARC eviction from T2 (frequency queue): same fields.
    ArcT2,
    /// S3-FIFO eviction from the small queue (freq stayed 0).
    /// Field `freq`.
    S3Small,
    /// S3-FIFO eviction from the main queue (second chance exhausted).
    /// Field `freq`.
    S3Main,
}

impl ReasonKind {
    /// Every kind, in serialization order.
    pub const ALL: [ReasonKind; 12] = [
        ReasonKind::None,
        ReasonKind::GreedyDual,
        ReasonKind::LfuDa,
        ReasonKind::Frequency,
        ReasonKind::Size,
        ReasonKind::TinyLfu,
        ReasonKind::SecondHit,
        ReasonKind::MaxSize,
        ReasonKind::ArcT1,
        ReasonKind::ArcT2,
        ReasonKind::S3Small,
        ReasonKind::S3Main,
    ];

    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            ReasonKind::None => "none",
            ReasonKind::GreedyDual => "greedy_dual",
            ReasonKind::LfuDa => "lfu_da",
            ReasonKind::Frequency => "frequency",
            ReasonKind::Size => "size",
            ReasonKind::TinyLfu => "tinylfu",
            ReasonKind::SecondHit => "second_hit",
            ReasonKind::MaxSize => "max_size",
            ReasonKind::ArcT1 => "arc_t1",
            ReasonKind::ArcT2 => "arc_t2",
            ReasonKind::S3Small => "s3_small",
            ReasonKind::S3Main => "s3_main",
        }
    }

    /// Parses a wire label back into a kind.
    pub fn parse(label: &str) -> Option<ReasonKind> {
        ReasonKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Wire names of the two payload fields (`None` when unused).
    pub fn field_names(&self) -> (Option<&'static str>, Option<&'static str>) {
        match self {
            ReasonKind::None => (None, None),
            ReasonKind::GreedyDual => (Some("h"), Some("l")),
            ReasonKind::LfuDa => (Some("key"), Some("count")),
            ReasonKind::Frequency => (Some("count"), None),
            ReasonKind::Size => (Some("bytes"), None),
            ReasonKind::TinyLfu => (Some("estimate"), Some("threshold")),
            ReasonKind::SecondHit => (Some("seen"), None),
            ReasonKind::MaxSize => (Some("bytes"), Some("ceiling")),
            ReasonKind::ArcT1 | ReasonKind::ArcT2 => (Some("t1_bytes"), Some("target")),
            ReasonKind::S3Small | ReasonKind::S3Main => (Some("freq"), None),
        }
    }
}

/// A compact policy "reason" payload: a kind plus up to two scalars
/// whose meaning (and wire names) depend on the kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reason {
    /// Which mechanism produced this reason.
    pub kind: ReasonKind,
    /// First payload scalar (see [`ReasonKind::field_names`]).
    pub a: f64,
    /// Second payload scalar.
    pub b: f64,
}

impl Reason {
    /// The absent reason.
    pub fn none() -> Reason {
        Reason {
            kind: ReasonKind::None,
            a: 0.0,
            b: 0.0,
        }
    }

    /// GreedyDual-family eviction: victim H-value, prior inflation L.
    pub fn greedy_dual(h: f64, l: f64) -> Reason {
        Reason {
            kind: ReasonKind::GreedyDual,
            a: h,
            b: l,
        }
    }

    /// LFU-DA eviction: victim key (count + age) and raw count.
    pub fn lfu_da(key: f64, count: f64) -> Reason {
        Reason {
            kind: ReasonKind::LfuDa,
            a: key,
            b: count,
        }
    }

    /// Plain LFU eviction: victim access count.
    pub fn frequency(count: f64) -> Reason {
        Reason {
            kind: ReasonKind::Frequency,
            a: count,
            b: 0.0,
        }
    }

    /// SIZE eviction: victim byte size.
    pub fn size(bytes: f64) -> Reason {
        Reason {
            kind: ReasonKind::Size,
            a: bytes,
            b: 0.0,
        }
    }

    /// TinyLFU admission verdict: estimate vs threshold.
    pub fn tinylfu(estimate: f64, threshold: f64) -> Reason {
        Reason {
            kind: ReasonKind::TinyLfu,
            a: estimate,
            b: threshold,
        }
    }

    /// Second-hit admission verdict.
    pub fn second_hit(seen: bool) -> Reason {
        Reason {
            kind: ReasonKind::SecondHit,
            a: if seen { 1.0 } else { 0.0 },
            b: 0.0,
        }
    }

    /// Max-size admission verdict.
    pub fn max_size(bytes: f64, ceiling: f64) -> Reason {
        Reason {
            kind: ReasonKind::MaxSize,
            a: bytes,
            b: ceiling,
        }
    }

    /// ARC eviction from T1.
    pub fn arc_t1(t1_bytes: f64, target: f64) -> Reason {
        Reason {
            kind: ReasonKind::ArcT1,
            a: t1_bytes,
            b: target,
        }
    }

    /// ARC eviction from T2.
    pub fn arc_t2(t1_bytes: f64, target: f64) -> Reason {
        Reason {
            kind: ReasonKind::ArcT2,
            a: t1_bytes,
            b: target,
        }
    }

    /// S3-FIFO eviction from the small queue.
    pub fn s3_small(freq: f64) -> Reason {
        Reason {
            kind: ReasonKind::S3Small,
            a: freq,
            b: 0.0,
        }
    }

    /// S3-FIFO eviction from the main queue.
    pub fn s3_main(freq: f64) -> Reason {
        Reason {
            kind: ReasonKind::S3Main,
            a: freq,
            b: 0.0,
        }
    }

    /// Whether any reason is attached.
    pub fn is_some(&self) -> bool {
        self.kind != ReasonKind::None
    }

    /// Renders the JSON object (`{"kind": .., "h": .., "l": ..}`), or
    /// `None` for the absent reason.
    pub fn to_json(&self) -> Option<String> {
        if !self.is_some() {
            return None;
        }
        let mut out = format!("{{\"kind\": \"{}\"", self.kind.label());
        let (fa, fb) = self.kind.field_names();
        if let Some(name) = fa {
            out.push_str(&format!(", \"{name}\": {}", json_f64(self.a)));
        }
        if let Some(name) = fb {
            out.push_str(&format!(", \"{name}\": {}", json_f64(self.b)));
        }
        out.push('}');
        Some(out)
    }

    /// Parses the object rendered by [`Reason::to_json`].
    pub fn from_value(value: &Value) -> Option<Reason> {
        let kind = ReasonKind::parse(value.get("kind")?.as_str()?)?;
        let (fa, fb) = kind.field_names();
        let field = |name: Option<&str>| -> Option<f64> {
            match name {
                Some(name) => value.get(name).and_then(Value::as_f64),
                None => Some(0.0),
            }
        };
        Some(Reason {
            kind,
            a: field(fa)?,
            b: field(fb)?,
        })
    }
}

impl Default for Reason {
    fn default() -> Self {
        Reason::none()
    }
}

/// One cache decision: what happened to which document, and why.
///
/// Types are raw `u64`/`u8` because `webcache-obs` sits below
/// `webcache-core`; the CLI maps `doc_type` back to `DocumentType`
/// labels when rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Global request index at which the decision happened.
    pub index: u64,
    /// Document id (the trace's dense slot or raw id).
    pub doc: u64,
    /// Document type index (`DocumentType::index()`).
    pub doc_type: u8,
    /// Document size in bytes.
    pub size: u64,
    /// What happened.
    pub event: EventKind,
    /// The policy's reasoning, when the mechanism exposes one.
    pub reason: Reason,
}

impl DecisionRecord {
    /// Renders one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"index\": {}, \"doc\": {}, \"type\": {}, \"size\": {}, \"event\": \"{}\"",
            self.index,
            self.doc,
            self.doc_type,
            self.size,
            self.event.label()
        );
        if let Some(reason) = self.reason.to_json() {
            out.push_str(&format!(", \"reason\": {reason}"));
        }
        out.push('}');
        out
    }

    /// Parses a [`Value`] produced by parsing a `to_json` line.
    pub fn from_value(value: &Value) -> Option<DecisionRecord> {
        let num = |key: &str| value.get(key).and_then(Value::as_f64);
        let reason = match value.get("reason") {
            Some(v) => Reason::from_value(v)?,
            None => Reason::none(),
        };
        Some(DecisionRecord {
            index: num("index")? as u64,
            doc: num("doc")? as u64,
            doc_type: num("type")? as u8,
            size: num("size")? as u64,
            event: EventKind::parse(value.get("event")?.as_str()?)?,
            reason,
        })
    }
}

/// Error from [`FlightRecorder::parse_jsonl`]: which line failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRecordError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flight record line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseRecordError {}

/// Fixed-capacity wrap-around ring of [`DecisionRecord`]s.
///
/// Pushing the (N+1)-th record overwrites the oldest; iteration and
/// snapshots always run oldest → newest. `total()` counts every record
/// ever pushed, so `total() - len()` is the number overwritten.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    records: Vec<DecisionRecord>,
    head: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            records: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            total: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained (`min(total, capacity)`).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records ever pushed, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Appends a record, overwriting the oldest once full.
    pub fn record(&mut self, record: DecisionRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Iterates retained records oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &DecisionRecord> {
        let (tail, wrapped) = self.records.split_at(self.head);
        wrapped.iter().chain(tail.iter())
    }

    /// Copies the retained records, oldest → newest.
    pub fn snapshot(&self) -> Vec<DecisionRecord> {
        self.iter().copied().collect()
    }

    /// The newest `n` records, oldest → newest.
    pub fn last(&self, n: usize) -> Vec<DecisionRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.iter().skip(skip).copied().collect()
    }

    /// Retained history for one document, oldest → newest.
    pub fn records_for_doc(&self, doc: u64) -> Vec<DecisionRecord> {
        self.iter().filter(|r| r.doc == doc).copied().collect()
    }

    /// Dumps the retained records as JSONL, oldest → newest.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.iter() {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL dump back into records.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and message for the first
    /// malformed line.
    pub fn parse_jsonl(input: &str) -> Result<Vec<DecisionRecord>, ParseRecordError> {
        let mut records = Vec::new();
        for (i, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| ParseRecordError {
                line: i + 1,
                message: e.to_string(),
            })?;
            let record = DecisionRecord::from_value(&value).ok_or_else(|| ParseRecordError {
                line: i + 1,
                message: "not a decision record".to_owned(),
            })?;
            records.push(record);
        }
        Ok(records)
    }
}

/// Renders an f64 the way the registry's JSON exporter does: integral
/// values without a fraction, non-finite values as null.
fn json_f64(value: f64) -> String {
    if !value.is_finite() {
        "null".to_owned()
    } else if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// A [`FlightRecorder`] behind `Arc<Mutex<..>>`, for the serve path
/// where the replay thread records and HTTP handlers snapshot.
#[derive(Debug, Clone)]
pub struct SharedRecorder(Arc<Mutex<FlightRecorder>>);

impl SharedRecorder {
    /// A shared recorder keeping the last `capacity` records.
    pub fn new(capacity: usize) -> SharedRecorder {
        SharedRecorder(Arc::new(Mutex::new(FlightRecorder::new(capacity))))
    }

    /// Appends a record.
    pub fn record(&self, record: DecisionRecord) {
        self.0.lock().expect("flight recorder lock").record(record);
    }

    /// Copies the retained records, oldest → newest.
    pub fn snapshot(&self) -> Vec<DecisionRecord> {
        self.0.lock().expect("flight recorder lock").snapshot()
    }

    /// The newest `n` records, oldest → newest.
    pub fn last(&self, n: usize) -> Vec<DecisionRecord> {
        self.0.lock().expect("flight recorder lock").last(n)
    }

    /// Retained history for one document.
    pub fn records_for_doc(&self, doc: u64) -> Vec<DecisionRecord> {
        self.0
            .lock()
            .expect("flight recorder lock")
            .records_for_doc(doc)
    }

    /// Dumps the retained records as JSONL.
    pub fn to_jsonl(&self) -> String {
        self.0.lock().expect("flight recorder lock").to_jsonl()
    }

    /// Records ever pushed.
    pub fn total(&self) -> u64 {
        self.0.lock().expect("flight recorder lock").total()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.0.lock().expect("flight recorder lock").capacity()
    }
}

/// Merges the retained records of several recorders (e.g. one per cache
/// shard) into one stream ordered by global request index. Each shard's
/// stream is already index-sorted, so a stable sort costs O(n log n)
/// over nearly-sorted input.
pub fn merge_sorted(recorders: &[SharedRecorder]) -> Vec<DecisionRecord> {
    let mut merged: Vec<DecisionRecord> = recorders
        .iter()
        .flat_map(SharedRecorder::snapshot)
        .collect();
    merged.sort_by_key(|r| r.index);
    merged
}

/// FIFO channel carrying [`Reason`]s from the policy/admission layer to
/// the observer that stamps them onto events. Push and pop orders match
/// because the cache emits reasons in the same order the simulator
/// delivers the corresponding observer events.
#[derive(Debug, Clone, Default)]
pub struct ReasonChannel(Arc<Mutex<VecDeque<Reason>>>);

impl ReasonChannel {
    /// An empty channel.
    pub fn new() -> ReasonChannel {
        ReasonChannel::default()
    }

    /// Enqueues a reason.
    pub fn push(&self, reason: Reason) {
        self.0
            .lock()
            .expect("reason channel lock")
            .push_back(reason);
    }

    /// Dequeues the oldest reason, if any.
    pub fn pop(&self) -> Option<Reason> {
        self.0.lock().expect("reason channel lock").pop_front()
    }

    /// Drops any queued reasons.
    pub fn clear(&self) {
        self.0.lock().expect("reason channel lock").clear();
    }

    /// Queued reason count.
    pub fn len(&self) -> usize {
        self.0.lock().expect("reason channel lock").len()
    }

    /// Whether the channel is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`MetricsSink`] that forwards policy eviction reasons into a
/// [`ReasonChannel`] (and ignores the heap-op/inflation callbacks —
/// those stay the [`Registry`](crate::Registry) probe's job).
#[derive(Debug, Clone, Default)]
pub struct FlightSink {
    evictions: ReasonChannel,
}

impl FlightSink {
    /// A sink pushing eviction reasons into `evictions`.
    pub fn new(evictions: ReasonChannel) -> FlightSink {
        FlightSink { evictions }
    }
}

impl MetricsSink for FlightSink {
    #[inline]
    fn evict_reason(&mut self, reason: Reason) {
        self.evictions.push(reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: u64, event: EventKind, reason: Reason) -> DecisionRecord {
        DecisionRecord {
            index,
            doc: index % 3,
            doc_type: (index % 5) as u8,
            size: 100 + index,
            event,
            reason,
        }
    }

    #[test]
    fn ring_keeps_last_capacity_records_in_order() {
        let mut ring = FlightRecorder::new(4);
        for i in 0..10 {
            ring.record(rec(i, EventKind::Hit, Reason::none()));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total(), 10);
        let kept: Vec<u64> = ring.iter().map(|r| r.index).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(
            ring.last(2).iter().map(|r| r.index).collect::<Vec<_>>(),
            [8, 9]
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = FlightRecorder::new(0);
        ring.record(rec(1, EventKind::Miss, Reason::none()));
        ring.record(rec(2, EventKind::Miss, Reason::none()));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.snapshot()[0].index, 2);
    }

    #[test]
    fn jsonl_round_trips_every_event_and_reason_kind() {
        let reasons = [
            Reason::none(),
            Reason::greedy_dual(1.75, 0.25),
            Reason::lfu_da(12.5, 3.0),
            Reason::frequency(7.0),
            Reason::size(4096.0),
            Reason::tinylfu(5.0, 2.0),
            Reason::second_hit(true),
            Reason::max_size(9000.0, 8192.0),
            Reason::arc_t1(65536.0, 32768.0),
            Reason::arc_t2(65536.0, 32768.0),
            Reason::s3_small(0.0),
            Reason::s3_main(1.0),
        ];
        let mut ring = FlightRecorder::new(100);
        let mut i = 0;
        for event in EventKind::ALL {
            for reason in reasons {
                ring.record(rec(i, event, reason));
                i += 1;
            }
        }
        let parsed = FlightRecorder::parse_jsonl(&ring.to_jsonl()).unwrap();
        assert_eq!(parsed, ring.snapshot());
    }

    #[test]
    fn parse_jsonl_reports_the_offending_line() {
        let input =
            "{\"index\": 1, \"doc\": 2, \"type\": 0, \"size\": 5, \"event\": \"hit\"}\nnot json\n";
        let err = FlightRecorder::parse_jsonl(input).unwrap_err();
        assert_eq!(err.line, 2);
        let input2 = "{\"index\": 1, \"doc\": 2, \"type\": 0, \"size\": 5, \"event\": \"nope\"}\n";
        let err2 = FlightRecorder::parse_jsonl(input2).unwrap_err();
        assert_eq!(err2.line, 1);
        assert!(err2.message.contains("not a decision record"), "{err2}");
    }

    #[test]
    fn records_for_doc_filters_history() {
        let mut ring = FlightRecorder::new(16);
        for i in 0..9 {
            ring.record(rec(i, EventKind::Hit, Reason::none()));
        }
        let doc0: Vec<u64> = ring.records_for_doc(0).iter().map(|r| r.index).collect();
        assert_eq!(doc0, vec![0, 3, 6]);
    }

    #[test]
    fn reason_channel_is_fifo() {
        let ch = ReasonChannel::new();
        ch.push(Reason::frequency(1.0));
        ch.push(Reason::frequency(2.0));
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.pop().unwrap().a, 1.0);
        assert_eq!(ch.pop().unwrap().a, 2.0);
        assert!(ch.pop().is_none());
    }

    #[test]
    fn flight_sink_forwards_evict_reasons() {
        let ch = ReasonChannel::new();
        let mut sink = FlightSink::new(ch.clone());
        sink.evict_reason(Reason::greedy_dual(2.0, 1.0));
        let got = ch.pop().unwrap();
        assert_eq!(got.kind, ReasonKind::GreedyDual);
        assert_eq!((got.a, got.b), (2.0, 1.0));
    }

    #[test]
    fn shared_recorder_is_cloneable_and_consistent() {
        let shared = SharedRecorder::new(3);
        let writer = shared.clone();
        for i in 0..5 {
            writer.record(rec(i, EventKind::Evict, Reason::size(10.0)));
        }
        assert_eq!(shared.total(), 5);
        assert_eq!(
            shared
                .snapshot()
                .iter()
                .map(|r| r.index)
                .collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(shared.records_for_doc(2).len(), 1);
    }
}
