//! A minimal, dependency-free HTTP/1.1 server for observability
//! endpoints.
//!
//! [`HttpServer`] is deliberately tiny: a single-threaded accept loop
//! that parses `GET` requests, hands them to a caller-supplied handler,
//! and writes `Connection: close` responses. It exists to expose
//! `/metrics`, `/healthz` and `/snapshot` from `webcache serve` — a
//! scrape target, not a web framework — so one connection at a time and
//! no keep-alive is the right trade.
//!
//! Shutdown is cooperative: the listener runs non-blocking and the
//! accept loop re-checks a shared [`AtomicBool`] between short sleeps
//! ([`POLL_INTERVAL`]), so setting the flag (e.g. from a SIGINT handler)
//! stops the server within one poll interval. Accepted connections get a
//! read/write timeout so a stalled client cannot wedge the loop.
//!
//! ```no_run
//! use std::sync::atomic::AtomicBool;
//! use webcache_obs::http::{HttpResponse, HttpServer};
//!
//! let server = HttpServer::bind("127.0.0.1:9184").unwrap();
//! let shutdown = AtomicBool::new(false);
//! server
//!     .serve(&shutdown, |req| match req.path.as_str() {
//!         "/healthz" => HttpResponse::json("{\"status\": \"ok\"}"),
//!         _ => HttpResponse::not_found(),
//!     })
//!     .unwrap();
//! ```

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending before
/// re-checking the shutdown flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Default per-connection read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Maximum accepted request head (request line + headers) in bytes.
const MAX_HEAD: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method (always `GET` for requests that reach a
    /// handler; other methods are answered `405` by the server).
    pub method: String,
    /// The path component of the request target (before any `?`).
    pub path: String,
    /// The raw query string (after `?`), if present.
    pub query: Option<String>,
}

/// A response the handler hands back to the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` response with the given content type.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: content_type.to_owned(),
            body: body.into(),
        }
    }

    /// A `200` plain-text response (the Prometheus exposition content
    /// type, which is plain text with a version parameter).
    pub fn text(body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse::ok("text/plain; version=0.0.4; charset=utf-8", body)
    }

    /// A `200` JSON response.
    pub fn json(body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse::ok("application/json", body)
    }

    /// A `200` HTML response (for the `/dash` page).
    pub fn html(body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse::ok("text/html; charset=utf-8", body)
    }

    /// A `404 Not Found` response.
    pub fn not_found() -> HttpResponse {
        HttpResponse::status(404, "not found\n")
    }

    /// A plain-text response with an arbitrary status code.
    pub fn status(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".to_owned(),
            body: body.into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            _ => "Response",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        // Observability responses are live state: `no-store` keeps
        // browsers and intermediaries from replaying a stale /dash or
        // /snapshot.
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The accept-loop server. See the [module docs](self).
#[derive(Debug)]
pub struct HttpServer {
    listener: TcpListener,
    io_timeout: Duration,
}

impl HttpServer {
    /// Binds the listener. `addr` may use port `0` to let the OS pick a
    /// free port (see [`HttpServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures (port in use, permission).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(HttpServer {
            listener,
            io_timeout: IO_TIMEOUT,
        })
    }

    /// Overrides the per-connection read/write timeout (mainly for
    /// tests).
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> HttpServer {
        self.io_timeout = timeout;
        self
    }

    /// The bound address.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the local address of a bound
    /// listener (not observed in practice).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener address")
    }

    /// Runs the accept loop until `shutdown` becomes `true`, passing
    /// each well-formed `GET` request to `handler`. Returns the number
    /// of requests answered (including error responses).
    ///
    /// Per-connection failures (resets, timeouts, malformed requests)
    /// are answered or dropped without taking the loop down.
    ///
    /// # Errors
    ///
    /// Only listener-level failures (e.g. setting non-blocking mode)
    /// abort the loop.
    pub fn serve<H>(&self, shutdown: &AtomicBool, handler: H) -> std::io::Result<u64>
    where
        H: Fn(&HttpRequest) -> HttpResponse,
    {
        self.listener.set_nonblocking(true)?;
        let mut served = 0u64;
        while !shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.handle(stream, &handler).is_ok() {
                        served += 1;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(served)
    }

    /// Services one connection: parse, dispatch, respond.
    fn handle<H>(&self, mut stream: TcpStream, handler: &H) -> std::io::Result<()>
    where
        H: Fn(&HttpRequest) -> HttpResponse,
    {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let mut unread_input = false;
        let response = match read_request(&mut stream) {
            Ok(request) if request.method == "GET" => handler(&request),
            Ok(request) => {
                HttpResponse::status(405, format!("method {} not allowed\n", request.method))
            }
            Err(ReadError::Timeout) => HttpResponse::status(408, "request timeout\n"),
            Err(ReadError::Malformed(why)) => {
                unread_input = true;
                HttpResponse::status(400, format!("{why}\n"))
            }
            Err(ReadError::Io(e)) => return Err(e),
        };
        response.write_to(&mut stream)?;
        if unread_input {
            // The client may still be mid-send; closing now with bytes in
            // our receive buffer would RST the connection and destroy the
            // error response before the client reads it. Briefly drain so
            // the close is a clean FIN.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let mut scratch = [0u8; 4096];
            let mut drained = 0usize;
            while drained < 256 * 1024 {
                match stream.read(&mut scratch) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => drained += n,
                }
            }
        }
        Ok(())
    }
}

enum ReadError {
    Timeout,
    Malformed(&'static str),
    Io(std::io::Error),
}

/// Reads and parses the request head (up to the blank line).
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, ReadError> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head_complete(&head) {
        if head.len() >= MAX_HEAD {
            return Err(ReadError::Malformed("request head too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Malformed("connection closed mid-request")),
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(ReadError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    let text = std::str::from_utf8(&head).map_err(|_| ReadError::Malformed("non-UTF-8 request"))?;
    let request_line = text
        .lines()
        .next()
        .ok_or(ReadError::Malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported protocol version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };
    Ok(HttpRequest {
        method: method.to_owned(),
        path,
        query,
    })
}

/// Whether the buffer already contains the head-terminating blank line.
fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Starts a server with the given handler; returns its address, the
    /// shutdown flag and the join handle (yielding requests served).
    fn start<H>(handler: H) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<u64>)
    where
        H: Fn(&HttpRequest) -> HttpResponse + Send + 'static,
    {
        let server = HttpServer::bind("127.0.0.1:0")
            .unwrap()
            .with_io_timeout(Duration::from_millis(200));
        let addr = server.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let join = std::thread::spawn(move || server.serve(&flag, handler).expect("serve loop"));
        (addr, shutdown, join)
    }

    /// Sends raw bytes, returns the full response text.
    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn get(addr: SocketAddr, target: &str) -> String {
        roundtrip(
            addr,
            &format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
        )
    }

    #[test]
    fn routes_and_shuts_down() {
        let (addr, shutdown, join) = start(|req| match req.path.as_str() {
            "/healthz" => HttpResponse::json("{\"status\": \"ok\"}"),
            "/echo" => HttpResponse::text(format!("q={}", req.query.as_deref().unwrap_or(""))),
            _ => HttpResponse::not_found(),
        });

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(
            health.contains("Content-Type: application/json"),
            "{health}"
        );
        assert!(health.ends_with("{\"status\": \"ok\"}"), "{health}");

        let echo = get(addr, "/echo?a=1&b=2");
        assert!(echo.ends_with("q=a=1&b=2"), "{echo}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        shutdown.store(true, Ordering::Relaxed);
        let served = join.join().unwrap();
        assert_eq!(served, 3);
    }

    #[test]
    fn content_length_matches_body() {
        let (addr, shutdown, join) = start(|_| HttpResponse::text("hello"));
        let resp = get(addr, "/");
        let length: usize = resp
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(length, "hello".len());
        shutdown.store(true, Ordering::Relaxed);
        join.join().unwrap();
    }

    #[test]
    fn every_response_is_no_store_and_html_is_typed() {
        let (addr, shutdown, join) = start(|req| match req.path.as_str() {
            "/dash" => HttpResponse::html("<html></html>"),
            _ => HttpResponse::not_found(),
        });
        let dash = get(addr, "/dash");
        assert!(dash.contains("Cache-Control: no-store\r\n"), "{dash}");
        assert!(
            dash.contains("Content-Type: text/html; charset=utf-8"),
            "{dash}"
        );
        let missing = get(addr, "/nope");
        assert!(missing.contains("Cache-Control: no-store\r\n"), "{missing}");
        shutdown.store(true, Ordering::Relaxed);
        join.join().unwrap();
    }

    #[test]
    fn non_get_is_405_and_garbage_is_400() {
        let (addr, shutdown, join) = start(|_| HttpResponse::text("ok"));
        let post = roundtrip(
            addr,
            "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        let garbage = roundtrip(addr, "NOT-HTTP\r\n\r\n");
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");
        shutdown.store(true, Ordering::Relaxed);
        join.join().unwrap();
    }

    #[test]
    fn stalled_client_gets_timeout_not_wedge() {
        let (addr, shutdown, join) = start(|_| HttpResponse::text("ok"));
        // Connect and send nothing: the server must give up after its
        // io timeout and still answer the next client.
        let mut silent = TcpStream::connect(addr).unwrap();
        let mut out = String::new();
        silent.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
        let ok = get(addr, "/");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        shutdown.store(true, Ordering::Relaxed);
        join.join().unwrap();
    }

    #[test]
    fn oversized_head_is_rejected() {
        let (addr, shutdown, join) = start(|_| HttpResponse::text("ok"));
        let huge = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        let resp = roundtrip(addr, &huge);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        shutdown.store(true, Ordering::Relaxed);
        join.join().unwrap();
    }
}
