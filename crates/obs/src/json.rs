//! A minimal JSON parser.
//!
//! The workspace builds offline — its `serde` is a marker-trait stand-in
//! with no real (de)serialization — so every JSON artifact is rendered
//! by hand. This module provides the matching *reader*: a small
//! recursive-descent parser into a [`Value`] tree, enough to validate
//! the chrome-trace and metrics-snapshot exports in tests and to let the
//! hotpath bench compare itself against the committed
//! `BENCH_hotpath.json` baseline.
//!
//! ```
//! use webcache_obs::json;
//!
//! let v = json::parse(r#"{"name": "replay", "ts": 12, "tags": ["a", "b"]}"#).unwrap();
//! assert_eq!(v.get("name").unwrap().as_str(), Some("replay"));
//! assert_eq!(v.get("ts").unwrap().as_f64(), Some(12.0));
//! assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 2);
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with the offending byte offset on malformed
/// input.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // exports; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number characters");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, []], "d": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(a[2].as_array().unwrap().len(), 0);
        assert_eq!(v.get("d").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"open", "1 2", "[1]]"] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
        let err = parse("[1, }").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn roundtrips_own_string_rendering() {
        let original = "quote \" backslash \\ newline \n tab \t unicode é";
        let rendered = crate::registry::json_string(original);
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(original));
    }

    #[test]
    fn preserves_object_order_and_duplicate_free_access() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("missing"), None);
    }
}
