//! # webcache-obs
//!
//! Observability primitives for the `webcache` workspace, dependency-free
//! and usable from every layer (it sits below `webcache-core` in the
//! crate graph):
//!
//! * [`registry`] — a lightweight metrics registry: [`Counter`],
//!   [`Gauge`], fixed-log2-bucket [`Histogram`] and bounded [`Series`]
//!   handles behind `Arc`s, with Prometheus text exposition
//!   ([`Registry::prometheus_text`]) and a JSON snapshot
//!   ([`Registry::json_snapshot`]).
//! * [`span`] — a span-based [`TraceRecorder`]: named, nested timing
//!   spans on one track per thread, exported as chrome://tracing
//!   "Trace Event Format" JSON ([`chrome_trace_json`]) loadable in
//!   Perfetto.
//! * [`sink`] — the [`MetricsSink`] seam the replacement policies are
//!   generic over. The unit type `()` implements it with empty inline
//!   methods, so un-instrumented policies monomorphize to exactly the
//!   code they had before the seam existed — the same discipline as the
//!   simulator's `Observer`/`NoopObserver` pair.
//! * [`flight`] — a fixed-capacity [`FlightRecorder`] ring of
//!   decision-level audit records ([`DecisionRecord`]) with per-policy
//!   [`Reason`] payloads, JSONL dump/parse, and the [`ReasonChannel`] /
//!   [`FlightSink`] plumbing that carries policy eviction reasons out
//!   through the [`MetricsSink`] seam.
//! * [`json`] — a minimal JSON value parser, used by the schema-validity
//!   tests and the hotpath bench's `--check-regress` mode.
//! * [`log`] — a leveled structured logger emitting one JSON object per
//!   line (JSONL) to stderr, a file, or an in-memory capture buffer.
//! * [`http`] — a minimal std-only HTTP/1.1 server ([`HttpServer`]) for
//!   live observability endpoints (`/metrics`, `/healthz`, `/snapshot`)
//!   with cooperative shutdown via a shared flag.
//! * [`window`] — windowed percentile histograms: a
//!   [`WindowedHistogram`] ring of log2-bucket histograms rotated per
//!   window with lock-free recording and p50/p90/p99/p999 estimation,
//!   plus the [`QuantileGauges`] export helper.
//! * [`tsdb`] — a [`SnapshotRing`] mini-TSDB retaining the last K
//!   flattened registry snapshots for `GET /query` and `/dash`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod http;
pub mod json;
pub mod log;
pub mod registry;
pub mod sink;
pub mod span;
pub mod tsdb;
pub mod window;

pub use flight::{
    merge_sorted, DecisionRecord, EventKind, FlightRecorder, FlightSink, Reason, ReasonChannel,
    ReasonKind, SharedRecorder,
};
pub use http::{HttpRequest, HttpResponse, HttpServer};
pub use log::{FieldValue, Level, LogCapture, Logger};
pub use registry::{
    bucket_bound, bucket_index, Counter, FlatSample, Gauge, Histogram, Registry, Series, BUCKETS,
};
pub use sink::{HeapCost, HeapOp, MetricsSink, PolicyProbe};
pub use span::{chrome_trace_json, SpanEvent, TraceClock, TraceRecorder};
pub use tsdb::SnapshotRing;
pub use window::{quantile_from_buckets, QuantileGauges, WindowedHistogram};
