//! Structured, leveled JSONL event logging.
//!
//! A [`Logger`] writes one JSON object per line to a shared sink —
//! stderr, a file, or any `Write + Send` — with a fixed set of head
//! fields (`ts_ms`, `level`, `component`, `msg`) followed by the
//! caller's key/value fields. The format is deliberately flat so
//! operators can `grep '"level":"warn"'` or pipe the stream into `jq`
//! without schema knowledge:
//!
//! ```text
//! {"ts_ms":1722541893021,"level":"warn","component":"anomaly","msg":"hit-rate collapse","doc_type":"Images","window_rate":0.02,"ewma":0.61}
//! ```
//!
//! Records below the logger's minimum [`Level`] are dropped before any
//! formatting happens; [`Logger::enabled`] lets per-request call sites
//! (e.g. the simulator's trace-level event log) skip argument
//! construction entirely.
//!
//! ```
//! use webcache_obs::log::{Level, Logger};
//!
//! let (logger, capture) = Logger::capture(Level::Info);
//! logger.info("replay", "pass complete", &[("pass", 3u64.into())]);
//! logger.debug("replay", "dropped", &[]); // below Info: not written
//! let lines = capture.lines();
//! assert_eq!(lines.len(), 1);
//! assert!(lines[0].contains("\"component\":\"replay\""));
//! assert!(lines[0].contains("\"pass\":3"));
//! ```

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::registry::{json_f64, json_string};

/// Log severity, ordered `Trace < Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Per-request noise (every simulator access event).
    Trace,
    /// Infrequent per-event detail (evictions, admission rejects).
    Debug,
    /// Operational milestones (run start/end, pass summaries).
    #[default]
    Info,
    /// Conditions needing operator attention (anomaly detections).
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// The lowercase spelling used in records and on the command line.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a (case-insensitive) level name.
    pub fn parse(name: &str) -> Option<Level> {
        match name.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One key/value field of a record. Build via the `From` impls:
/// `("pass", 3u64.into())`, `("rate", 0.5.into())`,
/// `("policy", "LRU".into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string (JSON-escaped on write).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl FieldValue {
    fn render(&self) -> String {
        match self {
            FieldValue::Str(s) => json_string(s),
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => json_f64(*v),
            FieldValue::Bool(v) => v.to_string(),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

struct Inner {
    min: Level,
    sink: Mutex<Box<dyn Write + Send>>,
    records: AtomicU64,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner")
            .field("min", &self.min)
            .field("records", &self.records)
            .finish_non_exhaustive()
    }
}

/// A cheaply clonable handle to a shared JSONL sink.
///
/// All clones share one sink behind a mutex; records are written as one
/// `write_all` per line, so concurrent writers never interleave within a
/// line. Write errors are swallowed (logging must never take the
/// workload down).
#[derive(Debug, Clone)]
pub struct Logger {
    inner: Arc<Inner>,
}

impl Logger {
    /// A logger writing to the given sink, dropping records below `min`.
    pub fn to_writer(sink: Box<dyn Write + Send>, min: Level) -> Logger {
        Logger {
            inner: Arc::new(Inner {
                min,
                sink: Mutex::new(sink),
                records: AtomicU64::new(0),
            }),
        }
    }

    /// A logger writing to stderr.
    pub fn stderr(min: Level) -> Logger {
        Logger::to_writer(Box::new(std::io::stderr()), min)
    }

    /// A logger appending to the file at `path` (created if absent).
    ///
    /// # Errors
    ///
    /// Propagates the underlying open/create failure.
    pub fn to_file(path: &std::path::Path, min: Level) -> std::io::Result<Logger> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Logger::to_writer(Box::new(file), min))
    }

    /// A logger writing into an in-memory buffer, for tests: returns the
    /// logger plus a [`LogCapture`] handle reading the buffer back.
    pub fn capture(min: Level) -> (Logger, LogCapture) {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let capture = LogCapture {
            buf: Arc::clone(&buf),
        };
        (Logger::to_writer(Box::new(SharedBuf(buf)), min), capture)
    }

    /// Whether records at `level` would be written.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level >= self.inner.min
    }

    /// Total records written (across all clones).
    pub fn records(&self) -> u64 {
        self.inner.records.load(Ordering::Relaxed)
    }

    /// Writes one record. `fields` follow the head fields in order;
    /// callers should avoid the reserved keys `ts_ms`, `level`,
    /// `component` and `msg`.
    pub fn log(&self, level: Level, component: &str, msg: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled(level) {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = format!(
            "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"component\":{},\"msg\":{}",
            level.as_str(),
            json_string(component),
            json_string(msg),
        );
        for (key, value) in fields {
            line.push(',');
            line.push_str(&json_string(key));
            line.push(':');
            line.push_str(&value.render());
        }
        line.push_str("}\n");
        let mut sink = self.inner.sink.lock().expect("log sink lock");
        if sink.write_all(line.as_bytes()).is_ok() {
            let _ = sink.flush();
            self.inner.records.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Writes a [`Level::Trace`] record.
    pub fn trace(&self, component: &str, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Trace, component, msg, fields);
    }

    /// Writes a [`Level::Debug`] record.
    pub fn debug(&self, component: &str, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Debug, component, msg, fields);
    }

    /// Writes a [`Level::Info`] record.
    pub fn info(&self, component: &str, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Info, component, msg, fields);
    }

    /// Writes a [`Level::Warn`] record.
    pub fn warn(&self, component: &str, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Warn, component, msg, fields);
    }

    /// Writes a [`Level::Error`] record.
    pub fn error(&self, component: &str, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Error, component, msg, fields);
    }
}

/// `Write` adapter sharing a `Vec<u8>` with a [`LogCapture`].
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("capture lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Reads back what a [`Logger::capture`] logger wrote.
#[derive(Debug, Clone)]
pub struct LogCapture {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl LogCapture {
    /// The captured bytes as one string.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock().expect("capture lock")).into_owned()
    }

    /// The captured records, one JSON document per element.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().map(str::to_owned).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parse() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn records_are_one_json_object_per_line() {
        let (logger, capture) = Logger::capture(Level::Trace);
        logger.info(
            "test",
            "hello",
            &[
                ("count", 7u64.into()),
                ("rate", 0.25.into()),
                ("ok", true.into()),
                ("name", "GD*(P)".into()),
            ],
        );
        logger.warn("test", "second", &[]);
        let lines = capture.lines();
        assert_eq!(lines.len(), 2);
        let parsed = crate::json::parse(&lines[0]).expect("line 0 parses");
        assert_eq!(parsed.get("level").unwrap().as_str(), Some("info"));
        assert_eq!(parsed.get("component").unwrap().as_str(), Some("test"));
        assert_eq!(parsed.get("msg").unwrap().as_str(), Some("hello"));
        assert_eq!(parsed.get("count").unwrap().as_f64(), Some(7.0));
        assert_eq!(parsed.get("rate").unwrap().as_f64(), Some(0.25));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("GD*(P)"));
        assert!(parsed.get("ts_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(crate::json::parse(&lines[1]).is_ok());
        assert_eq!(logger.records(), 2);
    }

    #[test]
    fn min_level_filters() {
        let (logger, capture) = Logger::capture(Level::Warn);
        assert!(!logger.enabled(Level::Info));
        assert!(logger.enabled(Level::Error));
        logger.trace("c", "a", &[]);
        logger.debug("c", "b", &[]);
        logger.info("c", "c", &[]);
        logger.warn("c", "d", &[]);
        logger.error("c", "e", &[]);
        assert_eq!(capture.lines().len(), 2);
        assert_eq!(logger.records(), 2);
    }

    #[test]
    fn escaping_handles_hostile_strings() {
        let (logger, capture) = Logger::capture(Level::Info);
        logger.info(
            "we\"ird",
            "line\nbreak\\slash",
            &[("k\"ey", "v\nal".into())],
        );
        let lines = capture.lines();
        assert_eq!(lines.len(), 1, "newline in message must stay escaped");
        let parsed = crate::json::parse(&lines[0]).expect("hostile record parses");
        assert_eq!(
            parsed.get("msg").unwrap().as_str(),
            Some("line\nbreak\\slash")
        );
    }

    #[test]
    fn clones_share_the_sink_and_counters() {
        let (logger, capture) = Logger::capture(Level::Info);
        let clone = logger.clone();
        logger.info("a", "x", &[]);
        clone.info("b", "y", &[]);
        assert_eq!(capture.lines().len(), 2);
        assert_eq!(logger.records(), 2);
    }

    #[test]
    fn file_logger_appends() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "webcache-obs-log-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let logger = Logger::to_file(&path, Level::Info).unwrap();
            logger.info("file", "first", &[]);
        }
        {
            let logger = Logger::to_file(&path, Level::Info).unwrap();
            logger.info("file", "second", &[]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let (logger, capture) = Logger::capture(Level::Info);
        logger.info("c", "m", &[("bad", f64::NAN.into())]);
        assert!(capture.contents().contains("\"bad\":null"));
    }
}
