//! A lightweight metrics registry.
//!
//! A [`Registry`] hands out cheap, clonable handles — [`Counter`],
//! [`Gauge`], [`Histogram`] and [`Series`] — whose hot-path operations
//! are single atomic instructions (the bounded [`Series`] takes a short
//! mutex, and is only touched on rare events such as evictions). The
//! registry itself is an `Arc`-shared list of metric descriptors, walked
//! once at export time:
//!
//! * [`Registry::prometheus_text`] renders the Prometheus text
//!   exposition format (`# HELP` / `# TYPE` headers, cumulative `le`
//!   histogram buckets, `_count` / `_sum` samples);
//! * [`Registry::json_snapshot`] renders a hand-rolled JSON document
//!   with the same data plus the full sampled values of every series.
//!
//! Histograms use **fixed log2 buckets**: bucket `b` has the upper bound
//! `2^b`, so observations need no configuration and bucket lookup is a
//! `leading_zeros` instruction. This matches the integer distributions
//! the simulator cares about (sift depths, comparison counts, eviction
//! scan lengths), which span a few powers of two.
//!
//! ```
//! use webcache_obs::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("webcache_hits_total", "Cache hits.", &[("policy", "LRU")]);
//! hits.inc();
//! hits.add(2);
//! let text = registry.prometheus_text();
//! assert!(text.contains("webcache_hits_total{policy=\"LRU\"} 3"));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: finite upper bounds `2^0 .. 2^31`, plus
/// a final catch-all (`+Inf`) bucket.
pub const BUCKETS: usize = 33;

/// Default number of retained samples in a [`Series`] before it starts
/// thinning (keeping every other sample and doubling its stride).
const SERIES_TARGET: usize = 256;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as its bit pattern in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCells {
    /// `buckets[b]` counts observations in `(2^(b-1), 2^b]` (bucket 0:
    /// `v <= 1`); the last bucket catches everything larger than the
    /// largest finite bound.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A histogram over non-negative integers with fixed log2 buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

/// The bucket index for an observation: the smallest `b` with
/// `v <= 2^b`, clamped to the catch-all bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The finite upper bound of bucket `b` (the catch-all has none).
pub fn bucket_bound(b: usize) -> Option<u64> {
    (b < BUCKETS - 1).then(|| 1u64 << b)
}

impl Histogram {
    /// A histogram not (yet) attached to any registry; pair with
    /// [`Registry::attach_histogram`] to export it later.
    pub fn detached() -> Self {
        Histogram(Arc::new(HistogramCells::default()))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|b| self.0.buckets[b].load(Ordering::Relaxed))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::detached()
    }
}

impl Counter {
    /// A counter not (yet) attached to any registry; pair with
    /// [`Registry::attach_counter`] to export it later.
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::detached()
    }
}

impl Gauge {
    /// A gauge not (yet) attached to any registry; pair with
    /// [`Registry::attach_gauge`] to export it later.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::detached()
    }
}

#[derive(Debug)]
struct SeriesCells {
    values: Vec<f64>,
    /// Every `stride`-th push is retained.
    stride: u64,
    /// Total pushes seen (including dropped ones).
    seen: u64,
}

/// A bounded trajectory of `f64` samples (e.g. the GD\* inflation value
/// `L` over the run).
///
/// Pushes are recorded at a deterministic stride: once the retained
/// vector reaches twice [`SERIES_TARGET`] samples, every other sample is
/// dropped and the stride doubles, so memory stays bounded while the
/// retained points remain evenly spaced over the whole run.
#[derive(Debug, Clone)]
pub struct Series(Arc<Mutex<SeriesCells>>);

impl Series {
    /// Appends a sample (subject to the retention stride).
    pub fn push(&self, v: f64) {
        let mut cells = self.0.lock().expect("series lock");
        if cells.seen.is_multiple_of(cells.stride) {
            cells.values.push(v);
            if cells.values.len() >= 2 * SERIES_TARGET {
                let kept: Vec<f64> = cells.values.iter().copied().step_by(2).collect();
                cells.values = kept;
                cells.stride *= 2;
            }
        }
        cells.seen += 1;
    }

    /// The retained samples, oldest first.
    pub fn values(&self) -> Vec<f64> {
        self.0.lock().expect("series lock").values.clone()
    }

    /// Total samples pushed (including ones thinned away).
    pub fn seen(&self) -> u64 {
        self.0.lock().expect("series lock").seen
    }

    /// The current retention stride (1 until the first thinning).
    pub fn stride(&self) -> u64 {
        self.0.lock().expect("series lock").stride
    }
}

/// One scalar sample produced by [`Registry::flat_samples`]: a metric
/// name (histograms flatten to `_count`/`_sum`), its label set, and the
/// current value.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatSample {
    /// The exported sample name.
    pub name: String,
    /// Label key/value pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The current value (counters and histogram counts cast to `f64`).
    pub value: f64,
}

#[derive(Debug)]
enum Cells {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Series(Series),
}

#[derive(Debug)]
struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    cells: Cells,
}

/// The metric collection: hands out handles, renders exports.
///
/// Cloning shares the underlying collection; registration order is
/// preserved in both export formats. Several metrics may share a name
/// (a *family*) as long as their label sets differ and their kinds
/// agree — the exporters group them under one `# TYPE` header.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<Vec<Metric>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], cells: Cells) -> &Self {
        assert!(
            valid_metric_name(name),
            "invalid Prometheus metric name: {name:?}"
        );
        for &(k, _) in labels {
            assert!(
                valid_label_name(k),
                "invalid Prometheus label name: {k:?} (metric {name:?})"
            );
        }
        self.metrics.lock().expect("registry lock").push(Metric {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
            cells,
        });
        self
    }

    /// Registers a counter and returns its handle.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let handle = Counter(Arc::new(AtomicU64::new(0)));
        self.register(name, help, labels, Cells::Counter(handle.clone()));
        handle
    }

    /// Registers a gauge (initially 0) and returns its handle.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let handle = Gauge(Arc::new(AtomicU64::new(0f64.to_bits())));
        self.register(name, help, labels, Cells::Gauge(handle.clone()));
        handle
    }

    /// Registers a log2-bucket histogram and returns its handle.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let handle = Histogram(Arc::new(HistogramCells::default()));
        self.register(name, help, labels, Cells::Histogram(handle.clone()));
        handle
    }

    /// Registers an existing (detached) counter handle so it shows up in
    /// both exports — the instrumented code keeps its original handle.
    pub fn attach_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], h: &Counter) {
        self.register(name, help, labels, Cells::Counter(h.clone()));
    }

    /// Registers an existing (detached) gauge handle.
    pub fn attach_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], h: &Gauge) {
        self.register(name, help, labels, Cells::Gauge(h.clone()));
    }

    /// Registers an existing (detached) histogram handle.
    pub fn attach_histogram(&self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.register(name, help, labels, Cells::Histogram(h.clone()));
    }

    /// Registers a bounded sample series and returns its handle.
    pub fn series(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Series {
        let handle = Series(Arc::new(Mutex::new(SeriesCells {
            values: Vec::new(),
            stride: 1,
            seen: 0,
        })));
        self.register(name, help, labels, Cells::Series(handle.clone()));
        handle
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("registry lock").len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens every metric into scalar samples for time-series capture
    /// (see `tsdb::SnapshotRing`).
    ///
    /// Counters and gauges yield one sample each under their registered
    /// name; histograms yield `<name>_count` and `<name>_sum`; series are
    /// skipped (they are already trajectories).
    pub fn flat_samples(&self) -> Vec<FlatSample> {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut out = Vec::with_capacity(metrics.len());
        for m in metrics.iter() {
            match &m.cells {
                Cells::Counter(c) => out.push(FlatSample {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    value: c.get() as f64,
                }),
                Cells::Gauge(g) => out.push(FlatSample {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    value: g.get(),
                }),
                Cells::Histogram(h) => {
                    out.push(FlatSample {
                        name: format!("{}_count", m.name),
                        labels: m.labels.clone(),
                        value: h.count() as f64,
                    });
                    out.push(FlatSample {
                        name: format!("{}_sum", m.name),
                        labels: m.labels.clone(),
                        value: h.sum() as f64,
                    });
                }
                Cells::Series(_) => {}
            }
        }
        out
    }

    /// Renders the Prometheus text exposition format.
    ///
    /// Counters and gauges render as single samples; histograms render
    /// cumulative `_bucket{le=...}` samples (up to the highest non-empty
    /// bucket, then `+Inf`) plus `_sum` and `_count`; series render as a
    /// gauge family with one sample per retained point, indexed by a
    /// `sample` label.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.metrics.lock().expect("registry lock");
        let mut out = String::new();
        let mut seen_headers: Vec<String> = Vec::new();
        for m in metrics.iter() {
            if !seen_headers.iter().any(|n| n == &m.name) {
                seen_headers.push(m.name.clone());
                let kind = match m.cells {
                    Cells::Counter(_) => "counter",
                    Cells::Gauge(_) | Cells::Series(_) => "gauge",
                    Cells::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
                let _ = writeln!(out, "# TYPE {} {kind}", m.name);
            }
            match &m.cells {
                Cells::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels, &[]), c.get());
                }
                Cells::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        label_block(&m.labels, &[]),
                        prom_f64(g.get())
                    );
                }
                Cells::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let top = counts
                        .iter()
                        .rposition(|&c| c > 0)
                        .map_or(0, |b| (b + 1).min(BUCKETS - 1));
                    let mut cumulative = 0u64;
                    for (b, &count) in counts.iter().enumerate().take(top) {
                        cumulative += count;
                        let bound = bucket_bound(b).expect("finite bucket");
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            m.name,
                            label_block(&m.labels, &[("le", &bound.to_string())]),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_block(&m.labels, &[("le", "+Inf")]),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        label_block(&m.labels, &[]),
                        h.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        label_block(&m.labels, &[]),
                        h.count()
                    );
                }
                Cells::Series(s) => {
                    for (i, v) in s.values().iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            m.name,
                            label_block(&m.labels, &[("sample", &i.to_string())]),
                            prom_f64(*v)
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders a JSON snapshot of every metric.
    ///
    /// Histogram buckets are **non-cumulative** here (per-bucket counts
    /// with their upper bound; the catch-all bucket's bound is the
    /// string `"+Inf"`); series carry their full retained sample vector,
    /// total push count, and current stride.
    pub fn json_snapshot(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.metrics.lock().expect("registry lock");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        let mut series = Vec::new();
        for m in metrics.iter() {
            let head = format!(
                "\"name\": {}, \"labels\": {}",
                json_string(&m.name),
                json_labels(&m.labels)
            );
            match &m.cells {
                Cells::Counter(c) => counters.push(format!("{{{head}, \"value\": {}}}", c.get())),
                Cells::Gauge(g) => {
                    gauges.push(format!("{{{head}, \"value\": {}}}", json_f64(g.get())))
                }
                Cells::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut buckets = String::from("[");
                    let mut first = true;
                    for (b, &count) in counts.iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        if !first {
                            buckets.push_str(", ");
                        }
                        first = false;
                        match bucket_bound(b) {
                            Some(bound) => {
                                let _ = write!(buckets, "{{\"le\": {bound}, \"count\": {count}}}");
                            }
                            None => {
                                let _ = write!(buckets, "{{\"le\": \"+Inf\", \"count\": {count}}}");
                            }
                        }
                    }
                    buckets.push(']');
                    histograms.push(format!(
                        "{{{head}, \"count\": {}, \"sum\": {}, \"buckets\": {buckets}}}",
                        h.count(),
                        h.sum()
                    ));
                }
                Cells::Series(s) => {
                    let values: Vec<String> = s.values().iter().map(|&v| json_f64(v)).collect();
                    series.push(format!(
                        "{{{head}, \"seen\": {}, \"stride\": {}, \"values\": [{}]}}",
                        s.seen(),
                        s.stride(),
                        values.join(", ")
                    ));
                }
            }
        }
        let section = |items: Vec<String>| -> String {
            if items.is_empty() {
                "[]".to_owned()
            } else {
                format!("[\n    {}\n  ]", items.join(",\n    "))
            }
        };
        format!(
            "{{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"series\": {}\n}}\n",
            section(counters),
            section(gauges),
            section(histograms),
            section(series)
        )
    }
}

/// Renders `{a="x",b="y"}` (empty string when there are no labels).
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes `# HELP` text (backslash and newline only — quotes are legal
/// in help text per the exposition format).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Whether `name` is a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a valid Prometheus label name:
/// `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Formats an `f64` for the Prometheus text format (`+Inf`/`-Inf`/`NaN`
/// spellings for non-finite values).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Formats an `f64` as a JSON value (non-finite values become `null` —
/// JSON has no spelling for them).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders a JSON string literal with escaping.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
        .collect();
    format!("{{{}}}", rendered.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total", "A counter.", &[]);
        let g = r.gauge("g", "A gauge.", &[("policy", "GD*(P)")]);
        c.add(41);
        c.inc();
        g.set(1.5);
        assert_eq!(c.get(), 42);
        assert_eq!(g.get(), 1.5);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE c_total counter"), "{text}");
        assert!(text.contains("c_total 42"), "{text}");
        assert!(text.contains("g{policy=\"GD*(P)\"} 1.5"), "{text}");
    }

    #[test]
    fn bucket_index_is_smallest_upper_bound() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 31), BUCKETS - 2);
        assert_eq!(bucket_index((1 << 31) + 1), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_prometheus() {
        let r = Registry::new();
        let h = r.histogram("h", "A histogram.", &[]);
        for v in [1, 1, 2, 3, 8] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 15);
        let text = r.prometheus_text();
        assert!(text.contains("h_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"2\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"4\"} 4"), "{text}");
        assert!(text.contains("h_bucket{le=\"8\"} 5"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("h_sum 15"), "{text}");
        assert!(text.contains("h_count 5"), "{text}");
        // No empty trailing finite buckets.
        assert!(!text.contains("le=\"16\""), "{text}");
    }

    #[test]
    fn series_thins_deterministically() {
        let r = Registry::new();
        let s = r.series("l", "Inflation trajectory.", &[]);
        for i in 0..10_000 {
            s.push(i as f64);
        }
        assert_eq!(s.seen(), 10_000);
        let values = s.values();
        assert!(
            values.len() < 2 * SERIES_TARGET,
            "bounded: {}",
            values.len()
        );
        assert!(values.len() >= SERIES_TARGET / 2, "not over-thinned");
        // Retained samples stay evenly spaced and ordered.
        let stride = s.stride() as f64;
        for w in values.windows(2) {
            assert_eq!(w[1] - w[0], stride);
        }
        assert_eq!(values[0], 0.0, "first sample always retained");
    }

    #[test]
    fn families_share_one_header() {
        let r = Registry::new();
        r.counter("ops_total", "Ops.", &[("op", "insert")]).inc();
        r.counter("ops_total", "Ops.", &[("op", "pop")]).add(2);
        let text = r.prometheus_text();
        assert_eq!(text.matches("# TYPE ops_total counter").count(), 1);
        assert!(text.contains("ops_total{op=\"insert\"} 1"));
        assert!(text.contains("ops_total{op=\"pop\"} 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c", "x", &[("p", "a\"b\\c\nd")]).inc();
        let text = r.prometheus_text();
        assert!(text.contains(r#"p="a\"b\\c\nd""#), "{text}");
    }

    #[test]
    fn json_snapshot_is_parseable_and_complete() {
        let r = Registry::new();
        r.counter("c_total", "C.", &[("k", "v")]).add(7);
        r.gauge("g", "G.", &[]).set(0.25);
        let h = r.histogram("h", "H.", &[]);
        h.observe(3);
        h.observe(100);
        let s = r.series("s", "S.", &[]);
        s.push(1.0);
        s.push(2.5);
        let snapshot = r.json_snapshot();
        let value = crate::json::parse(&snapshot).expect("snapshot parses");
        let counters = value.get("counters").unwrap().as_array().unwrap();
        assert_eq!(counters[0].get("value").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            counters[0]
                .get("labels")
                .unwrap()
                .get("k")
                .unwrap()
                .as_str(),
            Some("v")
        );
        let hist = &value.get("histograms").unwrap().as_array().unwrap()[0];
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(hist.get("sum").unwrap().as_f64(), Some(103.0));
        assert_eq!(hist.get("buckets").unwrap().as_array().unwrap().len(), 2);
        let series = &value.get("series").unwrap().as_array().unwrap()[0];
        assert_eq!(series.get("seen").unwrap().as_f64(), Some(2.0));
        let vals = series.get("values").unwrap().as_array().unwrap();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[1].as_f64(), Some(2.5));
    }

    #[test]
    fn label_escaping_covers_each_special_byte() {
        let r = Registry::new();
        r.counter("lone_backslash", "x", &[("p", "a\\b")]).inc();
        r.counter("lone_quote", "x", &[("p", "a\"b")]).inc();
        r.counter("lone_newline", "x", &[("p", "a\nb")]).inc();
        let text = r.prometheus_text();
        assert!(text.contains(r#"lone_backslash{p="a\\b"} 1"#), "{text}");
        assert!(text.contains(r#"lone_quote{p="a\"b"} 1"#), "{text}");
        assert!(text.contains(r#"lone_newline{p="a\nb"} 1"#), "{text}");
        // Every sample still occupies exactly one physical line.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
        assert_eq!(text.lines().count(), 3 * 3, "no sample spans two lines");
    }

    #[test]
    fn help_text_is_escaped() {
        let r = Registry::new();
        r.counter("c_total", "line one\nline two \\ backslash", &[])
            .inc();
        let text = r.prometheus_text();
        assert!(
            text.contains(r"# HELP c_total line one\nline two \\ backslash"),
            "{text}"
        );
        assert_eq!(text.lines().count(), 3, "HELP must stay on one line");
    }

    #[test]
    fn metric_name_validity() {
        assert!(valid_metric_name("webcache_hits_total"));
        assert!(valid_metric_name("_private"));
        assert!(valid_metric_name("ns:subsystem:metric"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name("has-dash"));
        assert!(valid_label_name("doc_type"));
        assert!(!valid_label_name("le:colon"));
        assert!(!valid_label_name("1digit"));
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus metric name")]
    fn bad_metric_name_panics() {
        Registry::new().counter("bad name", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus label name")]
    fn bad_label_name_panics() {
        Registry::new().counter("good_name", "x", &[("bad-label", "v")]);
    }

    #[test]
    fn non_finite_values_render_safely() {
        let r = Registry::new();
        r.gauge("g", "G.", &[]).set(f64::INFINITY);
        assert!(r.prometheus_text().contains("g +Inf"));
        let snapshot = r.json_snapshot();
        assert!(snapshot.contains("\"value\": null"), "{snapshot}");
        assert!(crate::json::parse(&snapshot).is_ok());
    }
}
