//! The zero-cost policy instrumentation seam.
//!
//! Replacement policies that maintain a priority heap are generic over a
//! [`MetricsSink`] with a default of `()`. The unit implementation has
//! empty `#[inline(always)]` methods, so the un-instrumented
//! monomorphization compiles to exactly the pre-seam code — the same
//! discipline as the simulator's `Observer` / `NoopObserver` pair. The
//! `webcache profile` command swaps in a [`PolicyProbe`], which routes
//! every event into [`Registry`] handles.

use crate::registry::{Counter, Gauge, Histogram, Registry, Series};

/// The heap operations a policy reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapOp {
    /// A new key entered the heap.
    Insert,
    /// An existing key's priority changed in place.
    Update,
    /// The minimum was removed (an eviction).
    PopMin,
    /// An arbitrary key was removed (invalidation / modification miss).
    Remove,
}

impl HeapOp {
    /// All operations, in label order.
    pub const ALL: [HeapOp; 4] = [
        HeapOp::Insert,
        HeapOp::Update,
        HeapOp::PopMin,
        HeapOp::Remove,
    ];

    /// The stable label used in metric label values.
    pub fn label(self) -> &'static str {
        match self {
            HeapOp::Insert => "insert",
            HeapOp::Update => "update",
            HeapOp::PopMin => "pop_min",
            HeapOp::Remove => "remove",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// The cost of one heap operation, measured inside the sift loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapCost {
    /// Number of element swaps performed while sifting (the depth the
    /// key travelled).
    pub sift_steps: u32,
    /// Number of key comparisons evaluated.
    pub comparisons: u32,
}

impl HeapCost {
    /// A zero cost (no sift, no comparison).
    pub const ZERO: HeapCost = HeapCost {
        sift_steps: 0,
        comparisons: 0,
    };
}

impl std::ops::AddAssign for HeapCost {
    #[inline]
    fn add_assign(&mut self, rhs: HeapCost) {
        self.sift_steps += rhs.sift_steps;
        self.comparisons += rhs.comparisons;
    }
}

impl std::ops::Add for HeapCost {
    type Output = HeapCost;

    #[inline]
    fn add(mut self, rhs: HeapCost) -> HeapCost {
        self += rhs;
        self
    }
}

/// Receives policy-internal events.
///
/// Every method has an empty `#[inline(always)]` default, and the unit
/// type implements the trait with those defaults, so a policy
/// instantiated with `M = ()` pays nothing — the calls vanish at
/// monomorphization. (The hotpath bench's `instr-off` column holds this
/// to within noise of the pre-seam baseline.)
pub trait MetricsSink: std::fmt::Debug + Send + 'static {
    /// A heap operation completed with the given measured cost.
    #[inline(always)]
    fn heap_op(&mut self, op: HeapOp, cost: HeapCost) {
        let _ = (op, cost);
    }

    /// The policy's inflation value (GreedyDual `L`, LFU-DA cache age)
    /// advanced to `l` on an eviction.
    #[inline(always)]
    fn inflation(&mut self, l: f64) {
        let _ = l;
    }

    /// The policy chose an eviction victim for the stated reason.
    ///
    /// Called exactly once per `evict()` victim, in victim order, so a
    /// flight recorder can pair reasons with the cache's eviction
    /// events FIFO-style (see [`crate::flight`]).
    #[inline(always)]
    fn evict_reason(&mut self, reason: crate::flight::Reason) {
        let _ = reason;
    }
}

/// The no-op sink: the default for every policy.
impl MetricsSink for () {}

/// A [`MetricsSink`] backed by [`Registry`] handles.
///
/// Registers, per policy label:
///
/// * `webcache_heap_ops_total{policy, op}` — operation counts;
/// * `webcache_heap_sift_steps{policy, op}` — sift-depth histograms;
/// * `webcache_heap_comparisons_total{policy, op}` — key comparisons;
/// * `webcache_policy_inflation_events_total{policy}` — inflation steps;
/// * `webcache_policy_inflation_l{policy}` — the latest `L` value;
/// * `webcache_policy_inflation_l_trajectory{policy}` — a bounded
///   [`Series`] of `L` over the run.
#[derive(Debug, Clone)]
pub struct PolicyProbe {
    ops: [Counter; 4],
    sift_steps: [Histogram; 4],
    comparisons: [Counter; 4],
    inflation_events: Counter,
    inflation_l: Gauge,
    inflation_trajectory: Series,
}

impl PolicyProbe {
    /// Registers the probe's metric families for `policy_label`.
    pub fn register(registry: &Registry, policy_label: &str) -> Self {
        let ops = HeapOp::ALL.map(|op| {
            registry.counter(
                "webcache_heap_ops_total",
                "Priority-heap operations performed by the policy.",
                &[("policy", policy_label), ("op", op.label())],
            )
        });
        let sift_steps = HeapOp::ALL.map(|op| {
            registry.histogram(
                "webcache_heap_sift_steps",
                "Sift depth (element swaps) per heap operation.",
                &[("policy", policy_label), ("op", op.label())],
            )
        });
        let comparisons = HeapOp::ALL.map(|op| {
            registry.counter(
                "webcache_heap_comparisons_total",
                "Key comparisons evaluated inside heap sift loops.",
                &[("policy", policy_label), ("op", op.label())],
            )
        });
        let policy = [("policy", policy_label)];
        PolicyProbe {
            ops,
            sift_steps,
            comparisons,
            inflation_events: registry.counter(
                "webcache_policy_inflation_events_total",
                "Evictions that advanced the policy's inflation value.",
                &policy,
            ),
            inflation_l: registry.gauge(
                "webcache_policy_inflation_l",
                "Latest inflation value (GreedyDual L / LFU-DA cache age).",
                &policy,
            ),
            inflation_trajectory: registry.series(
                "webcache_policy_inflation_l_trajectory",
                "Inflation value sampled at each eviction (bounded, stride-thinned).",
                &policy,
            ),
        }
    }
}

impl MetricsSink for PolicyProbe {
    #[inline]
    fn heap_op(&mut self, op: HeapOp, cost: HeapCost) {
        let i = op.index();
        self.ops[i].inc();
        self.sift_steps[i].observe(u64::from(cost.sift_steps));
        self.comparisons[i].add(u64::from(cost.comparisons));
    }

    #[inline]
    fn inflation(&mut self, l: f64) {
        self.inflation_events.inc();
        self.inflation_l.set(l);
        self.inflation_trajectory.push(l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_cost_adds_componentwise() {
        let mut a = HeapCost {
            sift_steps: 2,
            comparisons: 5,
        };
        a += HeapCost {
            sift_steps: 1,
            comparisons: 3,
        };
        assert_eq!(
            a,
            HeapCost {
                sift_steps: 3,
                comparisons: 8
            }
        );
        assert_eq!(HeapCost::ZERO + a, a);
    }

    #[test]
    fn unit_sink_is_a_noop() {
        let mut sink = ();
        sink.heap_op(HeapOp::Insert, HeapCost::ZERO);
        sink.inflation(1.5);
    }

    #[test]
    fn probe_routes_events_into_the_registry() {
        let registry = Registry::new();
        let mut probe = PolicyProbe::register(&registry, "GD*(P)");
        probe.heap_op(
            HeapOp::Insert,
            HeapCost {
                sift_steps: 3,
                comparisons: 4,
            },
        );
        probe.heap_op(
            HeapOp::Insert,
            HeapCost {
                sift_steps: 1,
                comparisons: 2,
            },
        );
        probe.heap_op(HeapOp::PopMin, HeapCost::ZERO);
        probe.inflation(0.5);
        probe.inflation(0.75);
        let text = registry.prometheus_text();
        assert!(
            text.contains("webcache_heap_ops_total{policy=\"GD*(P)\",op=\"insert\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("webcache_heap_ops_total{policy=\"GD*(P)\",op=\"pop_min\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("webcache_heap_comparisons_total{policy=\"GD*(P)\",op=\"insert\"} 6"),
            "{text}"
        );
        assert!(
            text.contains("webcache_heap_sift_steps_count{policy=\"GD*(P)\",op=\"insert\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("webcache_policy_inflation_events_total{policy=\"GD*(P)\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("webcache_policy_inflation_l{policy=\"GD*(P)\"} 0.75"),
            "{text}"
        );
        assert!(
            text.contains(
                "webcache_policy_inflation_l_trajectory{policy=\"GD*(P)\",sample=\"0\"} 0.5"
            ),
            "{text}"
        );
    }

    #[test]
    fn op_labels_are_stable() {
        let labels: Vec<_> = HeapOp::ALL.iter().map(|op| op.label()).collect();
        assert_eq!(labels, ["insert", "update", "pop_min", "remove"]);
        for op in HeapOp::ALL {
            assert_eq!(HeapOp::ALL[op.index()], op);
        }
    }
}
