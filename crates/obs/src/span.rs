//! Span-based timing and chrome-trace export.
//!
//! A [`TraceRecorder`] records named, nested timing spans on one *track*
//! (a thread lane in the viewer). All recorders of a profiling session
//! share a [`TraceClock`] so their timestamps are comparable, and
//! [`chrome_trace_json`] renders them as Chrome "Trace Event Format"
//! JSON — complete (`"ph": "X"`) duration events plus `thread_name`
//! metadata — which loads directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`.
//!
//! ```
//! use webcache_obs::{chrome_trace_json, TraceClock, TraceRecorder};
//!
//! let clock = TraceClock::new();
//! let mut rec = TraceRecorder::new(&clock, 0, "main");
//! rec.begin("replay");
//! rec.begin("warmup");
//! rec.end();
//! rec.end();
//! let json = chrome_trace_json(&[rec]);
//! assert!(json.contains("\"ph\": \"X\""));
//! assert!(json.contains("\"name\": \"warmup\""));
//! ```

use std::time::Instant;

/// The shared time base of a profiling session.
///
/// Every recorder created from the same clock reports microseconds since
/// this epoch, so spans from different worker threads line up in the
/// viewer.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// Starts the clock (epoch = now).
    pub fn new() -> Self {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

/// One closed span: a complete (`X`) chrome-trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Start, in microseconds since the session clock's epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Records nested spans on one track.
///
/// [`begin`](TraceRecorder::begin) / [`end`](TraceRecorder::end) must
/// nest like parentheses; only *closed* spans are exported. Recording is
/// an `Instant` read plus a `Vec` push — cheap enough for per-sweep-cell
/// spans, not meant for per-request granularity (that is what the
/// metrics registry is for).
#[derive(Debug)]
pub struct TraceRecorder {
    clock: TraceClock,
    tid: u32,
    track_name: String,
    /// Open spans, innermost last: `(name, start_us)`.
    open: Vec<(String, u64)>,
    events: Vec<SpanEvent>,
}

impl TraceRecorder {
    /// Creates a recorder for track `tid`, labelled `track_name` in the
    /// viewer.
    pub fn new(clock: &TraceClock, tid: u32, track_name: impl Into<String>) -> Self {
        TraceRecorder {
            clock: *clock,
            tid,
            track_name: track_name.into(),
            open: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Opens a span nested inside the currently open one (if any).
    pub fn begin(&mut self, name: impl Into<String>) {
        self.open.push((name.into(), self.clock.now_us()));
    }

    /// Closes the innermost open span.
    ///
    /// Unbalanced `end` calls are a bug; in release builds they are
    /// ignored rather than corrupting the trace.
    pub fn end(&mut self) {
        debug_assert!(!self.open.is_empty(), "end() without a matching begin()");
        if let Some((name, start)) = self.open.pop() {
            let now = self.clock.now_us();
            self.events.push(SpanEvent {
                name,
                ts_us: start,
                dur_us: now.saturating_sub(start),
            });
        }
    }

    /// Runs `f` inside a span (begin/end bracketing is automatic).
    pub fn span<R>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Self) -> R) -> R {
        self.begin(name);
        let result = f(self);
        self.end();
        result
    }

    /// The closed spans recorded so far, in closing order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Number of spans currently open (0 for a balanced recorder).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// The track id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The track's display name.
    pub fn track_name(&self) -> &str {
        &self.track_name
    }
}

/// Renders recorders as a chrome-trace JSON document.
///
/// Emits one `M` (metadata) `thread_name` event per recorder and one
/// complete `X` event per closed span, all under `pid` 1. Open spans are
/// not exported — close everything before rendering.
pub fn chrome_trace_json(recorders: &[TraceRecorder]) -> String {
    use std::fmt::Write as _;
    let mut events = Vec::new();
    for rec in recorders {
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"name\": {}}}}}",
            rec.tid,
            crate::registry::json_string(&rec.track_name)
        ));
    }
    for rec in recorders {
        for e in rec.events() {
            events.push(format!(
                "{{\"name\": {}, \"cat\": \"webcache\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
                crate::registry::json_string(&e.name),
                rec.tid,
                e.ts_us,
                e.dur_us
            ));
        }
    }
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {e}{}",
            if i + 1 < events.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_order() {
        let clock = TraceClock::new();
        let mut rec = TraceRecorder::new(&clock, 3, "worker-3");
        rec.begin("outer");
        rec.begin("inner");
        rec.end();
        rec.end();
        assert_eq!(rec.open_spans(), 0);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        // Inner closes first and starts no earlier than outer.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert!(events[0].ts_us >= events[1].ts_us);
        // Inner is contained in outer.
        assert!(
            events[0].ts_us + events[0].dur_us <= events[1].ts_us + events[1].dur_us,
            "{events:?}"
        );
    }

    #[test]
    fn span_closure_brackets_automatically() {
        let clock = TraceClock::new();
        let mut rec = TraceRecorder::new(&clock, 0, "main");
        let answer = rec.span("compute", |r| {
            r.span("step", |_| ());
            42
        });
        assert_eq!(answer, 42);
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn export_contains_metadata_and_complete_events() {
        let clock = TraceClock::new();
        let mut a = TraceRecorder::new(&clock, 0, "main");
        a.span("build", |_| ());
        let mut b = TraceRecorder::new(&clock, 1, "sweep-worker-0");
        b.span("cell \"LRU\"", |_| ());
        let json = chrome_trace_json(&[a, b]);
        let value = crate::json::parse(&json).expect("valid JSON");
        let events = value.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4, "2 metadata + 2 spans");
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(
            metas[1].get("args").unwrap().get("name").unwrap().as_str(),
            Some("sweep-worker-0")
        );
        for e in events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        {
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("tid").unwrap().as_f64().is_some());
        }
        // The quoted span name survives the escaping round trip.
        assert!(events
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("cell \"LRU\"")));
    }

    #[test]
    fn unbalanced_end_is_ignored_and_open_spans_not_exported() {
        let clock = TraceClock::new();
        let mut rec = TraceRecorder::new(&clock, 0, "main");
        rec.begin("never-closed");
        let json = chrome_trace_json(&[rec]);
        assert!(!json.contains("never-closed"));
        // A fresh recorder tolerates a stray end() in release builds.
        if !cfg!(debug_assertions) {
            let mut rec = TraceRecorder::new(&clock, 0, "main");
            rec.end();
            assert!(rec.events().is_empty());
        }
    }
}
