//! A miniature in-memory TSDB: the last `K` registry snapshots.
//!
//! A [`SnapshotRing`] retains up to `K` flattened registry captures
//! (see [`Registry::flat_samples`]) with caller-supplied wall-clock
//! stamps. Captures happen at a coarse cadence (one per replay pass in
//! `webcache serve`), so a short mutex around a `VecDeque` is plenty —
//! nothing here is on a request hot path.
//!
//! Two read paths:
//!
//! * [`SnapshotRing::query_json`] renders the trailing points of one
//!   metric family for `GET /query?metric=&last=`;
//! * [`SnapshotRing::series`] extracts a plain `(unix_ms, value)`
//!   vector for one labelled sample, which `GET /dash` turns into
//!   sparklines.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::registry::{json_f64, json_string, FlatSample, Registry};

#[derive(Debug)]
struct Snapshot {
    unix_ms: u64,
    samples: Vec<FlatSample>,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    snaps: VecDeque<Snapshot>,
}

/// A bounded ring of flattened registry snapshots.
///
/// Cloning shares the ring: the serve loop captures on one handle while
/// HTTP routes query another.
#[derive(Debug, Clone)]
pub struct SnapshotRing(Arc<Mutex<Inner>>);

impl SnapshotRing {
    /// Creates a ring retaining up to `capacity` snapshots (at least 1).
    pub fn new(capacity: usize) -> Self {
        SnapshotRing(Arc::new(Mutex::new(Inner {
            capacity: capacity.max(1),
            snaps: VecDeque::new(),
        })))
    }

    /// Captures the registry's current flat samples, evicting the
    /// oldest snapshot when the ring is full.
    pub fn capture(&self, registry: &Registry, unix_ms: u64) {
        let samples = registry.flat_samples();
        let mut inner = self.0.lock().expect("snapshot ring lock");
        if inner.snaps.len() == inner.capacity {
            inner.snaps.pop_front();
        }
        inner.snaps.push_back(Snapshot { unix_ms, samples });
    }

    /// Retained snapshot count.
    pub fn len(&self) -> usize {
        self.0.lock().expect("snapshot ring lock").snaps.len()
    }

    /// Whether no snapshots have been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum retained snapshots.
    pub fn capacity(&self) -> usize {
        self.0.lock().expect("snapshot ring lock").capacity
    }

    /// Every distinct sample name seen in the newest snapshot (the
    /// `/query` 404 body lists these so typos are debuggable).
    pub fn metric_names(&self) -> Vec<String> {
        let inner = self.0.lock().expect("snapshot ring lock");
        let mut names: Vec<String> = Vec::new();
        if let Some(snap) = inner.snaps.back() {
            for s in &snap.samples {
                if !names.iter().any(|n| n == &s.name) {
                    names.push(s.name.clone());
                }
            }
        }
        names
    }

    /// Renders the trailing `last` points of the sample family `metric`
    /// as JSON, or `None` when the metric never appeared in any
    /// retained snapshot.
    ///
    /// Shape:
    /// ```json
    /// {"metric": "m", "window": 3, "points": [
    ///   {"unix_ms": 1000, "samples": [{"labels": {...}, "value": 1}]}
    /// ]}
    /// ```
    pub fn query_json(&self, metric: &str, last: usize) -> Option<String> {
        use std::fmt::Write as _;
        let inner = self.0.lock().expect("snapshot ring lock");
        let mut seen = false;
        let mut points: Vec<String> = Vec::new();
        let skip = inner.snaps.len().saturating_sub(last.max(1));
        for snap in inner.snaps.iter().skip(skip) {
            let mut samples = String::new();
            for s in snap.samples.iter().filter(|s| s.name == metric) {
                seen = true;
                if !samples.is_empty() {
                    samples.push_str(", ");
                }
                let labels: Vec<String> = s
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
                    .collect();
                let _ = write!(
                    samples,
                    "{{\"labels\": {{{}}}, \"value\": {}}}",
                    labels.join(", "),
                    json_f64(s.value)
                );
            }
            if !samples.is_empty() {
                points.push(format!(
                    "{{\"unix_ms\": {}, \"samples\": [{samples}]}}",
                    snap.unix_ms
                ));
            }
        }
        // A metric can exist without appearing in the window (e.g.
        // registered after early snapshots): any retained appearance
        // counts as "known".
        if !seen {
            seen = inner
                .snaps
                .iter()
                .any(|snap| snap.samples.iter().any(|s| s.name == metric));
        }
        if !seen {
            return None;
        }
        Some(format!(
            "{{\"metric\": {}, \"window\": {}, \"points\": [\n  {}\n]}}\n",
            json_string(metric),
            points.len(),
            points.join(",\n  ")
        ))
    }

    /// The `(unix_ms, value)` trajectory of one labelled sample: the
    /// first sample per snapshot named `metric` whose labels contain
    /// every `(key, value)` pair in `labels`.
    pub fn series(&self, metric: &str, labels: &[(&str, &str)]) -> Vec<(u64, f64)> {
        let inner = self.0.lock().expect("snapshot ring lock");
        let mut out = Vec::with_capacity(inner.snaps.len());
        for snap in inner.snaps.iter() {
            let hit = snap.samples.iter().find(|s| {
                s.name == metric
                    && labels
                        .iter()
                        .all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            });
            if let Some(s) = hit {
                out.push((snap.unix_ms, s.value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with_counter() -> (SnapshotRing, Registry, crate::registry::Counter) {
        let r = Registry::new();
        let c = r.counter("reqs_total", "Requests.", &[("shard", "0")]);
        (SnapshotRing::new(3), r, c)
    }

    #[test]
    fn capture_evicts_oldest_at_capacity() {
        let (ring, r, c) = ring_with_counter();
        for t in 0..5u64 {
            c.inc();
            ring.capture(&r, 1000 + t);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        let series = ring.series("reqs_total", &[]);
        assert_eq!(series, vec![(1002, 3.0), (1003, 4.0), (1004, 5.0)]);
    }

    #[test]
    fn query_json_returns_trailing_window() {
        let (ring, r, c) = ring_with_counter();
        for t in 0..3u64 {
            c.inc();
            ring.capture(&r, t);
        }
        let json = ring.query_json("reqs_total", 2).unwrap();
        let parsed = crate::json::parse(&json).expect("query parses");
        assert_eq!(parsed.get("metric").unwrap().as_str(), Some("reqs_total"));
        let points = parsed.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 2, "{json}");
        let last = &points[1];
        assert_eq!(last.get("unix_ms").unwrap().as_f64(), Some(2.0));
        let samples = last.get("samples").unwrap().as_array().unwrap();
        assert_eq!(samples[0].get("value").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            samples[0]
                .get("labels")
                .unwrap()
                .get("shard")
                .unwrap()
                .as_str(),
            Some("0")
        );
    }

    #[test]
    fn unknown_metric_is_none() {
        let (ring, r, _c) = ring_with_counter();
        ring.capture(&r, 0);
        assert!(ring.query_json("nope_total", 10).is_none());
        assert_eq!(ring.metric_names(), vec!["reqs_total".to_owned()]);
    }

    #[test]
    fn histograms_flatten_to_count_and_sum() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "Latency.", &[]);
        h.observe(10);
        h.observe(20);
        let ring = SnapshotRing::new(2);
        ring.capture(&r, 7);
        assert_eq!(ring.series("lat_us_count", &[]), vec![(7, 2.0)]);
        assert_eq!(ring.series("lat_us_sum", &[]), vec![(7, 30.0)]);
        assert!(ring.series("lat_us", &[]).is_empty());
    }

    #[test]
    fn series_filters_by_label_subset() {
        let r = Registry::new();
        let a = r.gauge("hr", "Hit rate.", &[("shard", "0")]);
        let b = r.gauge("hr", "Hit rate.", &[("shard", "1")]);
        a.set(0.5);
        b.set(0.9);
        let ring = SnapshotRing::new(2);
        ring.capture(&r, 1);
        assert_eq!(ring.series("hr", &[("shard", "1")]), vec![(1, 0.9)]);
        // No filter: first matching sample wins.
        assert_eq!(ring.series("hr", &[]), vec![(1, 0.5)]);
        assert!(ring.series("hr", &[("shard", "9")]).is_empty());
    }
}
