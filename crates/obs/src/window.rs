//! Windowed percentile histograms.
//!
//! A [`WindowedHistogram`] is a ring of `K` log2-bucket histograms (the
//! same fixed buckets as [`registry::Histogram`]) rotated explicitly by
//! the owner — one rotation per anomaly window, replay pass, or
//! whatever cadence the caller picks. The record path is lock-free:
//! load the current slot index, then a handful of relaxed `fetch_add`s.
//! Quantile estimation aggregates all `K` windows, so an estimate
//! always covers the trailing `K` rotation periods and old traffic ages
//! out as slots are recycled.
//!
//! Precision note: a recorder racing a rotation may land its sample one
//! window off. Both windows are inside the trailing aggregate, so
//! quantiles are unaffected; only the per-window attribution can be off
//! by one sample. That is the price of the lock-free record path and is
//! acceptable for observability.
//!
//! [`QuantileGauges`] packages the common export shape: four registry
//! gauges labelled `quantile="p50" | "p90" | "p99" | "p999"`, refreshed
//! from a histogram by [`QuantileGauges::publish`].
//!
//! ```
//! use webcache_obs::window::WindowedHistogram;
//!
//! let h = WindowedHistogram::new(4);
//! for v in 1..=100u64 {
//!     h.record(v);
//! }
//! let p50 = h.quantile(0.5).unwrap();
//! assert!((32.0..=64.0).contains(&p50), "{p50}");
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::registry::{bucket_index, Gauge, Registry, BUCKETS};

/// The quantiles exported by [`QuantileGauges`], as `(label, q)` pairs.
pub const QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

#[derive(Debug)]
struct WindowCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for WindowCells {
    fn default() -> Self {
        WindowCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl WindowCells {
    fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct WindowedCells {
    windows: Box<[WindowCells]>,
    current: AtomicUsize,
    rotations: AtomicU64,
}

/// A ring of log2-bucket histograms with an explicit rotation cadence.
///
/// Cloning shares the ring, so one handle can record from hot paths
/// (possibly many threads) while another rotates and reads quantiles.
#[derive(Debug, Clone)]
pub struct WindowedHistogram(Arc<WindowedCells>);

impl WindowedHistogram {
    /// Creates a ring of `windows` histograms (clamped to at least 2 —
    /// one being filled plus at least one full trailing window).
    pub fn new(windows: usize) -> Self {
        let windows = windows.max(2);
        WindowedHistogram(Arc::new(WindowedCells {
            windows: (0..windows).map(|_| WindowCells::default()).collect(),
            current: AtomicUsize::new(0),
            rotations: AtomicU64::new(0),
        }))
    }

    /// Number of windows in the ring.
    pub fn windows(&self) -> usize {
        self.0.windows.len()
    }

    /// Total rotations so far.
    pub fn rotations(&self) -> u64 {
        self.0.rotations.load(Ordering::Relaxed)
    }

    /// Records one observation into the current window (lock-free).
    #[inline]
    pub fn record(&self, v: u64) {
        let w = &self.0.windows[self.0.current.load(Ordering::Relaxed)];
        w.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        w.count.fetch_add(1, Ordering::Relaxed);
        w.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Advances to the next window, recycling (clearing) the oldest.
    ///
    /// The next slot is cleared *before* the current index moves, so
    /// records issued after the publish land in a clean window. Call
    /// from one place (the pass/window boundary), not concurrently.
    pub fn rotate(&self) {
        let cur = self.0.current.load(Ordering::Relaxed);
        let next = (cur + 1) % self.0.windows.len();
        self.0.windows[next].clear();
        self.0.current.store(next, Ordering::Release);
        self.0.rotations.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-bucket counts aggregated over every window in the ring.
    pub fn aggregate_buckets(&self) -> [u64; BUCKETS] {
        let mut total = [0u64; BUCKETS];
        for w in self.0.windows.iter() {
            for (t, b) in total.iter_mut().zip(w.buckets.iter()) {
                *t += b.load(Ordering::Relaxed);
            }
        }
        total
    }

    /// Observations across every window in the ring.
    pub fn count(&self) -> u64 {
        self.0
            .windows
            .iter()
            .map(|w| w.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observed values across every window in the ring.
    pub fn sum(&self) -> u64 {
        self.0
            .windows
            .iter()
            .map(|w| w.sum.load(Ordering::Relaxed))
            .sum()
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) over the trailing
    /// windows, or `None` when no observations are retained.
    ///
    /// Nearest-rank walk over the aggregated log2 buckets with linear
    /// interpolation inside the landing bucket, so the estimate is
    /// exact to within one log2 bucket (a factor-of-two resolution, the
    /// same as the underlying histogram).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.aggregate_buckets(), q)
    }
}

/// Nearest-rank quantile over log2 bucket counts (shared with tests and
/// the registry [`crate::registry::Histogram`] via
/// [`crate::registry::Histogram::bucket_counts`]).
pub fn quantile_from_buckets(counts: &[u64; BUCKETS], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Nearest rank: the smallest rank r with r >= q * total, at least 1.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (b, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let before = cumulative;
        cumulative += count;
        if cumulative >= rank {
            let lo = if b == 0 {
                0.0
            } else {
                (1u64 << (b - 1)) as f64
            };
            if b == BUCKETS - 1 {
                // Catch-all: no finite upper bound to interpolate to.
                return Some(lo);
            }
            let hi = (1u64 << b) as f64;
            let into = (rank - before) as f64 / count as f64;
            return Some(lo + (hi - lo) * into);
        }
    }
    unreachable!("rank <= total")
}

/// Four registry gauges (`quantile="p50" | "p90" | "p99" | "p999"`)
/// published from a [`WindowedHistogram`].
#[derive(Debug, Clone)]
pub struct QuantileGauges {
    gauges: [Gauge; QUANTILES.len()],
}

impl QuantileGauges {
    /// Registers the four quantile gauges under `name`, appending a
    /// `quantile` label to `labels`.
    pub fn register(registry: &Registry, name: &str, help: &str, labels: &[(&str, &str)]) -> Self {
        let gauges = std::array::from_fn(|i| {
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("quantile", QUANTILES[i].0));
            registry.gauge(name, help, &all)
        });
        QuantileGauges { gauges }
    }

    /// Refreshes every gauge from the histogram's trailing windows
    /// (absent quantiles — empty histogram — publish as 0).
    pub fn publish(&self, h: &WindowedHistogram) {
        let counts = h.aggregate_buckets();
        for (gauge, &(_, q)) in self.gauges.iter().zip(QUANTILES.iter()) {
            gauge.set(quantile_from_buckets(&counts, q).unwrap_or(0.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = WindowedHistogram::new(4);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn window_count_is_clamped_to_two() {
        assert_eq!(WindowedHistogram::new(0).windows(), 2);
        assert_eq!(WindowedHistogram::new(1).windows(), 2);
        assert_eq!(WindowedHistogram::new(7).windows(), 7);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = WindowedHistogram::new(3);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Exact p50 = 500 (bucket (256,512]), p99 = 990 (bucket
        // (512,1024]); the estimate must land in the same bucket.
        assert!((256.0..=512.0).contains(&p50), "{p50}");
        assert!((512.0..=1024.0).contains(&p99), "{p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn rotation_ages_out_old_windows() {
        let h = WindowedHistogram::new(2);
        for _ in 0..100 {
            h.record(1_000_000);
        }
        assert!(h.quantile(0.5).unwrap() > 500_000.0);
        // Two rotations on a 2-ring recycle the slot holding the old
        // samples; only the new cheap traffic remains.
        h.rotate();
        for _ in 0..100 {
            h.record(1);
        }
        h.rotate();
        for _ in 0..10 {
            h.record(1);
        }
        assert!(h.quantile(0.999).unwrap() <= 1.0);
        assert_eq!(h.rotations(), 2);
    }

    #[test]
    fn single_value_pins_every_quantile_bucket() {
        let h = WindowedHistogram::new(4);
        h.record(42);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q).unwrap();
            assert!((32.0..=64.0).contains(&est), "q={q}: {est}");
        }
    }

    #[test]
    fn catch_all_bucket_reports_its_lower_bound() {
        let h = WindowedHistogram::new(2);
        h.record(u64::MAX);
        let est = h.quantile(0.5).unwrap();
        assert_eq!(est, (1u64 << (BUCKETS - 2)) as f64);
    }

    #[test]
    fn quantile_gauges_publish_to_registry() {
        let r = Registry::new();
        let h = WindowedHistogram::new(2);
        let q = QuantileGauges::register(&r, "lat_us", "Latency.", &[("doc_type", "HTML")]);
        for v in 1..=100u64 {
            h.record(v);
        }
        q.publish(&h);
        let text = r.prometheus_text();
        assert!(
            text.contains("lat_us{doc_type=\"HTML\",quantile=\"p50\"}"),
            "{text}"
        );
        assert!(
            text.contains("lat_us{doc_type=\"HTML\",quantile=\"p999\"}"),
            "{text}"
        );
        // p50 of 1..=100 is 50: bucket (32, 64].
        let p50_line = text
            .lines()
            .find(|l| l.contains("quantile=\"p50\""))
            .unwrap();
        let v: f64 = p50_line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((32.0..=64.0).contains(&v), "{p50_line}");
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let h = WindowedHistogram::new(4);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v % 512);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
