//! Online anomaly detection over the simulator event stream.
//!
//! [`AnomalyObserver`] watches a replay through fixed-size windows of
//! *measured* requests (warm-up events are ignored, so each pass of a
//! looped replay re-warming a cold cache does not trip detectors) and
//! compares each closed window against a trailing EWMA baseline. Four
//! detectors are composed:
//!
//! * **hit-rate collapse** — a document type's window hit rate falls
//!   more than [`AnomalyConfig::hit_rate_drop`] below its EWMA (only
//!   judged when the window saw at least
//!   [`AnomalyConfig::min_type_requests`] requests of that type);
//! * **eviction storm** — the window's eviction count exceeds
//!   [`AnomalyConfig::storm_factor`] × its EWMA and the absolute floor
//!   [`AnomalyConfig::min_storm_evictions`];
//! * **admission-reject spike** — same shape, over admission rejects;
//! * **occupancy thrash** — the window evicted more than
//!   [`AnomalyConfig::thrash_capacity_fraction`] of the configured
//!   capacity in bytes *and* more than `storm_factor` × the byte-churn
//!   EWMA (the second gate keeps a steadily-churning small cache quiet).
//!
//! Every detection increments an `webcache_anomaly_total{kind,doc_type}`
//! counter (scrapeable at `/metrics`). The `warn` log record is **rate
//! limited**: after a detection logs, the same (kind, type) stays silent
//! for [`AnomalyConfig::cooldown_windows`] windows while the counter
//! keeps counting — alerts stay readable during a sustained incident
//! without losing the incident's magnitude.
//!
//! The EWMA baselines are seeded by the first qualifying window, which
//! never fires: a detector needs history before "anomalous" means
//! anything. The trailing partial window is never judged.

use std::fmt;

use webcache_core::Eviction;
use webcache_obs::{Counter, Logger, Registry};
use webcache_trace::DocumentType;

use crate::observe::{AccessEvent, AccessKind, Observer, RunMeta};

/// Number of document types (the `doc_type` axis of the counters).
const TYPES: usize = DocumentType::ALL.len();

/// What kind of anomaly a detection is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// A document type's hit rate fell off a cliff vs. its baseline.
    HitRateCollapse,
    /// Evictions in a window far exceeded the trailing rate.
    EvictionStorm,
    /// Admission rejects in a window far exceeded the trailing rate.
    AdmissionRejectSpike,
    /// A large fraction of the cache's bytes churned in one window.
    OccupancyThrash,
}

impl AnomalyKind {
    /// All kinds, in metric registration order.
    pub const ALL: [AnomalyKind; 4] = [
        AnomalyKind::HitRateCollapse,
        AnomalyKind::EvictionStorm,
        AnomalyKind::AdmissionRejectSpike,
        AnomalyKind::OccupancyThrash,
    ];

    /// The `kind` label value used on counters and log records.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::HitRateCollapse => "hit_rate_collapse",
            AnomalyKind::EvictionStorm => "eviction_storm",
            AnomalyKind::AdmissionRejectSpike => "admission_reject_spike",
            AnomalyKind::OccupancyThrash => "occupancy_thrash",
        }
    }
}

/// Detector tuning. [`AnomalyConfig::default`] is sized for production
/// windows (2048 requests); tests shrink `window` to keep traces small.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Measured requests per detection window.
    pub window: u64,
    /// EWMA smoothing factor in `(0, 1]` (weight of the newest window).
    pub ewma_alpha: f64,
    /// Absolute hit-rate drop below the EWMA that counts as a collapse.
    pub hit_rate_drop: f64,
    /// Minimum per-type requests in a window for its hit rate to be
    /// judged (or to update the baseline).
    pub min_type_requests: u64,
    /// A window's evictions must exceed this multiple of the EWMA.
    pub storm_factor: f64,
    /// ... and this absolute floor, to ignore noise around zero.
    pub min_storm_evictions: u64,
    /// A window's rejects must exceed this multiple of the EWMA.
    pub reject_factor: f64,
    /// ... and this absolute floor.
    pub min_reject_spike: u64,
    /// Bytes evicted in one window, as a fraction of capacity, that
    /// counts as thrash (subject to the `storm_factor` EWMA gate).
    pub thrash_capacity_fraction: f64,
    /// Windows a (kind, type) stays log-silent after logging a warn.
    pub cooldown_windows: u32,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            window: 2048,
            ewma_alpha: 0.3,
            hit_rate_drop: 0.25,
            min_type_requests: 64,
            storm_factor: 4.0,
            min_storm_evictions: 32,
            reject_factor: 4.0,
            min_reject_spike: 32,
            thrash_capacity_fraction: 0.5,
            cooldown_windows: 8,
        }
    }
}

/// Callback invoked when a detection actually *logs* (i.e. outside the
/// cooldown). Receives the anomaly kind and the `doc_type` label. This
/// is the hook the serve path uses to write post-mortem bundles: rate
/// limiting the trigger exactly like the warn log keeps a sustained
/// incident from burying the disk in bundles.
pub struct AnomalyTrigger(TriggerFn);

/// The boxed callback type behind [`AnomalyTrigger`].
type TriggerFn = Box<dyn FnMut(AnomalyKind, &str) + Send>;

impl AnomalyTrigger {
    /// Wraps a callback for [`AnomalyObserver::set_trigger`].
    pub fn new(f: impl FnMut(AnomalyKind, &str) + Send + 'static) -> Self {
        AnomalyTrigger(Box::new(f))
    }
}

impl fmt::Debug for AnomalyTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AnomalyTrigger(..)")
    }
}

/// Windowed EWMA anomaly detectors over the replay event stream. See the
/// [module docs](self).
#[derive(Debug)]
pub struct AnomalyObserver {
    config: AnomalyConfig,
    logger: Logger,
    capacity: u64,
    /// Windows closed so far (monotonic across passes).
    windows_closed: u64,
    /// Measured requests accumulated in the current window.
    seen: u64,
    type_requests: [u64; TYPES],
    type_hits: [u64; TYPES],
    evictions: u64,
    bytes_evicted: u64,
    rejects: u64,
    hit_rate_ewma: [Option<f64>; TYPES],
    evictions_ewma: Option<f64>,
    rejects_ewma: Option<f64>,
    bytes_ewma: Option<f64>,
    collapse_cooldown: [u32; TYPES],
    storm_cooldown: u32,
    reject_cooldown: u32,
    thrash_cooldown: u32,
    collapse_total: [Counter; TYPES],
    storm_total: Counter,
    reject_total: Counter,
    thrash_total: Counter,
    trigger: Option<AnomalyTrigger>,
}

impl AnomalyObserver {
    /// Registers the `webcache_anomaly_total` counter family (one cell
    /// per (kind, doc_type); the three cache-wide detectors use
    /// `doc_type="overall"`) and returns the observer.
    pub fn register(registry: &Registry, logger: Logger, config: AnomalyConfig) -> Self {
        const NAME: &str = "webcache_anomaly_total";
        const HELP: &str = "Anomaly detections by kind and document type.";
        let collapse_total = std::array::from_fn(|i| {
            registry.counter(
                NAME,
                HELP,
                &[
                    ("kind", AnomalyKind::HitRateCollapse.label()),
                    ("doc_type", DocumentType::from_index(i).label()),
                ],
            )
        });
        let overall = |kind: AnomalyKind| {
            registry.counter(
                NAME,
                HELP,
                &[("kind", kind.label()), ("doc_type", "overall")],
            )
        };
        AnomalyObserver {
            config,
            logger,
            capacity: 0,
            windows_closed: 0,
            seen: 0,
            type_requests: [0; TYPES],
            type_hits: [0; TYPES],
            evictions: 0,
            bytes_evicted: 0,
            rejects: 0,
            hit_rate_ewma: [None; TYPES],
            evictions_ewma: None,
            rejects_ewma: None,
            bytes_ewma: None,
            collapse_cooldown: [0; TYPES],
            storm_cooldown: 0,
            reject_cooldown: 0,
            thrash_cooldown: 0,
            collapse_total,
            storm_total: overall(AnomalyKind::EvictionStorm),
            reject_total: overall(AnomalyKind::AdmissionRejectSpike),
            thrash_total: overall(AnomalyKind::OccupancyThrash),
            trigger: None,
        }
    }

    /// Installs the post-detection callback, fired under the same rate
    /// limit as the warn log (see [`AnomalyTrigger`]).
    pub fn set_trigger(&mut self, trigger: AnomalyTrigger) {
        self.trigger = Some(trigger);
    }

    /// Total detections of `kind` so far (summed over document types for
    /// the per-type collapse detector).
    pub fn fired(&self, kind: AnomalyKind) -> u64 {
        match kind {
            AnomalyKind::HitRateCollapse => self.collapse_total.iter().map(Counter::get).sum(),
            AnomalyKind::EvictionStorm => self.storm_total.get(),
            AnomalyKind::AdmissionRejectSpike => self.reject_total.get(),
            AnomalyKind::OccupancyThrash => self.thrash_total.get(),
        }
    }

    /// Detection windows closed so far (monotonic across replay passes).
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Counts the detection and, outside the cooldown, logs the warn
    /// record, runs the trigger (if any), and starts a new cooldown.
    #[allow(clippy::too_many_arguments)]
    fn fire(
        counter: &Counter,
        cooldown: &mut u32,
        cooldown_windows: u32,
        logger: &Logger,
        trigger: &mut Option<AnomalyTrigger>,
        window: u64,
        kind: AnomalyKind,
        doc_type: &str,
        value: f64,
        baseline: f64,
    ) {
        counter.inc();
        if *cooldown == 0 {
            logger.warn(
                "anomaly",
                kind.label(),
                &[
                    ("kind", kind.label().into()),
                    ("doc_type", doc_type.into()),
                    ("window", window.into()),
                    ("value", value.into()),
                    ("baseline", baseline.into()),
                ],
            );
            if let Some(AnomalyTrigger(f)) = trigger {
                f(kind, doc_type);
            }
            *cooldown = cooldown_windows;
        }
    }

    /// Judges the completed window against the baselines, updates them,
    /// and resets the accumulators.
    fn close_window(&mut self) {
        let window = self.windows_closed;
        self.windows_closed += 1;
        let alpha = self.config.ewma_alpha;

        for cd in self.collapse_cooldown.iter_mut() {
            *cd = cd.saturating_sub(1);
        }
        self.storm_cooldown = self.storm_cooldown.saturating_sub(1);
        self.reject_cooldown = self.reject_cooldown.saturating_sub(1);
        self.thrash_cooldown = self.thrash_cooldown.saturating_sub(1);

        for t in 0..TYPES {
            let requests = self.type_requests[t];
            if requests < self.config.min_type_requests {
                continue;
            }
            let hit_rate = self.type_hits[t] as f64 / requests as f64;
            if let Some(baseline) = self.hit_rate_ewma[t] {
                if hit_rate < baseline - self.config.hit_rate_drop {
                    Self::fire(
                        &self.collapse_total[t],
                        &mut self.collapse_cooldown[t],
                        self.config.cooldown_windows,
                        &self.logger,
                        &mut self.trigger,
                        window,
                        AnomalyKind::HitRateCollapse,
                        DocumentType::from_index(t).label(),
                        hit_rate,
                        baseline,
                    );
                }
                self.hit_rate_ewma[t] = Some(alpha * hit_rate + (1.0 - alpha) * baseline);
            } else {
                self.hit_rate_ewma[t] = Some(hit_rate);
            }
        }

        let evictions = self.evictions as f64;
        if let Some(baseline) = self.evictions_ewma {
            if self.evictions >= self.config.min_storm_evictions
                && evictions > self.config.storm_factor * baseline
            {
                Self::fire(
                    &self.storm_total,
                    &mut self.storm_cooldown,
                    self.config.cooldown_windows,
                    &self.logger,
                    &mut self.trigger,
                    window,
                    AnomalyKind::EvictionStorm,
                    "overall",
                    evictions,
                    baseline,
                );
            }
            self.evictions_ewma = Some(alpha * evictions + (1.0 - alpha) * baseline);
        } else {
            self.evictions_ewma = Some(evictions);
        }

        let rejects = self.rejects as f64;
        if let Some(baseline) = self.rejects_ewma {
            if self.rejects >= self.config.min_reject_spike
                && rejects > self.config.reject_factor * baseline
            {
                Self::fire(
                    &self.reject_total,
                    &mut self.reject_cooldown,
                    self.config.cooldown_windows,
                    &self.logger,
                    &mut self.trigger,
                    window,
                    AnomalyKind::AdmissionRejectSpike,
                    "overall",
                    rejects,
                    baseline,
                );
            }
            self.rejects_ewma = Some(alpha * rejects + (1.0 - alpha) * baseline);
        } else {
            self.rejects_ewma = Some(rejects);
        }

        let bytes = self.bytes_evicted as f64;
        if let Some(baseline) = self.bytes_ewma {
            let thrash_floor = self.config.thrash_capacity_fraction * self.capacity as f64;
            if self.capacity > 0
                && bytes > thrash_floor
                && bytes > self.config.storm_factor * baseline
            {
                Self::fire(
                    &self.thrash_total,
                    &mut self.thrash_cooldown,
                    self.config.cooldown_windows,
                    &self.logger,
                    &mut self.trigger,
                    window,
                    AnomalyKind::OccupancyThrash,
                    "overall",
                    bytes,
                    baseline,
                );
            }
            self.bytes_ewma = Some(alpha * bytes + (1.0 - alpha) * baseline);
        } else {
            self.bytes_ewma = Some(bytes);
        }

        self.seen = 0;
        self.type_requests = [0; TYPES];
        self.type_hits = [0; TYPES];
        self.evictions = 0;
        self.bytes_evicted = 0;
        self.rejects = 0;
    }
}

impl Observer for AnomalyObserver {
    fn on_run_start(&mut self, meta: RunMeta) {
        // Window accumulators and baselines deliberately persist across
        // passes of a looped replay; only the capacity is (re)learned.
        self.capacity = meta.capacity.as_u64();
        if self.windows_closed == 0 && self.seen == 0 {
            self.logger.debug(
                "anomaly",
                "detectors armed",
                &[
                    ("window", self.config.window.into()),
                    ("capacity", self.capacity.into()),
                ],
            );
        }
    }

    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        if event.warmup {
            return;
        }
        let t = event.doc_type.index();
        self.type_requests[t] += 1;
        if kind.is_hit() {
            self.type_hits[t] += 1;
        }
        self.seen += 1;
        if self.seen >= self.config.window {
            self.close_window();
        }
    }

    fn on_admission_reject(&mut self, event: AccessEvent) {
        if !event.warmup {
            self.rejects += 1;
        }
    }

    fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
        if !at.warmup {
            self.evictions += 1;
            self.bytes_evicted += evicted.size.as_u64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimulationConfig, Simulator};
    use webcache_core::{AdmissionRule, PolicyKind};
    use webcache_obs::Level;
    use webcache_trace::{ByteSize, DocId, Request, Timestamp, Trace};

    const WINDOW: u64 = 512;

    fn config() -> AnomalyConfig {
        AnomalyConfig {
            window: WINDOW,
            ..AnomalyConfig::default()
        }
    }

    fn req(doc: u64, size: u64) -> Request {
        Request::new(
            Timestamp::ZERO,
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(size),
        )
    }

    fn run(
        trace: Trace,
        capacity: u64,
        admission: Option<AdmissionRule>,
        config: AnomalyConfig,
    ) -> (AnomalyObserver, webcache_obs::LogCapture, Registry) {
        let registry = Registry::new();
        let (logger, capture) = Logger::capture(Level::Warn);
        let mut obs = AnomalyObserver::register(&registry, logger, config);
        let mut builder = SimulationConfig::builder()
            .capacity(ByteSize::new(capacity))
            .warmup_fraction(0.0);
        if let Some(rule) = admission {
            builder = builder.admission_rule(rule);
        }
        Simulator::new(PolicyKind::Lru.build(), builder.build()).run_observed(&trace, &mut obs);
        (obs, capture, registry)
    }

    fn assert_only(obs: &AnomalyObserver, kind: AnomalyKind, count: u64) {
        for k in AnomalyKind::ALL {
            let expected = if k == kind { count } else { 0 };
            assert_eq!(obs.fired(k), expected, "{}", k.label());
        }
    }

    /// Window 1: 8 hot documents cycling (hit rate ~1). Window 2: all
    /// distinct cold documents (hit rate ~0) — the cliff. Window 3: hot
    /// again. Capacity is roomy, so no evictions or rejects anywhere.
    fn cliff_trace() -> Trace {
        let w = WINDOW as usize;
        let mut requests = Vec::with_capacity(3 * w);
        for i in 0..w {
            requests.push(req((i % 8) as u64, 500));
        }
        for i in 0..w {
            requests.push(req(10_000 + i as u64, 500));
        }
        for i in 0..w {
            requests.push(req((i % 8) as u64, 500));
        }
        requests.into()
    }

    #[test]
    fn hit_rate_cliff_fires_collapse_exactly_once() {
        let (obs, capture, registry) = run(cliff_trace(), 10_000_000, None, config());
        assert_only(&obs, AnomalyKind::HitRateCollapse, 1);
        assert_eq!(obs.windows_closed(), 3);
        let lines = capture.lines();
        assert_eq!(lines.len(), 1, "one rate-limited warn: {lines:?}");
        assert!(
            lines[0].contains("\"kind\":\"hit_rate_collapse\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"doc_type\":\"HTML\""), "{}", lines[0]);
        let text = registry.prometheus_text();
        assert!(
            text.contains("webcache_anomaly_total{kind=\"hit_rate_collapse\",doc_type=\"HTML\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn trigger_fires_under_the_same_rate_limit_as_the_log() {
        use std::sync::{Arc, Mutex};
        let fired: Arc<Mutex<Vec<(AnomalyKind, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let registry = Registry::new();
        let (logger, capture) = Logger::capture(Level::Warn);
        let mut obs = AnomalyObserver::register(&registry, logger, config());
        let sink = fired.clone();
        obs.set_trigger(AnomalyTrigger::new(move |kind, doc_type| {
            sink.lock().unwrap().push((kind, doc_type.to_string()));
        }));
        let sim_config = SimulationConfig::builder()
            .capacity(ByteSize::new(10_000_000))
            .warmup_fraction(0.0)
            .build();
        Simulator::new(PolicyKind::Lru.build(), sim_config).run_observed(&cliff_trace(), &mut obs);
        let fired = fired.lock().unwrap();
        assert_eq!(
            *fired,
            vec![(AnomalyKind::HitRateCollapse, "HTML".to_string())]
        );
        assert_eq!(capture.lines().len(), fired.len(), "trigger mirrors warn");
    }

    #[test]
    fn sustained_collapse_counts_every_window_but_logs_once() {
        // Hot window, then five consecutive cold windows: the counter
        // sees each anomalous window, the log only the first (cooldown).
        let w = WINDOW as usize;
        let mut requests = Vec::new();
        for i in 0..w {
            requests.push(req((i % 8) as u64, 500));
        }
        for i in 0..5 * w {
            requests.push(req(10_000 + i as u64, 500));
        }
        let (obs, capture, _) = run(requests.into(), 100_000_000, None, config());
        // Window 2 fires; the EWMA then absorbs the 0 rate quickly, so at
        // least the first cold window is anomalous.
        assert!(obs.fired(AnomalyKind::HitRateCollapse) >= 1);
        assert_eq!(capture.lines().len(), 1, "cooldown suppresses repeats");
    }

    /// Windows 1–2: 8 hot documents exactly filling the cache — all hits
    /// once resident, zero evictions, baselines seed at 0. Window 3: a
    /// burst of one-shot documents churns the full cache, spiking the
    /// eviction *count* far past `storm_factor` × baseline. The collapse
    /// and thrash detectors are disabled by config here (the same churn
    /// necessarily moves hit rate and bytes in a cache this small); they
    /// get their own isolated traces below.
    #[test]
    fn eviction_storm_fires_exactly_once() {
        let w = WINDOW as usize;
        let config = AnomalyConfig {
            hit_rate_drop: 2.0,              // collapse off
            thrash_capacity_fraction: 100.0, // thrash off
            ..config()
        };
        let mut requests = Vec::new();
        for i in 0..2 * w {
            requests.push(req((i % 8) as u64, 100));
        }
        // Storm window: 64 distinct one-shot docs against a full cache.
        for i in 0..w {
            if i % 8 == 0 && i / 8 < 64 {
                requests.push(req(50_000 + (i / 8) as u64, 100));
            } else {
                requests.push(req((i % 8) as u64, 100));
            }
        }
        let (obs, capture, _) = run(requests.into(), 800, None, config);
        assert_only(&obs, AnomalyKind::EvictionStorm, 1);
        let lines = capture.lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(
            lines[0].contains("\"kind\":\"eviction_storm\""),
            "{}",
            lines[0]
        );
    }

    /// Second-hit admission: established hot set, then a burst of
    /// one-shot documents that the admission rule turns away. Rejected
    /// documents are never inserted, so no evictions happen at all.
    #[test]
    fn admission_reject_spike_fires_exactly_once() {
        let w = WINDOW as usize;
        let mut requests = Vec::new();
        // Hot set: each doc offered repeatedly, admitted on second offer.
        for i in 0..2 * w {
            requests.push(req((i % 8) as u64, 500));
        }
        // Spike window: 64 one-shot docs interleaved with hot traffic.
        for i in 0..w {
            if i % 8 == 0 && i / 8 < 64 {
                requests.push(req(70_000 + (i / 8) as u64, 500));
            } else {
                requests.push(req((i % 8) as u64, 500));
            }
        }
        let (obs, capture, _) = run(
            requests.into(),
            10_000_000,
            Some(AdmissionRule::SecondHit(1 << 20)),
            config(),
        );
        assert_only(&obs, AnomalyKind::AdmissionRejectSpike, 1);
        let lines = capture.lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(
            lines[0].contains("\"kind\":\"admission_reject_spike\""),
            "{}",
            lines[0]
        );
    }

    /// Window 1: quiet hits. Window 2: a handful of huge documents churn
    /// most of the cache's bytes — too few evictions for the storm
    /// detector, far too many bytes for the thrash detector.
    #[test]
    fn occupancy_thrash_fires_exactly_once() {
        let w = WINDOW as usize;
        let capacity = 1_000_000u64;
        let mut requests = Vec::new();
        // Hot set of 8 docs at 100 kB: 800 kB resident.
        for i in 0..2 * w {
            requests.push(req((i % 8) as u64, 100_000));
        }
        // Thrash window: 8 distinct 100 kB docs -> ~800 kB evicted (80%
        // of capacity) from ~8-16 evictions (< min_storm_evictions 32).
        for i in 0..w {
            if i % 64 == 0 && i / 64 < 8 {
                requests.push(req(90_000 + (i / 64) as u64, 100_000));
            } else {
                requests.push(req((i % 8) as u64, 100_000));
            }
        }
        let (obs, capture, _) = run(requests.into(), capacity, None, config());
        assert_only(&obs, AnomalyKind::OccupancyThrash, 1);
        let lines = capture.lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(
            lines[0].contains("\"kind\":\"occupancy_thrash\""),
            "{}",
            lines[0]
        );
    }

    /// A steady workload — constant moderate miss and eviction rate over
    /// many windows — must not trip any detector.
    #[test]
    fn steady_workload_has_zero_false_positives() {
        // 100 hot docs of 1 kB in a 50 kB cache: a steady ~50% of
        // accesses miss and evict, window after window.
        let w = WINDOW as usize;
        let requests: Vec<Request> = (0..12 * w).map(|i| req((i % 100) as u64, 1_000)).collect();
        let (obs, capture, _) = run(requests.into(), 50_000, None, config());
        assert_only(&obs, AnomalyKind::HitRateCollapse, 0);
        assert_eq!(obs.windows_closed(), 12);
        assert!(capture.lines().is_empty(), "{:?}", capture.lines());
    }

    /// Warm-up events must not feed the detectors: a replay whose
    /// measured region is too short to close a window detects nothing,
    /// however wild the warm-up was.
    #[test]
    fn warmup_events_are_ignored() {
        let w = WINDOW as usize;
        let requests: Vec<Request> = (0..2 * w).map(|i| req(i as u64, 1_000)).collect();
        let registry = Registry::new();
        let (logger, capture) = Logger::capture(Level::Warn);
        let mut obs = AnomalyObserver::register(&registry, logger, config());
        let sim_config = SimulationConfig::builder()
            .capacity(ByteSize::new(10_000))
            .warmup_fraction(0.9)
            .build();
        Simulator::new(PolicyKind::Lru.build(), sim_config)
            .run_observed(&requests.into(), &mut obs);
        assert_eq!(obs.windows_closed(), 0, "measured region under one window");
        assert!(capture.lines().is_empty());
    }
}
