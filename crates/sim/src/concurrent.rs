//! Multi-threaded replay against the sharded engine.
//!
//! [`ConcurrentSimulator::run`] replays a [`DenseTrace`] through a
//! [`ShardedEngine`] with `M` client threads. The trace is first split
//! into per-shard request subsequences by a [`ShardedTrace`] view
//! (fx-hash routing, identical to [`ShardedEngine::route`]); clients
//! then take shards round-robin (client `c` owns shards `c`, `c + M`,
//! `c + 2M`, …) and replay each owned shard's subsequence through the
//! batched hot loop of PR 6 — modification pre-pass over the SoA
//! arrays, alloc-free inserts, deferred heap maintenance — holding that
//! shard's stripe lock for the duration and publishing progress through
//! the engine's lock-free counters batch by batch.
//!
//! ## Determinism
//!
//! Results are **independent of the client count and of thread
//! interleaving**. A document is routed to exactly one shard, so each
//! shard's subsequence — including its modification verdicts, which
//! depend only on per-document previous transfer sizes — is a fixed
//! function of the trace and the shard count. Each shard replays its
//! subsequence in trace order against its own cache and policy, and the
//! merged per-type counters are a commutative sum over shards. The
//! `N = 1` engine therefore reproduces the serial simulator's report
//! bit-for-bit, and any `M` produces the same merged report as `M = 1`
//! (both pinned by differential tests).
//!
//! Warm-up stays **global**: a request is measured iff its *global*
//! trace index is past the warm-up boundary, so the merged report uses
//! exactly the same measured set as the serial simulator.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use webcache_core::{
    Cache, Eviction, PolicySpec, ShardBalance, ShardConfigError, ShardLockProbe, ShardedEngine,
};
use webcache_trace::{ByteSize, DenseTrace, DocumentType, TypeMap};

use crate::live::{LiveStatus, LiveSummary, TraceSource};
use crate::metrics::HitStats;
use crate::observe::{AccessEvent, NoopObserver, Observer, RunMeta};
use crate::simulator::{access_kind, notify_insert, SimulationConfig, SimulationReport};
use crate::simulator::{DEFAULT_BATCH_SIZE, NO_TRANSFER};

/// A [`DenseTrace`] pre-split for an `N`-shard engine.
///
/// Built once per (trace, shard count) and shared read-only across the
/// client threads, exactly like the dense view itself. Holds, per
/// global document slot, the owning shard and the **shard-local** slot
/// (dense within the shard, numbered in first-appearance order, so each
/// shard's cache can use identity slot addressing), plus each shard's
/// request subsequence as global trace indices in trace order.
#[derive(Debug, Clone)]
pub struct ShardedTrace {
    shard_count: usize,
    /// Per global slot: the owning shard.
    shard_of_slot: Vec<u32>,
    /// Per global slot: the slot within the owning shard.
    local_slot: Vec<u32>,
    /// Per shard: the global slot behind each shard-local slot (the
    /// inverse of `local_slot`, for translating cache-level eviction
    /// victims back to the global addressing observers see).
    global_of_local: Vec<Vec<u32>>,
    /// Per shard: global request indices, in trace order.
    shard_requests: Vec<Vec<u32>>,
    /// Per shard: distinct documents routed to it.
    per_shard_distinct: Vec<usize>,
}

impl ShardedTrace {
    /// Splits `trace` for `shard_count` shards (power of two).
    ///
    /// # Errors
    ///
    /// [`ShardConfigError`] for a zero or non-power-of-two count.
    ///
    /// # Panics
    ///
    /// Panics when the trace exceeds `u32::MAX` requests (the per-shard
    /// subsequences store 32-bit indices).
    pub fn build(trace: &DenseTrace, shard_count: usize) -> Result<ShardedTrace, ShardConfigError> {
        webcache_core::validate_shard_count(shard_count)?;
        assert!(
            trace.len() <= u32::MAX as usize,
            "trace too long for 32-bit request indices"
        );
        let distinct = trace.distinct_documents();
        let mut shard_of_slot = vec![0u32; distinct];
        let mut local_slot = vec![0u32; distinct];
        let mut per_shard_distinct = vec![0usize; shard_count];
        // Global slots are numbered in first-appearance order, so walking
        // them in order hands out shard-local slots in first-appearance
        // order within each shard too.
        let mut global_of_local: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for slot in 0..distinct {
            let shard = ShardedEngine::route(DenseTrace::slot_doc(slot as u32), shard_count);
            shard_of_slot[slot] = shard as u32;
            local_slot[slot] = per_shard_distinct[shard] as u32;
            global_of_local[shard].push(slot as u32);
            per_shard_distinct[shard] += 1;
        }
        let mut shard_requests: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for (index, &slot) in trace.docs().iter().enumerate() {
            shard_requests[shard_of_slot[slot as usize] as usize].push(index as u32);
        }
        Ok(ShardedTrace {
            shard_count,
            shard_of_slot,
            local_slot,
            global_of_local,
            shard_requests,
            per_shard_distinct,
        })
    }

    /// The shard count this view was built for.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning global document `slot`.
    pub fn shard_of_slot(&self, slot: u32) -> usize {
        self.shard_of_slot[slot as usize] as usize
    }

    /// Distinct documents routed to each shard.
    pub fn per_shard_distinct(&self) -> &[usize] {
        &self.per_shard_distinct
    }

    /// Requests routed to shard `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shard_requests[shard].len()
    }
}

/// One shard's share of a concurrent replay.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Requests routed to the shard (warm-up included).
    pub requests: u64,
    /// Requests served from the shard's cache (warm-up included).
    pub hits: u64,
    /// Bytes requested from the shard (warm-up included).
    pub bytes_requested: u64,
    /// Bytes served from the shard's cache (warm-up included).
    pub bytes_hit: u64,
    /// Distinct documents routed to the shard.
    pub distinct_documents: usize,
    /// Per-type counters over the **measured** region only (the merge
    /// input; sums across shards to the serial report).
    pub by_type: TypeMap<HitStats>,
}

/// The outcome of one concurrent replay.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Label of the replacement policy (e.g. `"GD*(P)"`).
    pub policy: String,
    /// Configuration the run used (capacity is the **total** budget;
    /// each shard held `capacity / shards`).
    pub config: SimulationConfig,
    /// Shard count of the engine.
    pub shards: usize,
    /// Client threads that drove the replay.
    pub clients: usize,
    /// Requests replayed (equals the trace length when `completed`).
    pub requests: u64,
    /// Wall-clock duration of the replay (engine build included).
    pub elapsed: Duration,
    /// Whether the replay ran to completion (`false` when a shutdown
    /// flag stopped it mid-pass; counters then cover a prefix).
    pub completed: bool,
    /// Per-shard summaries, in shard order.
    pub per_shard: Vec<ShardSummary>,
    /// Merged per-type counters (measured region only).
    by_type: TypeMap<HitStats>,
}

impl ConcurrentReport {
    /// Merged per-type counters (measured region only).
    pub fn by_type(&self) -> &TypeMap<HitStats> {
        &self.by_type
    }

    /// Merged counters over all document types.
    pub fn overall(&self) -> HitStats {
        let mut total = HitStats::default();
        for (_, s) in self.by_type.iter() {
            total += *s;
        }
        total
    }

    /// Aggregate replay throughput in requests/second.
    pub fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Request/byte spread across the shards (warm-up included).
    pub fn balance(&self) -> ShardBalance {
        let counts: Vec<(u64, u64)> = self
            .per_shard
            .iter()
            .map(|s| (s.requests, s.bytes_requested))
            .collect();
        ShardBalance::from_counts(&counts)
    }

    /// The merged outcome as a plain [`SimulationReport`] (no occupancy
    /// series — concurrent replay does not sample occupancy).
    pub fn to_simulation_report(&self) -> SimulationReport {
        SimulationReport::from_parts(self.policy.clone(), self.config, self.by_type)
    }
}

/// Replays dense traces through a sharded engine with client threads.
/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ConcurrentSimulator {
    /// The policy spec; the replacement half is instantiated once per
    /// shard, the admission half once per shard's cache.
    pub spec: PolicySpec,
    /// Simulation parameters; `capacity` is the total budget split
    /// evenly across shards, `occupancy_samples` is ignored.
    pub config: SimulationConfig,
    /// Batch size of the per-shard hot loop.
    pub batch_size: usize,
    /// Optional per-shard lock-contention probes, cloned onto each
    /// pass's engine (the handles share cells, so stats accumulate
    /// across passes). `None` leaves the engine's lock path
    /// uninstrumented.
    pub lock_probes: Option<Vec<ShardLockProbe>>,
}

impl ConcurrentSimulator {
    /// A concurrent simulator with the default batch size. Accepts a
    /// bare [`PolicyKind`](webcache_core::PolicyKind) or a composed
    /// spec; a spec-level admission filter overrides
    /// [`SimulationConfig::admission_rule`], mirroring
    /// [`Simulator::from_spec`](crate::Simulator::from_spec).
    pub fn new(spec: impl Into<PolicySpec>, config: SimulationConfig) -> ConcurrentSimulator {
        let spec = spec.into();
        let mut config = config;
        config.admission_rule = spec.admission_or(config.admission_rule);
        ConcurrentSimulator {
            spec,
            config,
            batch_size: DEFAULT_BATCH_SIZE,
            lock_probes: None,
        }
    }

    /// Installs per-shard lock probes (one per shard; see
    /// [`ShardedEngine::set_lock_probes`]).
    #[must_use]
    pub fn with_lock_probes(mut self, probes: Vec<ShardLockProbe>) -> ConcurrentSimulator {
        self.lock_probes = Some(probes);
        self
    }

    /// Splits `trace` for `shards` shards and replays it with `clients`
    /// threads.
    ///
    /// # Errors
    ///
    /// [`ShardConfigError`] for an invalid shard count.
    pub fn run(
        &self,
        trace: &DenseTrace,
        shards: usize,
        clients: usize,
    ) -> Result<ConcurrentReport, ShardConfigError> {
        let sharded = ShardedTrace::build(trace, shards)?;
        Ok(self.run_sharded(trace, &sharded, clients))
    }

    /// Replays over a pre-built [`ShardedTrace`] (the bench hot path —
    /// the split is built once, outside the timed region).
    pub fn run_sharded(
        &self,
        trace: &DenseTrace,
        sharded: &ShardedTrace,
        clients: usize,
    ) -> ConcurrentReport {
        self.run_sharded_observed(trace, sharded, clients, |_| NoopObserver)
            .0
    }

    /// Like [`ConcurrentSimulator::run_sharded`], with one observer per
    /// shard built by `factory(shard)`; observers are returned in shard
    /// order. Events carry **global** request indices and **global**
    /// document slots, so per-shard observers see the same event values
    /// as a serial observer would — only partitioned, each shard's
    /// stream in trace order.
    pub fn run_sharded_observed<O, F>(
        &self,
        trace: &DenseTrace,
        sharded: &ShardedTrace,
        clients: usize,
        factory: F,
    ) -> (ConcurrentReport, Vec<O>)
    where
        O: Observer + Send,
        F: Fn(usize) -> O + Sync,
    {
        self.run_sharded_controlled(trace, sharded, clients, None, None, factory)
    }

    /// The full-control variant: an optional aggregate request-rate
    /// throttle (split across clients in proportion to their share of
    /// the trace) and an optional shutdown flag checked at batch
    /// boundaries (a raised flag abandons the rest of the replay and
    /// marks the report `completed: false`).
    pub fn run_sharded_controlled<O, F>(
        &self,
        trace: &DenseTrace,
        sharded: &ShardedTrace,
        clients: usize,
        rate: Option<f64>,
        shutdown: Option<&AtomicBool>,
        factory: F,
    ) -> (ConcurrentReport, Vec<O>)
    where
        O: Observer + Send,
        F: Fn(usize) -> O + Sync,
    {
        let shards = sharded.shard_count();
        let clients = clients.max(1).min(shards.max(1));
        let started = Instant::now();
        let mut engine = ShardedEngine::with_dense_shards(
            self.config.capacity,
            self.spec,
            self.config.admission_rule,
            sharded.per_shard_distinct(),
            true,
        )
        .expect("ShardedTrace shard count is validated");
        if let Some(probes) = &self.lock_probes {
            engine.set_lock_probes(probes.clone());
        }
        let engine = engine;
        let warmup_end = ((trace.len() as f64) * self.config.warmup_fraction).floor() as usize;

        let mut outcomes: Vec<Option<(ShardOutcome, O)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let engine = &engine;
                    let factory = &factory;
                    scope.spawn(move || {
                        let owned: Vec<usize> = (client..shards).step_by(clients).collect();
                        let client_requests: usize =
                            owned.iter().map(|&s| sharded.shard_len(s)).sum();
                        let mut throttle = rate.filter(|_| client_requests > 0).map(|r| {
                            Throttle::new(r * client_requests as f64 / trace.len().max(1) as f64)
                        });
                        let mut results = Vec::with_capacity(owned.len());
                        for shard in owned {
                            let mut observer = factory(shard);
                            let outcome = engine.with_shard(shard, |cache| {
                                replay_shard(
                                    cache,
                                    engine,
                                    trace,
                                    sharded,
                                    shard,
                                    warmup_end,
                                    self.config,
                                    self.batch_size,
                                    &mut observer,
                                    throttle.as_mut(),
                                    shutdown,
                                )
                            });
                            let completed = outcome.completed;
                            results.push((shard, outcome, observer));
                            if !completed {
                                break;
                            }
                        }
                        results
                    })
                })
                .collect();
            let mut slots: Vec<Option<(ShardOutcome, O)>> = (0..shards).map(|_| None).collect();
            for handle in handles {
                for (shard, outcome, observer) in handle.join().expect("client thread") {
                    slots[shard] = Some((outcome, observer));
                }
            }
            slots
        });

        let mut by_type: TypeMap<HitStats> = TypeMap::default();
        let mut per_shard = Vec::with_capacity(shards);
        let mut observers = Vec::with_capacity(shards);
        let mut requests = 0u64;
        let mut completed = true;
        for (shard, slot) in outcomes.iter_mut().enumerate() {
            let Some((outcome, observer)) = slot.take() else {
                // A client abandoned its remaining shards on shutdown.
                completed = false;
                continue;
            };
            completed &= outcome.completed;
            requests += outcome.summary.requests;
            for (ty, stats) in outcome.summary.by_type.iter() {
                by_type[ty] += *stats;
            }
            debug_assert_eq!(outcome.summary.shard, shard);
            per_shard.push(outcome.summary);
            observers.push(observer);
        }

        (
            ConcurrentReport {
                policy: engine.policy_label(),
                config: self.config,
                shards,
                clients,
                requests,
                elapsed: started.elapsed(),
                completed,
                per_shard,
                by_type,
            },
            observers,
        )
    }
}

/// What [`replay_shard`] hands back per shard.
struct ShardOutcome {
    summary: ShardSummary,
    completed: bool,
}

/// The per-shard batched hot loop: PR 6's replay specialized to one
/// shard's subsequence. Holds the shard lock (the caller passes the
/// locked cache) and publishes counter deltas per batch.
#[allow(clippy::too_many_arguments)]
fn replay_shard<O: Observer>(
    cache: &mut Cache,
    engine: &ShardedEngine,
    trace: &DenseTrace,
    sharded: &ShardedTrace,
    shard: usize,
    warmup_end: usize,
    config: SimulationConfig,
    batch_size: usize,
    observer: &mut O,
    mut throttle: Option<&mut Throttle>,
    shutdown: Option<&AtomicBool>,
) -> ShardOutcome {
    let batch_size = batch_size.max(1);
    let requests = &sharded.shard_requests[shard];
    let distinct = sharded.per_shard_distinct[shard];
    observer.on_run_start(RunMeta {
        total_requests: requests.len(),
        warmup_end,
        capacity: engine.shard_capacity(),
    });

    let slots = trace.docs();
    let sizes = trace.sizes();
    let types = trace.type_indices();
    let local = &sharded.local_slot;
    let global_of = &sharded.global_of_local[shard];

    let mut last_transfer: Vec<u64> = vec![NO_TRANSFER; distinct];
    let mut modified_flags = vec![false; batch_size.min(requests.len().max(1))];
    let mut evicted: Vec<Eviction> = Vec::new();
    let mut by_type: TypeMap<HitStats> = TypeMap::default();
    let mut summary = ShardSummary {
        shard,
        requests: 0,
        hits: 0,
        bytes_requested: 0,
        bytes_hit: 0,
        distinct_documents: distinct,
        by_type: TypeMap::default(),
    };
    let mut completed = true;

    'batches: for batch in requests.chunks(batch_size) {
        if let Some(flag) = shutdown {
            if flag.load(Ordering::Relaxed) {
                completed = false;
                break 'batches;
            }
        }
        // Modification pre-pass, exactly as in the serial batched loop:
        // the last-transfer chain is per document and every document
        // lives in exactly one shard, so per-shard verdicts equal the
        // global serial ones.
        for (k, &gi) in batch.iter().enumerate() {
            let gi = gi as usize;
            let slot = local[slots[gi] as usize] as usize;
            let transfer = sizes[gi];
            let prev = last_transfer[slot];
            last_transfer[slot] = transfer;
            modified_flags[k] =
                prev != NO_TRANSFER && config.modification_rule.is_modification(prev, transfer);
        }

        let mut batch_hits = 0u64;
        let mut batch_bytes_hit = 0u64;
        let mut batch_bytes = 0u64;
        for (k, &gi) in batch.iter().enumerate() {
            let gi = gi as usize;
            let global_slot = slots[gi];
            let doc = DenseTrace::slot_doc(local[global_slot as usize]);
            let size = ByteSize::new(sizes[gi]);
            let doc_type = DocumentType::from_index(types[gi] as usize);
            let modified = modified_flags[k];

            let hit = if modified {
                cache.invalidate(doc);
                false
            } else {
                cache.access(doc)
            };
            let event = AccessEvent {
                index: gi as u64,
                doc: DenseTrace::slot_doc(global_slot),
                doc_type,
                size,
                warmup: gi < warmup_end,
            };
            observer.on_access(event, access_kind(hit, modified));
            if !hit {
                let disposition = cache.insert_into(doc, doc_type, size, &mut evicted);
                // The cache addresses documents by shard-local slot;
                // translate victims back to global slots so observers
                // see the same document ids a serial replay would.
                for eviction in &mut evicted {
                    eviction.doc = DenseTrace::slot_doc(global_of[eviction.doc.as_u64() as usize]);
                }
                notify_insert(observer, event, disposition, &evicted);
            }

            batch_bytes += size.as_u64();
            if hit {
                batch_hits += 1;
                batch_bytes_hit += size.as_u64();
            }
            if gi >= warmup_end {
                let stats = &mut by_type[doc_type];
                stats.record(size, hit);
                if modified {
                    stats.modification_misses += 1;
                }
            }
        }

        summary.requests += batch.len() as u64;
        summary.hits += batch_hits;
        summary.bytes_requested += batch_bytes;
        summary.bytes_hit += batch_bytes_hit;
        engine.counters(shard).add_bulk(
            batch.len() as u64,
            batch_hits,
            batch_bytes,
            batch_bytes_hit,
        );
        if let Some(t) = throttle.as_deref_mut() {
            t.pace(batch.len() as u64, shutdown);
        }
    }
    observer.on_run_end();
    summary.by_type = by_type;
    ShardOutcome { summary, completed }
}

/// Sleeps as needed to hold one client's target request rate. Checked
/// once per batch; never sleeps once the shutdown flag is up.
#[derive(Debug)]
struct Throttle {
    per_sec: f64,
    started: Instant,
    done: u64,
}

impl Throttle {
    fn new(per_sec: f64) -> Throttle {
        Throttle {
            per_sec: per_sec.max(1e-9),
            started: Instant::now(),
            done: 0,
        }
    }

    fn pace(&mut self, just_done: u64, shutdown: Option<&AtomicBool>) {
        self.done += just_done;
        let due = Duration::from_secs_f64(self.done as f64 / self.per_sec);
        let elapsed = self.started.elapsed();
        let stop = shutdown.is_some_and(|f| f.load(Ordering::Relaxed));
        if due > elapsed && !stop {
            std::thread::sleep(due - elapsed);
        }
    }
}

/// One completed pass of a [`ShardedReplayLoop`].
#[derive(Debug)]
pub struct ConcurrentPassSummary {
    /// 0-based pass index.
    pub pass: u64,
    /// Requests replayed in this pass.
    pub requests: u64,
    /// Wall-clock duration of the pass.
    pub elapsed: Duration,
    /// Aggregate requests per second achieved.
    pub req_per_sec: f64,
    /// The pass's report (per-shard summaries included).
    pub report: ConcurrentReport,
}

/// The continuous replay driver against the sharded engine — the
/// `webcache serve --shards N --clients M` engine. Mirrors
/// [`ReplayLoop`](crate::live::ReplayLoop): one fresh engine per pass,
/// shutdown honored between passes *and* at batch boundaries within a
/// pass (an interrupted pass is discarded, not reported).
#[derive(Debug, Clone)]
pub struct ShardedReplayLoop {
    /// Cache/simulation parameters, applied to every pass.
    pub config: SimulationConfig,
    /// The policy spec, freshly instantiated per shard per pass.
    pub spec: PolicySpec,
    /// Target aggregate request rate; `None` replays flat out.
    pub rate: Option<f64>,
    /// Pass budget; `None` loops until shutdown.
    pub max_passes: Option<u64>,
    /// Shard count of the engine.
    pub shards: usize,
    /// Client threads per pass.
    pub clients: usize,
    /// Optional per-shard lock probes, shared across every pass's
    /// engine (handles share cells, so contention stats accumulate).
    pub lock_probes: Option<Vec<ShardLockProbe>>,
}

impl ShardedReplayLoop {
    /// Runs passes until `shutdown` rises, `max_passes` is reached, or
    /// `source` runs dry. `on_pass` fires after each completed pass.
    ///
    /// # Errors
    ///
    /// [`ShardConfigError`] for an invalid shard count.
    pub fn run<S, F>(
        &self,
        source: &mut S,
        status: &LiveStatus,
        shutdown: &AtomicBool,
        on_pass: F,
    ) -> Result<LiveSummary, ShardConfigError>
    where
        S: TraceSource,
        F: FnMut(&ConcurrentPassSummary),
    {
        self.run_observed(source, status, shutdown, |_| NoopObserver, on_pass)
    }

    /// Like [`ShardedReplayLoop::run`], with one observer per shard per
    /// pass built by `factory(shard)`. Observers see global request
    /// indices (see [`ConcurrentSimulator::run_sharded_observed`]); a
    /// factory handing each shard a clone of a shared flight-recorder
    /// ring is how the serve path keeps a decision trail in concurrent
    /// mode. Per-pass observer state is discarded at pass end — durable
    /// state must live behind the factory's shared handles.
    ///
    /// # Errors
    ///
    /// [`ShardConfigError`] for an invalid shard count.
    pub fn run_observed<S, O, OF, F>(
        &self,
        source: &mut S,
        status: &LiveStatus,
        shutdown: &AtomicBool,
        factory: OF,
        mut on_pass: F,
    ) -> Result<LiveSummary, ShardConfigError>
    where
        S: TraceSource,
        O: Observer + Send,
        OF: Fn(usize) -> O + Sync,
        F: FnMut(&ConcurrentPassSummary),
    {
        webcache_core::validate_shard_count(self.shards)?;
        let mut simulator = ConcurrentSimulator::new(self.spec, self.config);
        simulator.lock_probes = self.lock_probes.clone();
        status.set_replaying(true);
        let mut passes = 0u64;
        let mut requests = 0u64;
        while !shutdown.load(Ordering::Relaxed) && self.max_passes.is_none_or(|max| passes < max) {
            let Some(dense) = source.next_pass(passes) else {
                break;
            };
            // Rebuilt per pass: stream sources hand out a new trace each
            // epoch, and the split is one O(n) sweep — noise next to the
            // replay itself.
            let sharded = ShardedTrace::build(dense, self.shards)?;
            let (report, _) = simulator.run_sharded_controlled(
                dense,
                &sharded,
                self.clients,
                self.rate,
                Some(shutdown),
                &factory,
            );
            if !report.completed {
                break;
            }
            let elapsed = report.elapsed;
            let pass_requests = report.requests;
            let req_per_sec = report.requests_per_sec();
            requests += pass_requests;
            passes += 1;
            status.record_pass(passes, requests, req_per_sec);
            on_pass(&ConcurrentPassSummary {
                pass: passes - 1,
                requests: pass_requests,
                elapsed,
                req_per_sec,
                report,
            });
        }
        status.set_replaying(false);
        Ok(LiveSummary { passes, requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::FixedSource;
    use webcache_core::PolicyKind;
    use webcache_trace::{DocId, Request, Timestamp, Trace};

    fn mixed_trace(requests: usize, distinct: u64) -> Trace {
        (0..requests as u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new((i * 7 + 3) % distinct),
                    DocumentType::ALL[(i % 5) as usize],
                    ByteSize::new(200 + (i % 90) * 13),
                )
            })
            .collect()
    }

    fn config(capacity: u64) -> SimulationConfig {
        SimulationConfig::builder()
            .capacity(ByteSize::new(capacity))
            .build()
    }

    #[test]
    fn sharded_trace_partitions_everything_exactly_once() {
        let dense = DenseTrace::build(&mixed_trace(1_000, 97));
        let sharded = ShardedTrace::build(&dense, 8).unwrap();
        let total: usize = (0..8).map(|s| sharded.shard_len(s)).sum();
        assert_eq!(total, dense.len());
        let distinct: usize = sharded.per_shard_distinct().iter().sum();
        assert_eq!(distinct, dense.distinct_documents());
        // Every request's shard matches its document's shard.
        for (index, &slot) in dense.docs().iter().enumerate() {
            let shard = sharded.shard_of_slot(slot);
            assert!(sharded.shard_requests[shard].contains(&(index as u32)));
        }
        // Subsequences are in trace order.
        for s in 0..8 {
            assert!(sharded.shard_requests[s].windows(2).all(|w| w[0] < w[1]));
        }
        assert!(ShardedTrace::build(&dense, 3).is_err());
        assert!(ShardedTrace::build(&dense, 0).is_err());
    }

    #[test]
    fn single_shard_report_equals_the_serial_simulator() {
        let trace = mixed_trace(2_000, 131);
        let dense = DenseTrace::build(&trace);
        let config = config(20_000);
        for kind in [
            PolicyKind::Lru,
            PolicyKind::GdStar(webcache_core::CostModel::Packet),
        ] {
            let serial = crate::simulator::Simulator::new(kind.build(), config).run_dense(&dense);
            let concurrent = ConcurrentSimulator::new(kind, config)
                .run(&dense, 1, 1)
                .unwrap();
            assert_eq!(concurrent.policy, serial.policy);
            assert_eq!(concurrent.by_type(), serial.by_type());
            assert!(concurrent.completed);
            assert_eq!(concurrent.requests, dense.len() as u64);
        }
    }

    #[test]
    fn composed_spec_single_shard_matches_the_serial_spec_run() {
        let trace = mixed_trace(2_000, 131);
        let dense = DenseTrace::build(&trace);
        let config = config(8_000);
        let spec: PolicySpec = "tinylfu+lru".parse().unwrap();
        let serial = crate::simulator::Simulator::from_spec(spec, config).run_dense(&dense);
        let concurrent = ConcurrentSimulator::new(spec, config)
            .run(&dense, 1, 1)
            .unwrap();
        assert_eq!(concurrent.policy, "TinyLFU+LRU");
        assert_eq!(concurrent.policy, serial.policy);
        assert_eq!(concurrent.by_type(), serial.by_type());
        assert_eq!(
            concurrent.config.admission_rule,
            webcache_core::AdmissionSpec::TinyLfu,
            "spec admission folds into the effective config"
        );
    }

    #[test]
    fn merged_report_is_identical_for_any_client_count() {
        let dense = DenseTrace::build(&mixed_trace(3_000, 173));
        let config = config(15_000);
        let sim =
            ConcurrentSimulator::new(PolicyKind::Gdsf(webcache_core::CostModel::Packet), config);
        let sharded = ShardedTrace::build(&dense, 8).unwrap();
        let baseline = sim.run_sharded(&dense, &sharded, 1);
        for clients in [2, 3, 4, 8, 16] {
            let report = sim.run_sharded(&dense, &sharded, clients);
            assert_eq!(report.by_type(), baseline.by_type(), "clients={clients}");
            assert_eq!(report.per_shard.len(), baseline.per_shard.len());
            for (a, b) in report.per_shard.iter().zip(baseline.per_shard.iter()) {
                assert_eq!(a.requests, b.requests);
                assert_eq!(a.hits, b.hits);
                assert_eq!(a.bytes_requested, b.bytes_requested);
                assert_eq!(a.by_type, b.by_type);
            }
        }
    }

    #[test]
    fn per_shard_summaries_cover_the_full_trace() {
        let dense = DenseTrace::build(&mixed_trace(2_500, 113));
        let report = ConcurrentSimulator::new(PolicyKind::Lru, config(10_000))
            .run(&dense, 4, 2)
            .unwrap();
        assert_eq!(report.shards, 4);
        assert_eq!(report.clients, 2);
        let requests: u64 = report.per_shard.iter().map(|s| s.requests).sum();
        assert_eq!(requests, dense.len() as u64);
        let bytes: u64 = report.per_shard.iter().map(|s| s.bytes_requested).sum();
        assert_eq!(bytes, dense.sizes().iter().sum::<u64>());
        let balance = report.balance();
        assert!(balance.request_imbalance >= 1.0);
        assert!(balance.byte_imbalance >= 1.0);
        assert!(report.requests_per_sec() > 0.0);
        // The simulation-report view carries the same merged counters.
        assert_eq!(report.to_simulation_report().by_type(), report.by_type());
    }

    #[test]
    fn clients_beyond_shards_are_clamped() {
        let dense = DenseTrace::build(&mixed_trace(500, 41));
        let report = ConcurrentSimulator::new(PolicyKind::Fifo, config(5_000))
            .run(&dense, 2, 64)
            .unwrap();
        assert_eq!(report.clients, 2);
        assert!(report.completed);
    }

    #[test]
    fn raised_shutdown_flag_stops_the_replay_incomplete() {
        let dense = DenseTrace::build(&mixed_trace(4_000, 211));
        let sharded = ShardedTrace::build(&dense, 4).unwrap();
        let flag = AtomicBool::new(true);
        let (report, _) = ConcurrentSimulator::new(PolicyKind::Lru, config(10_000))
            .run_sharded_controlled(&dense, &sharded, 2, None, Some(&flag), |_| NoopObserver);
        assert!(!report.completed);
        assert_eq!(report.requests, 0, "flag was up before the first batch");
    }

    #[test]
    fn sharded_loop_runs_passes_and_reports_status() {
        let trace = mixed_trace(800, 67);
        let mut source = FixedSource::new(&trace);
        let status = LiveStatus::new();
        let shutdown = AtomicBool::new(false);
        let mut seen = Vec::new();
        let summary = ShardedReplayLoop {
            config: config(8_000),
            spec: PolicyKind::Lru.into(),
            rate: None,
            max_passes: Some(3),
            shards: 4,
            clients: 4,
            lock_probes: None,
        }
        .run(&mut source, &status, &shutdown, |pass| {
            seen.push((pass.pass, pass.report.shards));
        })
        .unwrap();
        assert_eq!(summary.passes, 3);
        assert_eq!(summary.requests, 2_400);
        assert_eq!(seen, vec![(0, 4), (1, 4), (2, 4)]);
        assert_eq!(status.passes(), 3);
        assert!(!status.replaying());
        assert!(status.last_pass_req_per_sec() > 0.0);
    }

    #[test]
    fn sharded_loop_rejects_bad_shard_counts() {
        let trace = mixed_trace(100, 11);
        let mut source = FixedSource::new(&trace);
        let status = LiveStatus::new();
        let shutdown = AtomicBool::new(false);
        let err = ShardedReplayLoop {
            config: config(1_000),
            spec: PolicyKind::Lru.into(),
            rate: None,
            max_passes: Some(1),
            shards: 6,
            clients: 2,
            lock_probes: None,
        }
        .run(&mut source, &status, &shutdown, |_| {})
        .unwrap_err();
        assert_eq!(err, ShardConfigError::NotPowerOfTwo(6));
    }

    #[test]
    fn lock_probes_observe_every_shard_acquisition_without_changing_results() {
        let dense = DenseTrace::build(&mixed_trace(2_000, 131));
        let sharded = ShardedTrace::build(&dense, 4).unwrap();
        let config = config(12_000);
        let plain = ConcurrentSimulator::new(PolicyKind::Lru, config);
        let probes: Vec<ShardLockProbe> = (0..4).map(|_| ShardLockProbe::new()).collect();
        let probed =
            ConcurrentSimulator::new(PolicyKind::Lru, config).with_lock_probes(probes.clone());
        let baseline = plain.run_sharded(&dense, &sharded, 4);
        let report = probed.run_sharded(&dense, &sharded, 4);
        assert_eq!(report.by_type(), baseline.by_type());
        // The bulk path takes each shard's lock exactly once per pass.
        for probe in &probes {
            assert_eq!(probe.acquisitions.get(), 1);
            assert_eq!(probe.hold_us.count(), 1);
        }
        // A second pass through the same probes accumulates.
        probed.run_sharded(&dense, &sharded, 4);
        for probe in &probes {
            assert_eq!(probe.acquisitions.get(), 2);
        }
    }

    #[test]
    fn throttled_replay_holds_the_aggregate_rate() {
        let dense = DenseTrace::build(&mixed_trace(600, 31));
        let sharded = ShardedTrace::build(&dense, 2).unwrap();
        let started = Instant::now();
        let (report, _) = ConcurrentSimulator::new(PolicyKind::Lru, config(8_000))
            .run_sharded_controlled(&dense, &sharded, 2, Some(20_000.0), None, |_| NoopObserver);
        // 600 requests at 20k req/s aggregate ≈ 30 ms; allow wide slack.
        assert!(
            started.elapsed() >= Duration::from_millis(15),
            "throttle had no effect: {:?}",
            started.elapsed()
        );
        assert!(report.completed);
    }
}
