//! Policy × cache-size sweeps (the engine behind Figures 2 and 3).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use webcache_core::PolicySpec;
use webcache_obs::TraceRecorder;
use webcache_trace::{ByteSize, DenseTrace, DocumentType, Trace};

use crate::simulator::{SimulationConfig, SimulationReport, Simulator};

/// The relative cache sizes of the paper's figures: roughly 0.5% to 40%
/// of the overall trace size.
pub const PAPER_SIZE_FRACTIONS: [f64; 7] = [0.005, 0.01, 0.025, 0.05, 0.10, 0.20, 0.40];

/// One (policy, capacity) grid cell and its simulation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The policy spec simulated (admission + replacement).
    pub policy: PolicySpec,
    /// Cache capacity of the run.
    pub capacity: ByteSize,
    /// Full per-type report.
    pub report: SimulationReport,
}

/// All grid cells of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct SweepReport {
    points: Vec<SweepPoint>,
    /// `(policy, capacity) -> points index`, sorted for binary search.
    /// Derived from `points`; rebuilt on construction, excluded from
    /// equality.
    #[serde(skip)]
    index: Vec<(PolicySpec, ByteSize, u32)>,
}

impl PartialEq for SweepReport {
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
    }
}

impl SweepReport {
    /// Builds a report from grid points (in their display order).
    fn from_points(points: Vec<SweepPoint>) -> Self {
        let mut index: Vec<(PolicySpec, ByteSize, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.policy, p.capacity, i as u32))
            .collect();
        index.sort_unstable();
        SweepReport { points, index }
    }

    /// All points, ordered by policy then capacity.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The point for an exact (policy, capacity) pair. Accepts a bare
    /// [`PolicyKind`](webcache_core::PolicyKind) or a full spec.
    pub fn get(&self, policy: impl Into<PolicySpec>, capacity: ByteSize) -> Option<&SweepPoint> {
        let policy = policy.into();
        let at = self
            .index
            .partition_point(|&(p, c, _)| (p, c) < (policy, capacity));
        match self.index.get(at) {
            Some(&(p, c, i)) if p == policy && c == capacity => self.points.get(i as usize),
            _ => None,
        }
    }

    /// The distinct capacities in ascending order.
    pub fn capacities(&self) -> Vec<ByteSize> {
        let mut caps: Vec<ByteSize> = self.points.iter().map(|p| p.capacity).collect();
        caps.sort_unstable();
        caps.dedup();
        caps
    }

    /// The distinct policy specs, in first-appearance order.
    pub fn policies(&self) -> Vec<PolicySpec> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.policy) {
                seen.push(p.policy);
            }
        }
        seen
    }

    /// `(capacity, hit rate)` series for one policy, optionally for one
    /// document type (the curves of Figures 2/3, left columns).
    pub fn hit_rate_series(
        &self,
        policy: impl Into<PolicySpec>,
        ty: Option<DocumentType>,
    ) -> Vec<(ByteSize, f64)> {
        self.series(policy.into(), |report| match ty {
            Some(ty) => report.by_type()[ty].hit_rate(),
            None => report.overall().hit_rate(),
        })
    }

    /// `(capacity, byte hit rate)` series (the right columns).
    pub fn byte_hit_rate_series(
        &self,
        policy: impl Into<PolicySpec>,
        ty: Option<DocumentType>,
    ) -> Vec<(ByteSize, f64)> {
        self.series(policy.into(), |report| match ty {
            Some(ty) => report.by_type()[ty].byte_hit_rate(),
            None => report.overall().byte_hit_rate(),
        })
    }

    fn series(
        &self,
        policy: PolicySpec,
        metric: impl Fn(&SimulationReport) -> f64,
    ) -> Vec<(ByteSize, f64)> {
        let mut out: Vec<(ByteSize, f64)> = self
            .points
            .iter()
            .filter(|p| p.policy == policy)
            .map(|p| (p.capacity, metric(&p.report)))
            .collect();
        out.sort_unstable_by_key(|&(c, _)| c);
        out
    }
}

/// A progress snapshot, delivered to the [`CacheSizeSweep::run_with_progress`]
/// callback once per completed grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepProgress {
    /// Grid cells finished so far (including this one).
    pub completed: usize,
    /// Total grid cells in the sweep.
    pub total: usize,
    /// Index of the worker thread that ran the cell (`0..threads`).
    pub worker: usize,
    /// Policy spec of the finished cell.
    pub policy: PolicySpec,
    /// Capacity of the finished cell.
    pub capacity: ByteSize,
    /// Requests replayed by the cell (the trace length).
    pub requests: usize,
    /// Wall-clock time the cell took.
    pub elapsed: Duration,
    /// Replay throughput of the cell, in requests per second.
    pub requests_per_sec: f64,
}

/// A grid of simulations: every configured policy at every capacity.
#[derive(Debug, Clone)]
pub struct CacheSizeSweep {
    policies: Vec<PolicySpec>,
    capacities: Vec<ByteSize>,
    template: SimulationConfig,
    batched: bool,
    shards: usize,
}

impl CacheSizeSweep {
    /// Creates a sweep over the given policies and capacities with the
    /// paper's default simulation settings. Policies may be bare
    /// [`PolicyKind`](webcache_core::PolicyKind)s or full composed
    /// [`PolicySpec`]s (`tinylfu+slru`).
    ///
    /// # Panics
    ///
    /// Panics when either list is empty or any capacity is zero.
    pub fn new<P: Into<PolicySpec>>(policies: Vec<P>, capacities: Vec<ByteSize>) -> Self {
        let policies: Vec<PolicySpec> = policies.into_iter().map(Into::into).collect();
        assert!(!policies.is_empty(), "sweep needs at least one policy");
        assert!(!capacities.is_empty(), "sweep needs at least one capacity");
        assert!(
            capacities.iter().all(|c| !c.is_zero()),
            "capacities must be positive"
        );
        CacheSizeSweep {
            policies,
            capacities,
            template: SimulationConfig::new(ByteSize::new(1)),
            batched: true,
            shards: 1,
        }
    }

    /// Overrides the simulation config template (its capacity field is
    /// replaced per grid cell).
    #[must_use]
    pub fn with_config(mut self, template: SimulationConfig) -> Self {
        self.template = template;
        self
    }

    /// Selects between batched replay
    /// ([`Simulator::run_dense_batched`], the default — results are
    /// bit-identical, only faster for heap-backed policies) and the
    /// serial [`Simulator::run_dense`] loop.
    #[must_use]
    pub fn with_batched(mut self, batched: bool) -> Self {
        self.batched = batched;
        self
    }

    /// Runs every grid cell through an `N`-shard
    /// [`ShardedEngine`](webcache_core::ShardedEngine) instead of the
    /// single serial cache (capacity split evenly across shards). The
    /// default of 1 is bit-identical to the serial sweep; larger counts
    /// quantify the eviction-quality cost of sharding.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or not a power of two.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        webcache_core::validate_shard_count(shards).expect("sweep shard count");
        self.shards = shards;
        self
    }

    /// Capacities at the paper's relative cache sizes
    /// ([`PAPER_SIZE_FRACTIONS`]) of `trace`'s overall size.
    pub fn paper_capacities(trace: &Trace) -> Vec<ByteSize> {
        let overall = trace.overall_size();
        PAPER_SIZE_FRACTIONS
            .iter()
            .map(|&f| ByteSize::new((overall.as_f64() * f).round().max(1.0) as u64))
            .collect()
    }

    /// Runs the grid, using up to `threads` worker threads.
    ///
    /// Each grid cell is independent, so runs are embarrassingly
    /// parallel. The [`DenseTrace`] view is built **once** and shared
    /// read-only across the workers; each replays it against its own
    /// cache through the hash-free dense path.
    pub fn run_with_threads(&self, trace: &Trace, threads: usize) -> SweepReport {
        self.run_with_progress(trace, threads, |_| {})
    }

    /// Like [`CacheSizeSweep::run_with_threads`], but calls `progress`
    /// after every finished grid cell with completion counts and the
    /// cell's replay throughput.
    ///
    /// The callback runs on the worker threads (hence `Sync`); keep it
    /// cheap. Callback ordering across workers is non-deterministic, but
    /// `completed` is a consistent running count and reaches `total`
    /// exactly once.
    pub fn run_with_progress<F>(&self, trace: &Trace, threads: usize, progress: F) -> SweepReport
    where
        F: Fn(&SweepProgress) + Sync,
    {
        self.run_with_progress_recorded(trace, threads, progress, &mut [])
    }

    /// Like [`CacheSizeSweep::run_with_progress`], additionally recording
    /// one timing span per grid cell into per-worker [`TraceRecorder`]s.
    ///
    /// `recorders[i]` becomes worker `i`'s track; workers beyond
    /// `recorders.len()` run unrecorded (pass an empty slice to disable
    /// recording entirely — that is exactly
    /// [`CacheSizeSweep::run_with_progress`]). Cell spans are named
    /// `"<policy> @ <capacity>"`. Create the recorders from one shared
    /// [`TraceClock`](webcache_obs::TraceClock) so the worker tracks
    /// align in the exported chrome trace.
    pub fn run_with_progress_recorded<F>(
        &self,
        trace: &Trace,
        threads: usize,
        progress: F,
        recorders: &mut [TraceRecorder],
    ) -> SweepReport
    where
        F: Fn(&SweepProgress) + Sync,
    {
        let dense = DenseTrace::build(trace);
        let sharded = (self.shards > 1).then(|| {
            crate::concurrent::ShardedTrace::build(&dense, self.shards)
                .expect("with_shards validated the count")
        });
        let mut tasks: Vec<(PolicySpec, ByteSize)> = Vec::new();
        for &policy in &self.policies {
            for &capacity in &self.capacities {
                tasks.push((policy, capacity));
            }
        }
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let results: Mutex<Vec<SweepPoint>> = Mutex::new(Vec::with_capacity(tasks.len()));
        let workers = threads.clamp(1, tasks.len());
        let total = tasks.len();
        let requests = trace.len();
        // Hand each worker its own recorder by value; missing tails run
        // unrecorded.
        let mut recorders: Vec<Option<&mut TraceRecorder>> =
            recorders.iter_mut().map(Some).collect();
        recorders.resize_with(workers.max(recorders.len()), || None);

        std::thread::scope(|scope| {
            for (worker, mut recorder) in recorders.drain(..workers).enumerate() {
                let tasks = &tasks;
                let next = &next;
                let done = &done;
                let results = &results;
                let progress = &progress;
                let dense = &dense;
                let sharded = &sharded;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(policy, capacity)) = tasks.get(i) else {
                        break;
                    };
                    let config = SimulationConfig {
                        capacity,
                        ..self.template
                    };
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.begin(format!("{} @ {capacity}", policy.label()));
                    }
                    let started = Instant::now();
                    let report = if let Some(split) = sharded {
                        // Sharded cells run single-client: the sweep's
                        // own workers provide the parallelism, and the
                        // merged report is client-count independent
                        // anyway.
                        crate::concurrent::ConcurrentSimulator::new(policy, config)
                            .run_sharded(dense, split, 1)
                            .to_simulation_report()
                    } else {
                        let simulator = Simulator::from_spec(policy, config);
                        if self.batched {
                            simulator.run_dense_batched(dense)
                        } else {
                            simulator.run_dense(dense)
                        }
                    };
                    let elapsed = started.elapsed();
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.end();
                    }
                    results
                        .lock()
                        .expect("no panics hold the lock")
                        .push(SweepPoint {
                            policy,
                            capacity,
                            report,
                        });
                    let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                    progress(&SweepProgress {
                        completed,
                        total,
                        worker,
                        policy,
                        capacity,
                        requests,
                        elapsed,
                        requests_per_sec: requests as f64 / elapsed.as_secs_f64().max(1e-9),
                    });
                });
            }
        });

        let mut points = results.into_inner().expect("workers finished");
        points.sort_unstable_by_key(|p| {
            (
                self.policies.iter().position(|&k| k == p.policy),
                p.capacity,
            )
        });
        SweepReport::from_points(points)
    }

    /// Runs the grid with one worker per available CPU core.
    pub fn run(&self, trace: &Trace) -> SweepReport {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.run_with_threads(trace, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_core::PolicyKind;
    use webcache_trace::{DocId, Request, Timestamp};

    fn tiny_trace() -> Trace {
        (0..600u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new(i % 37),
                    if i % 5 == 0 {
                        DocumentType::Image
                    } else {
                        DocumentType::Html
                    },
                    ByteSize::new(500 + (i % 7) * 100),
                )
            })
            .collect()
    }

    #[test]
    fn grid_is_complete_and_ordered() {
        let trace = tiny_trace();
        let sweep = CacheSizeSweep::new(
            vec![PolicyKind::Lru, PolicyKind::LfuDa],
            vec![ByteSize::new(2_000), ByteSize::new(8_000)],
        );
        let report = sweep.run_with_threads(&trace, 4);
        assert_eq!(report.points().len(), 4);
        assert_eq!(
            report.policies(),
            vec![PolicyKind::Lru.into(), PolicyKind::LfuDa.into()]
        );
        assert_eq!(
            report.capacities(),
            vec![ByteSize::new(2_000), ByteSize::new(8_000)]
        );
        assert!(report.get(PolicyKind::Lru, ByteSize::new(2_000)).is_some());
        assert!(report.get(PolicyKind::Fifo, ByteSize::new(2_000)).is_none());
    }

    #[test]
    fn batched_sweep_matches_serial_sweep() {
        let trace = tiny_trace();
        let policies = vec![
            PolicyKind::Lru,
            PolicyKind::LfuDa,
            PolicyKind::GdStar(webcache_core::CostModel::Packet),
        ];
        let capacities = vec![ByteSize::new(2_000), ByteSize::new(8_000)];
        let batched =
            CacheSizeSweep::new(policies.clone(), capacities.clone()).run_with_threads(&trace, 2);
        let serial = CacheSizeSweep::new(policies, capacities)
            .with_batched(false)
            .run_with_threads(&trace, 2);
        for (b, s) in batched.points().iter().zip(serial.points()) {
            assert_eq!(b.policy, s.policy);
            assert_eq!(b.capacity, s.capacity);
            assert_eq!(b.report, s.report, "{} @ {}", b.policy.label(), b.capacity);
        }
    }

    #[test]
    fn single_shard_sweep_matches_plain_sweep() {
        let trace = tiny_trace();
        let policies = vec![
            PolicyKind::Lru,
            PolicyKind::GdStar(webcache_core::CostModel::Packet),
        ];
        let capacities = vec![ByteSize::new(2_000), ByteSize::new(8_000)];
        let plain =
            CacheSizeSweep::new(policies.clone(), capacities.clone()).run_with_threads(&trace, 2);
        let sharded = CacheSizeSweep::new(policies, capacities)
            .with_shards(1)
            .run_with_threads(&trace, 2);
        for (p, s) in plain.points().iter().zip(sharded.points()) {
            assert_eq!(p.report.by_type(), s.report.by_type());
        }
    }

    #[test]
    fn sharded_sweep_runs_the_full_grid() {
        let trace = tiny_trace();
        let report = CacheSizeSweep::new(
            vec![PolicyKind::Lru, PolicyKind::LfuDa],
            vec![ByteSize::new(2_000), ByteSize::new(8_000)],
        )
        .with_shards(4)
        .run_with_threads(&trace, 2);
        assert_eq!(report.points().len(), 4);
        for point in report.points() {
            assert!(point.report.overall().requests > 0);
        }
    }

    #[test]
    #[should_panic(expected = "sweep shard count")]
    fn sweep_rejects_non_power_of_two_shards() {
        let _ =
            CacheSizeSweep::new(vec![PolicyKind::Lru], vec![ByteSize::new(1_000)]).with_shards(3);
    }

    #[test]
    fn composed_specs_sweep_alongside_bare_kinds() {
        let trace = tiny_trace();
        let composed: PolicySpec = "tinylfu+slru".parse().unwrap();
        let specs = vec![composed, PolicyKind::Lru.into()];
        let report = CacheSizeSweep::new(specs, vec![ByteSize::new(2_000), ByteSize::new(8_000)])
            .run_with_threads(&trace, 2);
        assert_eq!(report.points().len(), 4);
        assert_eq!(
            report.policies(),
            vec![composed, PolicyKind::Lru.into()],
            "first-appearance order, specs kept distinct"
        );
        let series = report.hit_rate_series(composed, None);
        assert_eq!(series.len(), 2);
        let point = report.get(composed, ByteSize::new(8_000)).unwrap();
        assert_eq!(point.report.policy, "TinyLFU+SLRU");
    }

    #[test]
    fn hit_rate_grows_with_capacity() {
        let trace = tiny_trace();
        let sweep = CacheSizeSweep::new(
            vec![PolicyKind::Lru],
            vec![
                ByteSize::new(1_000),
                ByteSize::new(4_000),
                ByteSize::new(64_000),
            ],
        );
        let series = sweep
            .run_with_threads(&trace, 2)
            .hit_rate_series(PolicyKind::Lru, None);
        assert_eq!(series.len(), 3);
        assert!(series[0].1 <= series[2].1, "{series:?}");
        assert!(series[2].1 > 0.5, "everything fits at 64 kB: {series:?}");
    }

    #[test]
    fn recorded_sweep_spans_cover_every_cell() {
        let trace = tiny_trace();
        let sweep = CacheSizeSweep::new(
            vec![
                PolicyKind::Lru,
                PolicyKind::Gds(webcache_core::CostModel::Constant),
            ],
            vec![ByteSize::new(2_000), ByteSize::new(8_000)],
        );
        let clock = webcache_obs::TraceClock::new();
        let mut recorders: Vec<TraceRecorder> = (0..2)
            .map(|i| TraceRecorder::new(&clock, i as u32 + 1, format!("sweep-worker-{i}")))
            .collect();
        let report = sweep.run_with_progress_recorded(&trace, 2, |_| {}, &mut recorders);
        assert_eq!(report.points().len(), 4);
        let spans: Vec<&str> = recorders
            .iter()
            .flat_map(|r| r.events().iter().map(|e| e.name.as_str()))
            .collect();
        assert_eq!(spans.len(), 4, "one span per grid cell: {spans:?}");
        for rec in &recorders {
            assert_eq!(rec.open_spans(), 0, "all cell spans closed");
        }
        assert!(spans.iter().any(|s| s.starts_with("LRU @ ")), "{spans:?}");
        assert!(
            spans.iter().any(|s| s.starts_with("GDS(1) @ ")),
            "{spans:?}"
        );
        // Fewer recorders than workers: tail workers run unrecorded, the
        // sweep still completes.
        let mut one = vec![TraceRecorder::new(&clock, 9, "solo")];
        let report = sweep.run_with_progress_recorded(&trace, 4, |_| {}, &mut one);
        assert_eq!(report.points().len(), 4);
        assert!(one[0].events().len() <= 4);
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let trace = tiny_trace();
        let sweep = CacheSizeSweep::new(
            PolicyKind::PAPER_CONSTANT.to_vec(),
            vec![ByteSize::new(3_000), ByteSize::new(9_000)],
        );
        let serial = sweep.run_with_threads(&trace, 1);
        let parallel = sweep.run_with_threads(&trace, 8);
        assert_eq!(serial, parallel, "simulation must be deterministic");
    }

    #[test]
    fn paper_capacities_scale_with_trace() {
        let trace = tiny_trace();
        let caps = CacheSizeSweep::paper_capacities(&trace);
        assert_eq!(caps.len(), PAPER_SIZE_FRACTIONS.len());
        let overall = trace.overall_size().as_f64();
        assert_eq!(caps[0].as_u64(), (overall * 0.005).round() as u64);
        assert!(caps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn per_type_series_are_separable() {
        let trace = tiny_trace();
        let sweep = CacheSizeSweep::new(vec![PolicyKind::Lru], vec![ByteSize::new(64_000)]);
        let report = sweep.run_with_threads(&trace, 1);
        let img = report.hit_rate_series(PolicyKind::Lru, Some(DocumentType::Image));
        let html = report.hit_rate_series(PolicyKind::Lru, Some(DocumentType::Html));
        assert_eq!(img.len(), 1);
        assert_eq!(html.len(), 1);
        let bhr = report.byte_hit_rate_series(PolicyKind::Lru, None);
        assert!(bhr[0].1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_policy_list_rejected() {
        let _ = CacheSizeSweep::new(Vec::<PolicySpec>::new(), vec![ByteSize::new(1)]);
    }

    #[test]
    fn progress_callback_fires_once_per_cell() {
        let trace = tiny_trace();
        let sweep = CacheSizeSweep::new(
            vec![PolicyKind::Lru, PolicyKind::Fifo],
            vec![
                ByteSize::new(2_000),
                ByteSize::new(8_000),
                ByteSize::new(32_000),
            ],
        );
        let seen: Mutex<Vec<SweepProgress>> = Mutex::new(Vec::new());
        let report = sweep.run_with_progress(&trace, 4, |p| {
            seen.lock().unwrap().push(*p);
        });
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 6, "one callback per grid cell");
        assert_eq!(report.points().len(), 6);
        assert!(seen.iter().all(|p| p.total == 6));
        assert!(seen.iter().all(|p| p.requests == 600));
        assert!(seen.iter().all(|p| p.requests_per_sec > 0.0));
        assert!(seen.iter().all(|p| p.worker < 4));
        let mut completed: Vec<usize> = seen.iter().map(|p| p.completed).collect();
        completed.sort_unstable();
        assert_eq!(completed, vec![1, 2, 3, 4, 5, 6]);
        // Every grid cell appears exactly once.
        seen.sort_unstable_by_key(|p| {
            (
                sweep.policies.iter().position(|&k| k == p.policy),
                p.capacity,
            )
        });
        let cells: Vec<(PolicySpec, ByteSize)> =
            seen.iter().map(|p| (p.policy, p.capacity)).collect();
        let mut expected = Vec::new();
        for &policy in &sweep.policies {
            for &capacity in &sweep.capacities {
                expected.push((policy, capacity));
            }
        }
        assert_eq!(cells, expected);
    }
}
