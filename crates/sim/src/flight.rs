//! Bridging simulator events into the flight recorder.
//!
//! [`FlightObserver`] is an [`Observer`] that turns every replay event
//! into a [`DecisionRecord`] in a [`SharedRecorder`] ring. Reason
//! payloads arrive over two FIFO [`ReasonChannel`]s:
//!
//! * **evictions** — filled by an instrumented policy's
//!   [`FlightSink`](webcache_obs::FlightSink) (one reason per `evict()`
//!   victim, in victim order), drained one per
//!   [`Observer::on_evict`];
//! * **admissions** — filled by the cache at each Inserted /
//!   RejectedByAdmission outcome (see `Cache::set_admit_reasons`),
//!   drained one per [`Observer::on_insert`] /
//!   [`Observer::on_admission_reject`].
//!
//! Both pairings are exact because the simulator documents its event
//! order per request: `on_access`, then on a miss exactly one of
//! `on_insert` / `on_admission_reject`, then one `on_evict` per victim
//! in eviction order — and TooLarge outcomes emit neither an event nor
//! a reason. Un-instrumented policies (LRU, FIFO, SLRU, LRU-2, or any
//! policy built without a sink) simply leave the channel empty and the
//! records carry the none-kind reason.

use webcache_core::Eviction;
use webcache_obs::flight::{DecisionRecord, EventKind, Reason, ReasonChannel, SharedRecorder};

use crate::observe::{AccessEvent, AccessKind, Observer};

/// Observer recording every replay event into a shared flight ring.
/// See the module-level documentation above.
#[derive(Debug, Clone)]
pub struct FlightObserver {
    recorder: SharedRecorder,
    evictions: Option<ReasonChannel>,
    admissions: Option<ReasonChannel>,
}

impl FlightObserver {
    /// An observer recording plain events (no reason channels — every
    /// record carries the none-kind reason). This is what concurrent
    /// per-shard replay uses, where caches are not sink-instrumented.
    pub fn new(recorder: SharedRecorder) -> FlightObserver {
        FlightObserver {
            recorder,
            evictions: None,
            admissions: None,
        }
    }

    /// An observer that additionally stamps eviction records with
    /// reasons popped from `evictions` and insert/reject records with
    /// reasons popped from `admissions`.
    pub fn with_reasons(
        recorder: SharedRecorder,
        evictions: ReasonChannel,
        admissions: ReasonChannel,
    ) -> FlightObserver {
        FlightObserver {
            recorder,
            evictions: Some(evictions),
            admissions: Some(admissions),
        }
    }

    /// The ring this observer records into.
    pub fn recorder(&self) -> &SharedRecorder {
        &self.recorder
    }

    fn pop(channel: &Option<ReasonChannel>) -> Reason {
        channel
            .as_ref()
            .and_then(ReasonChannel::pop)
            .unwrap_or_default()
    }

    fn record(&self, event: AccessEvent, kind: EventKind, reason: Reason) {
        self.recorder.record(DecisionRecord {
            index: event.index,
            doc: event.doc.as_u64(),
            doc_type: event.doc_type.index() as u8,
            size: event.size.as_u64(),
            event: kind,
            reason,
        });
    }
}

impl Observer for FlightObserver {
    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        let kind = match kind {
            AccessKind::Hit => EventKind::Hit,
            AccessKind::Miss => EventKind::Miss,
            AccessKind::ModificationMiss => EventKind::ModificationMiss,
        };
        self.record(event, kind, Reason::none());
    }

    fn on_insert(&mut self, event: AccessEvent) {
        let reason = Self::pop(&self.admissions);
        self.record(event, EventKind::Insert, reason);
    }

    fn on_admission_reject(&mut self, event: AccessEvent) {
        let reason = Self::pop(&self.admissions);
        self.record(event, EventKind::AdmissionReject, reason);
    }

    fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
        let reason = Self::pop(&self.evictions);
        self.recorder.record(DecisionRecord {
            index: at.index,
            doc: evicted.doc.as_u64(),
            doc_type: evicted.doc_type.index() as u8,
            size: evicted.size.as_u64(),
            event: EventKind::Evict,
            reason,
        });
    }

    fn on_run_end(&mut self) {
        // Defensive: a policy that emitted reasons nobody paired (e.g.
        // evictions driven outside the replay loop) must not poison the
        // next pass's pairing.
        if let Some(ch) = &self.evictions {
            ch.clear();
        }
        if let Some(ch) = &self.admissions {
            ch.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use webcache_core::PolicyKind;
    use webcache_obs::flight::{FlightSink, ReasonKind};
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

    use crate::{SimulationConfig, Simulator};

    fn trace(requests: &[(u64, u64)]) -> Trace {
        requests
            .iter()
            .enumerate()
            .map(|(i, &(doc, size))| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(doc),
                    DocumentType::Html,
                    ByteSize::new(size),
                )
            })
            .collect()
    }

    fn config(capacity: u64) -> SimulationConfig {
        SimulationConfig::builder()
            .capacity(ByteSize::new(capacity))
            .warmup_fraction(0.0)
            .build()
    }

    #[test]
    fn records_full_event_stream_with_greedy_dual_reasons() {
        // Capacity one 80-byte doc; the third request evicts the first.
        let t = trace(&[(1, 80), (1, 80), (2, 80)]);
        let recorder = SharedRecorder::new(64);
        let evict_ch = ReasonChannel::new();
        let admit_ch = ReasonChannel::new();
        let observer =
            FlightObserver::with_reasons(recorder.clone(), evict_ch.clone(), admit_ch.clone());

        let policy = PolicyKind::Gds(webcache_core::CostModel::Constant)
            .build_instrumented(FlightSink::new(evict_ch));
        let mut sim = Simulator::new(policy, config(100));
        sim.set_admit_reasons(admit_ch);
        let mut obs = observer;
        sim.run_observed(&t, &mut obs);

        let records = recorder.snapshot();
        let kinds: Vec<EventKind> = records.iter().map(|r| r.event).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Miss,
                EventKind::Insert,
                EventKind::Hit,
                EventKind::Miss,
                EventKind::Insert,
                EventKind::Evict,
            ]
        );
        let evict = records.last().unwrap();
        assert_eq!(evict.reason.kind, ReasonKind::GreedyDual);
        assert!(evict.reason.a > 0.0, "victim H must be positive");
        // Channels fully drained: pairing was exact.
        assert!(obs.recorder().total() == 6);
    }

    #[test]
    fn uninstrumented_policy_records_none_reasons() {
        let t = trace(&[(1, 80), (2, 80), (3, 80)]);
        let recorder = SharedRecorder::new(64);
        let mut obs = FlightObserver::new(recorder.clone());
        let sim = Simulator::new(PolicyKind::Lru.build(), config(100));
        sim.run_observed(&t, &mut obs);
        assert!(recorder
            .snapshot()
            .iter()
            .all(|r| r.reason.kind == ReasonKind::None));
        assert!(recorder
            .snapshot()
            .iter()
            .any(|r| r.event == EventKind::Evict));
    }
}
