//! Two-level cache hierarchy simulation.
//!
//! The paper frames its two cost models through the proxy's position in
//! the network: institutional (leaf) proxies optimize hit rate, backbone
//! (parent) proxies optimize byte hit rate, and the workload the parent
//! sees is the *miss stream* of the leaves (cf. Mahanti, Williamson &
//! Eager's characterization of proxy hierarchies, cited as \[10\]). This
//! module makes that setting simulable: a row of leaf caches in front of
//! one shared parent cache.
//!
//! Requests are distributed over the leaves round-robin (the trace model
//! carries no client identities; round-robin spreads each document's
//! request chain across leaves, which is the conservative assumption for
//! leaf locality). A leaf miss consults the parent; a parent miss goes
//! to the origin. Both levels store the document on the way back
//! (store-through), and document modifications invalidate every level.

use serde::{Deserialize, Serialize};

use webcache_core::{Cache, PolicyKind, PolicySpec};
use webcache_trace::{ByteSize, DocId, Trace};

use crate::metrics::HitStats;
use crate::simulator::ModificationRule;

/// Configuration of a two-level hierarchy run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of leaf (institutional) caches.
    pub leaf_count: usize,
    /// Byte capacity of each leaf cache.
    pub leaf_capacity: ByteSize,
    /// Policy spec of the leaves (admission + replacement).
    pub leaf_policy: PolicySpec,
    /// Byte capacity of the shared parent (backbone) cache.
    pub parent_capacity: ByteSize,
    /// Policy spec of the parent (admission + replacement).
    pub parent_policy: PolicySpec,
    /// Fraction of the trace used for warm-up (not counted).
    pub warmup_fraction: f64,
    /// Modification-detection rule (applied identically at both levels).
    pub modification_rule: ModificationRule,
}

impl HierarchyConfig {
    /// A hierarchy with the paper-motivated defaults: hit-rate-oriented
    /// GD\*(1) leaves and a byte-hit-rate-oriented GD\*(P) parent, 10%
    /// warm-up.
    pub fn new(leaf_count: usize, leaf_capacity: ByteSize, parent_capacity: ByteSize) -> Self {
        use webcache_core::CostModel;
        HierarchyConfig {
            leaf_count,
            leaf_capacity,
            leaf_policy: PolicyKind::GdStar(CostModel::Constant).into(),
            parent_capacity,
            parent_policy: PolicyKind::GdStar(CostModel::Packet).into(),
            warmup_fraction: 0.10,
            modification_rule: ModificationRule::default(),
        }
    }

    /// Overrides the leaf policy (a bare kind or a composed spec).
    #[must_use]
    pub fn with_leaf_policy(mut self, policy: impl Into<PolicySpec>) -> Self {
        self.leaf_policy = policy.into();
        self
    }

    /// Overrides the parent policy (a bare kind or a composed spec).
    #[must_use]
    pub fn with_parent_policy(mut self, policy: impl Into<PolicySpec>) -> Self {
        self.parent_policy = policy.into();
        self
    }

    /// Overrides the warm-up fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction < 1`.
    #[must_use]
    pub fn with_warmup_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "warm-up fraction in [0,1)");
        self.warmup_fraction = fraction;
        self
    }

    fn validate(&self) {
        assert!(self.leaf_count > 0, "hierarchy needs at least one leaf");
        assert!(
            !self.leaf_capacity.is_zero(),
            "leaf capacity must be positive"
        );
        assert!(
            !self.parent_capacity.is_zero(),
            "parent capacity must be positive"
        );
    }
}

/// The outcome of a hierarchy run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyReport {
    /// Configuration of the run.
    pub config: HierarchyConfig,
    /// Requests resolved at the leaf level (aggregated over leaves).
    pub leaf: HitStats,
    /// Requests that missed a leaf, measured against the parent.
    pub parent: HitStats,
}

impl HierarchyReport {
    /// Fraction of all requests served without contacting the origin
    /// (leaf hit or parent hit) — the end-user view.
    pub fn combined_hit_rate(&self) -> f64 {
        if self.leaf.requests == 0 {
            return 0.0;
        }
        (self.leaf.hits + self.parent.hits) as f64 / self.leaf.requests as f64
    }

    /// Fraction of requested bytes that never crossed the parent–origin
    /// link — the backbone-traffic view.
    pub fn combined_byte_hit_rate(&self) -> f64 {
        if self.leaf.bytes_requested.is_zero() {
            return 0.0;
        }
        (self.leaf.bytes_hit + self.parent.bytes_hit).as_f64() / self.leaf.bytes_requested.as_f64()
    }
}

/// Runs a trace through a two-level hierarchy.
///
/// # Panics
///
/// Panics on an invalid configuration (zero leaves or capacities).
pub fn simulate_hierarchy(trace: &Trace, config: HierarchyConfig) -> HierarchyReport {
    config.validate();
    let mut leaves: Vec<Cache> = (0..config.leaf_count)
        .map(|_| Cache::with_spec(config.leaf_capacity, config.leaf_policy))
        .collect();
    let mut parent = Cache::with_spec(config.parent_capacity, config.parent_policy);

    let warmup_end = trace.warmup_boundary(config.warmup_fraction);
    let mut leaf_stats = HitStats::default();
    let mut parent_stats = HitStats::default();
    let mut last_transfer: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    for (index, request) in trace.iter().enumerate() {
        let doc: DocId = request.doc;
        let transfer = request.size.as_u64();
        let prev = last_transfer.insert(doc.as_u64(), transfer);
        let modified = prev.is_some_and(|p| config.modification_rule.is_modification(p, transfer));

        let (leaf_hit, parent_hit) = if modified {
            // Invalidate the stale copies everywhere.
            for l in leaves.iter_mut() {
                l.invalidate(doc);
            }
            parent.invalidate(doc);
            (false, false)
        } else if leaves[index % config.leaf_count].access(doc) {
            (true, false)
        } else {
            (false, parent.access(doc))
        };

        let leaf = &mut leaves[index % config.leaf_count];
        if !leaf_hit {
            leaf.insert(doc, request.doc_type, request.size);
            if !parent_hit {
                parent.insert(doc, request.doc_type, request.size);
            }
        }

        if index >= warmup_end {
            leaf_stats.record(request.size, leaf_hit);
            if modified {
                leaf_stats.modification_misses += 1;
            }
            if !leaf_hit {
                parent_stats.record(request.size, parent_hit);
            }
        }
    }

    HierarchyReport {
        config,
        leaf: leaf_stats,
        parent: parent_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{DocumentType, Request, Timestamp};

    fn trace(reqs: &[(u64, u64)]) -> Trace {
        reqs.iter()
            .enumerate()
            .map(|(i, &(doc, size))| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(doc),
                    DocumentType::Html,
                    ByteSize::new(size),
                )
            })
            .collect()
    }

    fn config(leaves: usize, leaf_cap: u64, parent_cap: u64) -> HierarchyConfig {
        HierarchyConfig::new(leaves, ByteSize::new(leaf_cap), ByteSize::new(parent_cap))
            .with_leaf_policy(PolicyKind::Lru)
            .with_parent_policy(PolicyKind::Lru)
            .with_warmup_fraction(0.0)
    }

    #[test]
    fn leaf_hits_stay_at_leaves() {
        // One leaf: second access to the same doc hits the leaf, never
        // reaching the parent.
        let t = trace(&[(1, 100), (1, 100)]);
        let r = simulate_hierarchy(&t, config(1, 1_000, 1_000));
        assert_eq!(r.leaf.requests, 2);
        assert_eq!(r.leaf.hits, 1);
        assert_eq!(
            r.parent.requests, 1,
            "only the cold miss reached the parent"
        );
        assert_eq!(r.parent.hits, 0);
        assert_eq!(r.combined_hit_rate(), 0.5);
    }

    #[test]
    fn parent_serves_cross_leaf_sharing() {
        // Two leaves, round-robin: requests 0 and 1 go to different
        // leaves. Request 1 misses its leaf but hits the parent, which
        // learned the document from request 0's miss.
        let t = trace(&[(1, 100), (1, 100)]);
        let r = simulate_hierarchy(&t, config(2, 1_000, 1_000));
        assert_eq!(r.leaf.hits, 0);
        assert_eq!(r.parent.requests, 2);
        assert_eq!(r.parent.hits, 1);
        assert_eq!(r.combined_hit_rate(), 0.5);
        assert_eq!(r.combined_byte_hit_rate(), 0.5);
    }

    #[test]
    fn hierarchy_beats_isolated_leaves() {
        // A workload with heavy cross-leaf sharing: every document is
        // requested once per leaf. Without the parent every request
        // would miss; the parent converts all but the first occurrence.
        let reqs: Vec<(u64, u64)> = (0..50u64).flat_map(|d| [(d, 100), (d, 100)]).collect();
        let t = trace(&reqs);
        let with_parent = simulate_hierarchy(&t, config(2, 100_000, 100_000));
        let tiny_parent = simulate_hierarchy(&t, config(2, 100_000, 1));
        assert!(with_parent.combined_hit_rate() > tiny_parent.combined_hit_rate());
        assert_eq!(with_parent.combined_hit_rate(), 0.5);
    }

    #[test]
    fn modifications_invalidate_every_level() {
        // Doc served (100), re-served with a 2% size change: modification
        // — both leaf and parent copies must be dropped, and the
        // follow-up request must miss the leaf but hit the parent only if
        // re-inserted (it was, by the modified request).
        let t = trace(&[(1, 100), (1, 102), (1, 102), (1, 102)]);
        let r = simulate_hierarchy(&t, config(1, 1_000, 1_000));
        // Request 0: cold miss. Request 1: modification miss. Requests
        // 2, 3: leaf hits.
        assert_eq!(r.leaf.hits, 2);
        assert_eq!(r.leaf.modification_misses, 1);
    }

    #[test]
    fn warmup_excludes_early_requests() {
        let t = trace(&[(1, 100), (1, 100), (1, 100), (1, 100)]);
        let r = simulate_hierarchy(&t, config(1, 1_000, 1_000).with_warmup_fraction(0.5));
        assert_eq!(r.leaf.requests, 2);
        assert_eq!(r.leaf.hits, 2);
    }

    #[test]
    fn empty_trace_yields_zero_rates() {
        let r = simulate_hierarchy(&Trace::new(), config(2, 100, 100));
        assert_eq!(r.combined_hit_rate(), 0.0);
        assert_eq!(r.combined_byte_hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn zero_leaves_rejected() {
        let _ = simulate_hierarchy(&Trace::new(), config(0, 100, 100));
    }
}
