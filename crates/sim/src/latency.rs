//! User-perceived latency estimation.
//!
//! The paper motivates the constant cost model with institutional
//! proxies that "mainly aim at reducing end user latency by optimizing
//! the hit rate". This module closes that loop: given a simulation
//! report, it estimates the latency end users experienced under a
//! two-link model — a fast local link for cache hits and a slow wide-area
//! link for misses — and the speedup over running without a cache.
//!
//! The model is deliberately simple (per-request setup time plus
//! size-proportional transfer time per link); it converts the abstract
//! hit/byte-hit rates into the quantity institutions actually buy
//! proxies for.

use serde::{Deserialize, Serialize};

use webcache_trace::ByteSize;

use crate::metrics::HitStats;
use crate::simulator::SimulationReport;

/// One network link: fixed per-request setup latency plus bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Per-request setup latency in milliseconds (connection + request).
    pub setup_ms: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl LinkModel {
    /// Creates a link model.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(setup_ms: f64, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(
            setup_ms.is_finite() && setup_ms >= 0.0,
            "setup latency must be non-negative"
        );
        assert!(
            bandwidth_bytes_per_sec.is_finite() && bandwidth_bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        LinkModel {
            setup_ms,
            bandwidth_bytes_per_sec,
        }
    }

    /// Time to deliver `bytes` over this link, in milliseconds.
    pub fn transfer_ms(&self, bytes: ByteSize) -> f64 {
        self.setup_ms + bytes.as_f64() / self.bandwidth_bytes_per_sec * 1000.0
    }
}

/// A two-link latency model: hits served over `local`, misses over
/// `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Proxy-to-client link used for cache hits.
    pub local: LinkModel,
    /// Origin-to-client path used for misses.
    pub origin: LinkModel,
}

impl LatencyModel {
    /// A 2001-flavoured default: 5 ms / 10 MB/s locally,
    /// 150 ms / 300 KB/s to the origin.
    pub fn campus_2001() -> Self {
        LatencyModel {
            local: LinkModel::new(5.0, 10_000_000.0),
            origin: LinkModel::new(150.0, 300_000.0),
        }
    }

    /// Estimates latency totals for one measurement bucket.
    pub fn estimate_stats(&self, stats: &HitStats) -> LatencyEstimate {
        let misses = stats.requests - stats.hits;
        let miss_bytes = stats.bytes_requested - stats.bytes_hit;
        let hit_ms = stats.hits as f64 * self.local.setup_ms
            + stats.bytes_hit.as_f64() / self.local.bandwidth_bytes_per_sec * 1000.0;
        let miss_ms = misses as f64 * self.origin.setup_ms
            + miss_bytes.as_f64() / self.origin.bandwidth_bytes_per_sec * 1000.0;
        let no_cache_ms = stats.requests as f64 * self.origin.setup_ms
            + stats.bytes_requested.as_f64() / self.origin.bandwidth_bytes_per_sec * 1000.0;
        LatencyEstimate {
            requests: stats.requests,
            total_ms: hit_ms + miss_ms,
            no_cache_total_ms: no_cache_ms,
        }
    }

    /// Estimates latency for a full simulation report (overall bucket).
    pub fn estimate(&self, report: &SimulationReport) -> LatencyEstimate {
        self.estimate_stats(&report.overall())
    }

    /// Per-document-type latency estimates — shows which type's misses
    /// dominate user-perceived latency (multi media, invariably: few
    /// requests, enormous transfer times).
    pub fn estimate_by_type(
        &self,
        report: &SimulationReport,
    ) -> webcache_trace::TypeMap<LatencyEstimate> {
        webcache_trace::TypeMap::from_fn(|ty| self.estimate_stats(&report.by_type()[ty]))
    }
}

/// Latency totals for one bucket of requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// Requests covered.
    pub requests: u64,
    /// Total latency with the cache, in milliseconds.
    pub total_ms: f64,
    /// Total latency if every request had gone to the origin.
    pub no_cache_total_ms: f64,
}

impl LatencyEstimate {
    /// Mean per-request latency with the cache.
    pub fn mean_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_ms / self.requests as f64
        }
    }

    /// Latency saved relative to no cache, as a fraction in `[0, 1]`.
    pub fn savings(&self) -> f64 {
        if self.no_cache_total_ms == 0.0 {
            0.0
        } else {
            1.0 - self.total_ms / self.no_cache_total_ms
        }
    }

    /// Speedup factor (`no-cache latency / cached latency`).
    pub fn speedup(&self) -> f64 {
        if self.total_ms == 0.0 {
            1.0
        } else {
            self.no_cache_total_ms / self.total_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(requests: u64, hits: u64, bytes_req: u64, bytes_hit: u64) -> HitStats {
        HitStats {
            requests,
            hits,
            bytes_requested: ByteSize::new(bytes_req),
            bytes_hit: ByteSize::new(bytes_hit),
            modification_misses: 0,
        }
    }

    #[test]
    fn link_transfer_time() {
        let link = LinkModel::new(10.0, 1_000_000.0);
        assert_eq!(link.transfer_ms(ByteSize::ZERO), 10.0);
        assert_eq!(link.transfer_ms(ByteSize::new(1_000_000)), 1_010.0);
    }

    #[test]
    fn all_hits_cost_only_local_link() {
        let m = LatencyModel::campus_2001();
        let e = m.estimate_stats(&stats(10, 10, 10_000, 10_000));
        assert!((e.total_ms - (10.0 * 5.0 + 1.0)).abs() < 1e-9);
        assert!(e.savings() > 0.9);
        assert!(e.speedup() > 10.0);
    }

    #[test]
    fn all_misses_match_no_cache_baseline() {
        let m = LatencyModel::campus_2001();
        let e = m.estimate_stats(&stats(10, 0, 10_000, 0));
        assert!((e.total_ms - e.no_cache_total_ms).abs() < 1e-9);
        assert_eq!(e.savings(), 0.0);
        assert!((e.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_hit_rate_means_lower_latency() {
        let m = LatencyModel::campus_2001();
        let worse = m.estimate_stats(&stats(100, 20, 1_000_000, 200_000));
        let better = m.estimate_stats(&stats(100, 60, 1_000_000, 600_000));
        assert!(better.total_ms < worse.total_ms);
        assert!(better.mean_ms() < worse.mean_ms());
        assert!(better.savings() > worse.savings());
    }

    #[test]
    fn empty_bucket_is_neutral() {
        let m = LatencyModel::campus_2001();
        let e = m.estimate_stats(&stats(0, 0, 0, 0));
        assert_eq!(e.mean_ms(), 0.0);
        assert_eq!(e.savings(), 0.0);
        assert_eq!(e.speedup(), 1.0);
    }

    #[test]
    fn per_type_estimates_sum_to_overall() {
        use webcache_core::PolicyKind;
        use webcache_trace::{DocId, DocumentType, Request, Timestamp, Trace};
        let trace: Trace = (0..60u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new(i % 9),
                    DocumentType::ALL[(i % 5) as usize],
                    ByteSize::new(500 + i * 13),
                )
            })
            .collect();
        let report = crate::Simulator::new(
            PolicyKind::Lru.instantiate(),
            crate::SimulationConfig::new(ByteSize::from_kib(64)).with_warmup_fraction(0.0),
        )
        .run(&trace);
        let m = LatencyModel::campus_2001();
        let per_type = m.estimate_by_type(&report);
        let total: f64 = per_type.iter().map(|(_, e)| e.total_ms).sum();
        assert!((total - m.estimate(&report).total_ms).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkModel::new(1.0, 0.0);
    }
}
