//! Live modeled-latency observation.
//!
//! The paper's whole argument for cache replacement is delivered
//! latency, yet the serve path historically exported only hit-rate
//! shapes; [`crate::latency`]'s two-link model was post-hoc report
//! math. [`LatencyObserver`] closes that loop: on every measured
//! access it drives the [`LatencyModel`] — a hit transfers over the
//! fast local link, any miss (cold or modification) over the slow
//! origin link — and records the modeled microseconds into per-
//! [`DocumentType`] [`WindowedHistogram`]s plus an overall one.
//!
//! The observer is a cheap clone over `Arc`-shared histograms, so the
//! same instance works in both serve modes: pushed through the serial
//! observer tuple, or cloned per shard by the concurrent factory (the
//! record path is relaxed atomics). Window rotation is decoupled from
//! recording: the serve loop calls
//! [`LatencyObserver::rotate_and_publish`] at each pass boundary,
//! which advances every ring and refreshes the exported
//! `p50/p90/p99/p999` gauges.

use webcache_obs::{QuantileGauges, Registry, WindowedHistogram};
use webcache_trace::DocumentType;

use crate::latency::LatencyModel;
use crate::observe::{AccessEvent, AccessKind, Observer};

/// Exported metric name for the modeled per-request latency quantiles.
pub const LATENCY_METRIC: &str = "webcache_modeled_latency_us";

/// Label value of the all-types aggregate alongside the per-type rows.
pub const OVERALL_LABEL: &str = "overall";

/// Default number of trailing windows retained per histogram.
pub const DEFAULT_LATENCY_WINDOWS: usize = 8;

/// Observes modeled request latency into windowed percentile
/// histograms. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct LatencyObserver {
    model: LatencyModel,
    per_type: [WindowedHistogram; DocumentType::ALL.len()],
    overall: WindowedHistogram,
    gauges: Option<LatencyGauges>,
}

#[derive(Debug, Clone)]
struct LatencyGauges {
    per_type: [QuantileGauges; DocumentType::ALL.len()],
    overall: QuantileGauges,
}

impl LatencyObserver {
    /// An observer with `windows` trailing windows per histogram and no
    /// registry export (tests, ad-hoc harnesses).
    pub fn new(model: LatencyModel, windows: usize) -> LatencyObserver {
        LatencyObserver {
            model,
            per_type: std::array::from_fn(|_| WindowedHistogram::new(windows)),
            overall: WindowedHistogram::new(windows),
            gauges: None,
        }
    }

    /// An observer whose quantiles export through `registry` as the
    /// [`LATENCY_METRIC`] gauge family, labelled
    /// `doc_type=<type label>|"overall"` × `quantile=p50..p999`.
    pub fn register(model: LatencyModel, windows: usize, registry: &Registry) -> LatencyObserver {
        let mut observer = LatencyObserver::new(model, windows);
        let help = "Modeled request latency (two-link model) in microseconds.";
        observer.gauges = Some(LatencyGauges {
            per_type: std::array::from_fn(|i| {
                let labels = [("doc_type", DocumentType::ALL[i].label())];
                QuantileGauges::register(registry, LATENCY_METRIC, help, &labels)
            }),
            overall: QuantileGauges::register(
                registry,
                LATENCY_METRIC,
                help,
                &[("doc_type", OVERALL_LABEL)],
            ),
        });
        observer
    }

    /// The modeled latency of one access in microseconds: hits ride the
    /// local link, misses pay the origin link.
    pub fn modeled_latency_us(&self, event: &AccessEvent, kind: AccessKind) -> u64 {
        let link = if kind.is_hit() {
            &self.model.local
        } else {
            &self.model.origin
        };
        (link.transfer_ms(event.size) * 1_000.0) as u64
    }

    /// The windowed histogram of one document type.
    pub fn histogram(&self, doc_type: DocumentType) -> &WindowedHistogram {
        &self.per_type[doc_type.index()]
    }

    /// The windowed histogram over all types.
    pub fn overall(&self) -> &WindowedHistogram {
        &self.overall
    }

    /// Rotates every window ring and republishes the quantile gauges.
    /// Call once per pass (or anomaly window) from the serve loop — not
    /// from the record path.
    pub fn rotate_and_publish(&self) {
        if let Some(gauges) = &self.gauges {
            for (h, g) in self.per_type.iter().zip(gauges.per_type.iter()) {
                g.publish(h);
            }
            gauges.overall.publish(&self.overall);
        }
        for h in &self.per_type {
            h.rotate();
        }
        self.overall.rotate();
    }
}

impl Observer for LatencyObserver {
    #[inline]
    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        if event.warmup {
            return;
        }
        let us = self.modeled_latency_us(&event, kind);
        self.per_type[event.doc_type.index()].record(us);
        self.overall.record(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{ByteSize, DocId};

    fn event(doc_type: DocumentType, size: u64, warmup: bool) -> AccessEvent {
        AccessEvent {
            index: 0,
            doc: DocId::new(1),
            doc_type,
            size: ByteSize::new(size),
            warmup,
        }
    }

    #[test]
    fn hits_ride_the_fast_link_and_misses_the_slow_one() {
        let mut obs = LatencyObserver::new(LatencyModel::campus_2001(), 4);
        obs.on_access(event(DocumentType::Html, 10_000, false), AccessKind::Hit);
        obs.on_access(event(DocumentType::Html, 10_000, false), AccessKind::Miss);
        let h = obs.histogram(DocumentType::Html);
        assert_eq!(h.count(), 2);
        // campus_2001: hit ≈ 5ms + 10KB/10MBps ≈ 6ms; miss ≈ 150ms +
        // 10KB/300KBps ≈ 183ms. The p999 must see the miss tail.
        let p999 = h.quantile(0.999).unwrap();
        assert!(p999 > 100_000.0, "{p999}");
        let p1 = h.quantile(0.01).unwrap();
        assert!(p1 < 10_000.0, "{p1}");
        assert_eq!(obs.overall().count(), 2);
    }

    #[test]
    fn modification_miss_pays_the_origin_link() {
        let obs = LatencyObserver::new(LatencyModel::campus_2001(), 2);
        let e = event(DocumentType::Image, 5_000, false);
        let hit_us = obs.modeled_latency_us(&e, AccessKind::Hit);
        let mod_us = obs.modeled_latency_us(&e, AccessKind::ModificationMiss);
        let miss_us = obs.modeled_latency_us(&e, AccessKind::Miss);
        assert_eq!(mod_us, miss_us);
        assert!(mod_us > hit_us);
    }

    #[test]
    fn warmup_accesses_are_not_recorded() {
        let mut obs = LatencyObserver::new(LatencyModel::campus_2001(), 2);
        obs.on_access(event(DocumentType::Html, 1_000, true), AccessKind::Hit);
        assert_eq!(obs.overall().count(), 0);
        assert_eq!(obs.histogram(DocumentType::Html).count(), 0);
    }

    #[test]
    fn clones_share_histograms_across_threads() {
        let obs = LatencyObserver::new(LatencyModel::campus_2001(), 4);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let mut clone = obs.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        clone.on_access(
                            event(DocumentType::MultiMedia, 2_000, false),
                            AccessKind::Miss,
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(obs.histogram(DocumentType::MultiMedia).count(), 4_000);
        assert_eq!(obs.overall().count(), 4_000);
    }

    #[test]
    fn register_publishes_per_type_and_overall_gauges() {
        let registry = Registry::new();
        let mut obs = LatencyObserver::register(LatencyModel::campus_2001(), 4, &registry);
        obs.on_access(event(DocumentType::Html, 10_000, false), AccessKind::Miss);
        obs.rotate_and_publish();
        let text = registry.prometheus_text();
        assert!(
            text.contains("webcache_modeled_latency_us{doc_type=\"HTML\",quantile=\"p99\"}"),
            "{text}"
        );
        assert!(
            text.contains("webcache_modeled_latency_us{doc_type=\"overall\",quantile=\"p50\"}"),
            "{text}"
        );
        let p99_html = text
            .lines()
            .find(|l| l.contains("doc_type=\"HTML\",quantile=\"p99\"}"))
            .unwrap();
        let v: f64 = p99_html.split_whitespace().last().unwrap().parse().unwrap();
        assert!(v > 100_000.0, "{p99_html}");
        // Types that saw no traffic publish 0, not garbage.
        let image_p50 = text
            .lines()
            .find(|l| l.contains("doc_type=\"Images\",quantile=\"p50\"}"))
            .unwrap();
        assert!(image_p50.ends_with(" 0"), "{image_p50}");
    }
}
