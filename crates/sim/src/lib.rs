//! # webcache-sim
//!
//! The trace-driven proxy-cache simulator of the study, faithful to the
//! methodology of Section 4.1 of Lindemann & Waldhorst (DSN 2002):
//!
//! * the first 10% of requests fill the cache without being counted
//!   (cold-start avoidance),
//! * per-document size tracking distinguishes *document modifications*
//!   (size change < 5% between successive requests ⇒ counted as a miss and
//!   the cached copy invalidated) from *interrupted transfers* (≥ 5%
//!   change ⇒ the cached copy remains valid),
//! * hit rate and byte hit rate are accounted separately for every
//!   document type,
//! * the fractions of cached documents and cached bytes per type can be
//!   sampled over time (the Figure 1 adaptability experiment).
//!
//! [`CacheSizeSweep`] runs a policy × cache-size grid in parallel — the
//! engine behind Figures 2 and 3.
//!
//! ```
//! use webcache_core::PolicyKind;
//! use webcache_sim::{SimulationConfig, Simulator};
//! use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};
//!
//! let trace: Trace = (0..100u64)
//!     .map(|i| Request::new(
//!         Timestamp::from_millis(i),
//!         DocId::new(i % 7),
//!         DocumentType::Image,
//!         ByteSize::new(1_000),
//!     ))
//!     .collect();
//! let report = Simulator::new(
//!     PolicyKind::Lru.instantiate(),
//!     SimulationConfig::new(ByteSize::from_kib(64)),
//! )
//! .run(&trace);
//! assert!(report.overall().hit_rate() > 0.8); // 7 hot documents fit easily
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anomaly;
pub mod concurrent;
pub mod experiment;
pub mod flight;
pub mod hierarchy;
pub mod latency;
pub mod latency_obs;
pub mod live;
pub mod logobs;
pub mod metrics;
pub mod observe;
pub mod occupancy;
pub mod oracle;
pub mod profile;
pub mod regret;
pub mod report;
pub mod simulator;
pub mod slo;
pub mod windowed;

pub use anomaly::{AnomalyConfig, AnomalyKind, AnomalyObserver, AnomalyTrigger};
pub use concurrent::{
    ConcurrentPassSummary, ConcurrentReport, ConcurrentSimulator, ShardSummary, ShardedReplayLoop,
    ShardedTrace,
};
pub use experiment::{CacheSizeSweep, SweepPoint, SweepProgress, SweepReport};
pub use flight::FlightObserver;
pub use hierarchy::{simulate_hierarchy, HierarchyConfig, HierarchyReport};
pub use latency::{LatencyEstimate, LatencyModel, LinkModel};
pub use latency_obs::LatencyObserver;
pub use live::{FixedSource, LiveStatus, LiveSummary, PassSummary, ReplayLoop, TraceSource};
pub use logobs::LogObserver;
pub use metrics::HitStats;
pub use observe::{AccessEvent, AccessKind, NoopObserver, Observer, RunMeta};
pub use occupancy::{OccupancySample, OccupancySeries};
pub use oracle::{clairvoyant, clairvoyant_overall};
pub use profile::ProfileObserver;
pub use regret::{RegretConfig, RegretTracker};
pub use report::Metric;
pub use simulator::{
    ModificationRule, SimulationConfig, SimulationConfigBuilder, SimulationReport, Simulator,
    DEFAULT_BATCH_SIZE,
};
pub use slo::{SloBreach, SloConfig, SloTracker, SloTrigger};
pub use windowed::{ChurnCounters, Window, WindowSpec, WindowedMetrics};
