//! Continuous replay: the engine behind `webcache serve`.
//!
//! A [`ReplayLoop`] drives the instrumented simulator pass after pass —
//! each pass replays one trace from a [`TraceSource`] through a fresh
//! cache — until a shared shutdown flag is raised, the configured pass
//! budget is exhausted, or the source runs dry. Observers (profiling,
//! anomaly detection, logging) persist across passes, so windowed
//! baselines keep their history while the cache itself restarts cold.
//!
//! Liveness is published through a [`LiveStatus`] — a handful of atomics
//! (passes, requests, replaying, last pass throughput) that an HTTP
//! `/healthz` handler can read from another thread without locking.
//!
//! An optional request-rate throttle turns the batch replay into a
//! paced, wall-clock workload (useful for watching windowed metrics
//! evolve on a live dashboard instead of finishing a pass in
//! milliseconds). The pacer stops sleeping the moment the shutdown flag
//! rises, so Ctrl-C never waits on a throttled pass.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use webcache_core::PolicySpec;
use webcache_trace::{DenseTrace, Trace};

use crate::observe::{AccessEvent, AccessKind, Observer};
use crate::simulator::{SimulationConfig, SimulationReport, Simulator};

/// Supplies the trace for each pass of a [`ReplayLoop`].
pub trait TraceSource {
    /// The trace for pass `pass` (0-based); `None` ends the loop.
    fn next_pass(&mut self, pass: u64) -> Option<&DenseTrace>;
}

/// Replays one fixed trace on every pass (`--trace <file>` mode).
#[derive(Debug)]
pub struct FixedSource {
    dense: DenseTrace,
}

impl FixedSource {
    /// Builds the dense view of `trace` once; every pass replays it.
    pub fn new(trace: &Trace) -> Self {
        FixedSource {
            dense: DenseTrace::build(trace),
        }
    }

    /// Wraps an already-built dense trace.
    pub fn from_dense(dense: DenseTrace) -> Self {
        FixedSource { dense }
    }
}

impl TraceSource for FixedSource {
    fn next_pass(&mut self, _pass: u64) -> Option<&DenseTrace> {
        Some(&self.dense)
    }
}

/// Replay progress readable from other threads without locking.
#[derive(Debug, Default)]
pub struct LiveStatus {
    passes: AtomicU64,
    requests: AtomicU64,
    replaying: AtomicBool,
    /// `f64` bit pattern of the last completed pass's request rate.
    last_pass_rps: AtomicU64,
}

impl LiveStatus {
    /// Creates a zeroed status.
    pub fn new() -> Self {
        LiveStatus::default()
    }

    /// Completed passes.
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// Requests replayed across all completed passes.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Whether the replay loop is currently running.
    pub fn replaying(&self) -> bool {
        self.replaying.load(Ordering::Relaxed)
    }

    /// Requests per second of the last completed pass (0 before the
    /// first pass completes).
    pub fn last_pass_req_per_sec(&self) -> f64 {
        f64::from_bits(self.last_pass_rps.load(Ordering::Relaxed))
    }

    /// Flags the replay loop as running / stopped (driver-side).
    pub(crate) fn set_replaying(&self, on: bool) {
        self.replaying.store(on, Ordering::Relaxed);
    }

    /// Publishes the totals after a completed pass (driver-side).
    pub(crate) fn record_pass(&self, passes: u64, requests: u64, req_per_sec: f64) {
        self.passes.store(passes, Ordering::Relaxed);
        self.requests.store(requests, Ordering::Relaxed);
        self.last_pass_rps
            .store(req_per_sec.to_bits(), Ordering::Relaxed);
    }
}

/// What one completed pass looked like, handed to the `on_pass`
/// callback of [`ReplayLoop::run`].
#[derive(Debug)]
pub struct PassSummary {
    /// 0-based pass index.
    pub pass: u64,
    /// Requests replayed in this pass.
    pub requests: u64,
    /// Wall-clock duration of the pass.
    pub elapsed: Duration,
    /// Requests per second achieved (post-throttle, if any).
    pub req_per_sec: f64,
    /// The pass's end-of-run report.
    pub report: SimulationReport,
}

/// Totals for a finished loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveSummary {
    /// Passes completed.
    pub passes: u64,
    /// Requests replayed in total.
    pub requests: u64,
}

/// The continuous replay driver. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct ReplayLoop {
    /// Cache/simulation parameters, applied to every pass.
    pub config: SimulationConfig,
    /// The policy spec, freshly instantiated per pass.
    pub spec: PolicySpec,
    /// Target request rate (requests/second); `None` replays flat out.
    pub rate: Option<f64>,
    /// Pass budget; `None` loops until shutdown.
    pub max_passes: Option<u64>,
}

impl ReplayLoop {
    /// Runs passes until `shutdown` rises, `max_passes` is reached, or
    /// `source` returns `None`. `observer` sees every pass's events;
    /// `on_pass` fires after each pass with its summary. The shutdown
    /// flag is honored **between** passes (and by the pacer's sleeps);
    /// a flat-out pass in flight runs to completion.
    pub fn run<S, O, F>(
        &self,
        source: &mut S,
        observer: &mut O,
        status: &LiveStatus,
        shutdown: &AtomicBool,
        on_pass: F,
    ) -> LiveSummary
    where
        S: TraceSource,
        O: Observer,
        F: FnMut(&PassSummary),
    {
        let (spec, config) = (self.spec, self.config);
        self.run_with(
            source,
            observer,
            status,
            shutdown,
            move || Simulator::from_spec(spec, config),
            on_pass,
        )
    }

    /// Like [`ReplayLoop::run`], but each pass's simulator comes from
    /// `make_simulator` instead of `Simulator::from_spec(spec, config)`.
    /// This is the seam for instrumented replay: a factory can build the
    /// policy with a metrics sink and attach admission-reason channels
    /// (see `Simulator::from_spec_instrumented`), while the pass loop,
    /// pacing and status plumbing stay identical.
    pub fn run_with<S, O, F, M>(
        &self,
        source: &mut S,
        observer: &mut O,
        status: &LiveStatus,
        shutdown: &AtomicBool,
        mut make_simulator: M,
        mut on_pass: F,
    ) -> LiveSummary
    where
        S: TraceSource,
        O: Observer,
        F: FnMut(&PassSummary),
        M: FnMut() -> Simulator,
    {
        status.replaying.store(true, Ordering::Relaxed);
        let mut passes = 0u64;
        let mut requests = 0u64;
        while !shutdown.load(Ordering::Relaxed) && self.max_passes.is_none_or(|max| passes < max) {
            let Some(dense) = source.next_pass(passes) else {
                break;
            };
            let pass_start = Instant::now();
            let simulator = make_simulator();
            let report = match self.rate {
                Some(rate) => {
                    let mut paced = Pacer::new(&mut *observer, rate, shutdown);
                    simulator.run_dense_observed(dense, &mut paced)
                }
                None => simulator.run_dense_observed(dense, observer),
            };
            let elapsed = pass_start.elapsed();
            let pass_requests = dense.len() as u64;
            let req_per_sec = pass_requests as f64 / elapsed.as_secs_f64().max(1e-9);
            requests += pass_requests;
            passes += 1;
            status.passes.store(passes, Ordering::Relaxed);
            status.requests.store(requests, Ordering::Relaxed);
            status
                .last_pass_rps
                .store(req_per_sec.to_bits(), Ordering::Relaxed);
            on_pass(&PassSummary {
                pass: passes - 1,
                requests: pass_requests,
                elapsed,
                req_per_sec,
                report,
            });
        }
        status.replaying.store(false, Ordering::Relaxed);
        LiveSummary { passes, requests }
    }
}

/// How many requests the pacer lets through between clock checks.
const PACE_STRIDE: u64 = 128;

/// Observer wrapper that sleeps as needed to hold a target request
/// rate. Checks the clock every [`PACE_STRIDE`] requests; never sleeps
/// once the shutdown flag is up, so a throttled pass drains quickly on
/// Ctrl-C.
struct Pacer<'a, O> {
    inner: &'a mut O,
    rate: f64,
    started: Instant,
    count: u64,
    shutdown: &'a AtomicBool,
}

impl<'a, O: Observer> Pacer<'a, O> {
    fn new(inner: &'a mut O, rate: f64, shutdown: &'a AtomicBool) -> Self {
        Pacer {
            inner,
            rate: rate.max(1e-9),
            started: Instant::now(),
            count: 0,
            shutdown,
        }
    }

    #[inline]
    fn pace(&mut self) {
        self.count += 1;
        if !self.count.is_multiple_of(PACE_STRIDE) {
            return;
        }
        let due = Duration::from_secs_f64(self.count as f64 / self.rate);
        let elapsed = self.started.elapsed();
        if due > elapsed && !self.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(due - elapsed);
        }
    }
}

impl<O: Observer> Observer for Pacer<'_, O> {
    #[inline]
    fn on_run_start(&mut self, meta: crate::observe::RunMeta) {
        self.inner.on_run_start(meta);
    }

    #[inline]
    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        self.inner.on_access(event, kind);
        self.pace();
    }

    #[inline]
    fn on_insert(&mut self, event: AccessEvent) {
        self.inner.on_insert(event);
    }

    #[inline]
    fn on_admission_reject(&mut self, event: AccessEvent) {
        self.inner.on_admission_reject(event);
    }

    #[inline]
    fn on_evict(&mut self, at: AccessEvent, evicted: webcache_core::Eviction) {
        self.inner.on_evict(at, evicted);
    }

    #[inline]
    fn on_run_end(&mut self) {
        self.inner.on_run_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NoopObserver;
    use webcache_core::PolicyKind;
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp};

    fn small_trace(requests: usize) -> Trace {
        (0..requests as u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new(i % 16),
                    DocumentType::Html,
                    ByteSize::new(700),
                )
            })
            .collect()
    }

    fn replay_loop(max_passes: Option<u64>, rate: Option<f64>) -> ReplayLoop {
        ReplayLoop {
            config: SimulationConfig::builder()
                .capacity(ByteSize::from_kib(8))
                .warmup_fraction(0.0)
                .build(),
            spec: PolicyKind::Lru.into(),
            rate,
            max_passes,
        }
    }

    #[test]
    fn bounded_loop_runs_exactly_max_passes() {
        let mut source = FixedSource::new(&small_trace(200));
        let status = LiveStatus::new();
        let shutdown = AtomicBool::new(false);
        let mut pass_indices = Vec::new();
        let summary = replay_loop(Some(3), None).run(
            &mut source,
            &mut NoopObserver,
            &status,
            &shutdown,
            |pass| pass_indices.push(pass.pass),
        );
        assert_eq!(summary.passes, 3);
        assert_eq!(summary.requests, 600);
        assert_eq!(pass_indices, vec![0, 1, 2]);
        assert_eq!(status.passes(), 3);
        assert_eq!(status.requests(), 600);
        assert!(!status.replaying(), "cleared after the loop ends");
        assert!(status.last_pass_req_per_sec() > 0.0);
    }

    #[test]
    fn observers_persist_across_passes() {
        #[derive(Debug, Default)]
        struct CountRuns {
            starts: u64,
            accesses: u64,
        }
        impl Observer for CountRuns {
            fn on_run_start(&mut self, _meta: crate::observe::RunMeta) {
                self.starts += 1;
            }
            fn on_access(&mut self, _e: AccessEvent, _k: AccessKind) {
                self.accesses += 1;
            }
        }
        let mut source = FixedSource::new(&small_trace(100));
        let status = LiveStatus::new();
        let shutdown = AtomicBool::new(false);
        let mut obs = CountRuns::default();
        replay_loop(Some(4), None).run(&mut source, &mut obs, &status, &shutdown, |_| {});
        assert_eq!(obs.starts, 4, "one run start per pass");
        assert_eq!(obs.accesses, 400, "state accumulated across passes");
    }

    #[test]
    fn raised_shutdown_flag_stops_before_the_first_pass() {
        let mut source = FixedSource::new(&small_trace(100));
        let status = LiveStatus::new();
        let shutdown = AtomicBool::new(true);
        let summary =
            replay_loop(None, None).run(&mut source, &mut NoopObserver, &status, &shutdown, |_| {});
        assert_eq!(summary.passes, 0);
        assert!(!status.replaying());
    }

    #[test]
    fn shutdown_from_the_pass_callback_ends_an_unbounded_loop() {
        let mut source = FixedSource::new(&small_trace(50));
        let status = LiveStatus::new();
        let shutdown = AtomicBool::new(false);
        let summary = replay_loop(None, None).run(
            &mut source,
            &mut NoopObserver,
            &status,
            &shutdown,
            |pass| {
                if pass.pass == 1 {
                    shutdown.store(true, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(summary.passes, 2, "flag honored between passes");
    }

    #[test]
    fn dry_source_ends_the_loop() {
        struct TwoPasses(Option<DenseTrace>);
        impl TraceSource for TwoPasses {
            fn next_pass(&mut self, pass: u64) -> Option<&DenseTrace> {
                (pass < 2).then(|| self.0.as_ref().expect("trace"))
            }
        }
        let mut source = TwoPasses(Some(DenseTrace::build(&small_trace(30))));
        let status = LiveStatus::new();
        let shutdown = AtomicBool::new(false);
        let summary =
            replay_loop(None, None).run(&mut source, &mut NoopObserver, &status, &shutdown, |_| {});
        assert_eq!(summary.passes, 2);
        assert_eq!(summary.requests, 60);
    }

    #[test]
    fn rate_throttle_slows_the_pass() {
        let mut source = FixedSource::new(&small_trace(512));
        let status = LiveStatus::new();
        let shutdown = AtomicBool::new(false);
        let started = Instant::now();
        // 512 requests at 10k req/s should take ~51 ms; allow wide slack
        // under CI load but require clearly-throttled behavior.
        replay_loop(Some(1), Some(10_000.0)).run(
            &mut source,
            &mut NoopObserver,
            &status,
            &shutdown,
            |_| {},
        );
        assert!(
            started.elapsed() >= Duration::from_millis(30),
            "throttle had no effect: {:?}",
            started.elapsed()
        );
        assert!(status.last_pass_req_per_sec() < 20_000.0);
    }
}
