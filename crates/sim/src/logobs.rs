//! Structured event logging for replays.
//!
//! [`LogObserver`] forwards simulator [`Observer`] events to a
//! [`Logger`] as JSONL records, mapping event significance onto log
//! levels: per-request access outcomes are `trace` (huge volume, off by
//! default), churn events (inserts, evictions, admission rejects) are
//! `debug`, and run boundaries are `info`. Every hook checks
//! [`Logger::enabled`] first, so a logger at `info` pays only a branch
//! per event.
//!
//! Stack it with other observers via the tuple impl:
//!
//! ```
//! use webcache_core::PolicyKind;
//! use webcache_obs::{Level, Logger, Registry};
//! use webcache_sim::{AnomalyConfig, AnomalyObserver, LogObserver, SimulationConfig, Simulator};
//! use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};
//!
//! let registry = Registry::new();
//! let (logger, capture) = Logger::capture(Level::Info);
//! let anomaly = AnomalyObserver::register(&registry, logger.clone(), AnomalyConfig::default());
//! let mut observer = (LogObserver::new(logger), anomaly);
//! let trace: Trace = (0..50u64)
//!     .map(|i| Request::new(
//!         Timestamp::from_millis(i),
//!         DocId::new(i % 5),
//!         DocumentType::Html,
//!         ByteSize::new(400),
//!     ))
//!     .collect();
//! let config = SimulationConfig::builder()
//!     .capacity(ByteSize::from_kib(16))
//!     .warmup_fraction(0.0)
//!     .build();
//! Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut observer);
//! assert!(capture.contents().contains("\"msg\":\"run start\""));
//! ```

use webcache_core::Eviction;
use webcache_obs::{Level, Logger};

use crate::observe::{AccessEvent, AccessKind, Observer, RunMeta};

/// Forwards replay events to a [`Logger`]. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct LogObserver {
    logger: Logger,
}

impl LogObserver {
    /// Wraps `logger`; records are tagged `component="sim"`.
    pub fn new(logger: Logger) -> Self {
        LogObserver { logger }
    }
}

const COMPONENT: &str = "sim";

impl Observer for LogObserver {
    fn on_run_start(&mut self, meta: RunMeta) {
        self.logger.info(
            COMPONENT,
            "run start",
            &[
                ("total_requests", meta.total_requests.into()),
                ("warmup_end", meta.warmup_end.into()),
                ("capacity", meta.capacity.as_u64().into()),
            ],
        );
    }

    #[inline]
    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        if !self.logger.enabled(Level::Trace) {
            return;
        }
        let outcome = match kind {
            AccessKind::Hit => "hit",
            AccessKind::Miss => "miss",
            AccessKind::ModificationMiss => "modification_miss",
        };
        self.logger.trace(
            COMPONENT,
            "access",
            &[
                ("index", event.index.into()),
                ("doc", event.doc.as_u64().into()),
                ("doc_type", event.doc_type.label().into()),
                ("size", event.size.as_u64().into()),
                ("outcome", outcome.into()),
                ("warmup", event.warmup.into()),
            ],
        );
    }

    #[inline]
    fn on_insert(&mut self, event: AccessEvent) {
        if !self.logger.enabled(Level::Debug) {
            return;
        }
        self.logger.debug(
            COMPONENT,
            "insert",
            &[
                ("index", event.index.into()),
                ("doc", event.doc.as_u64().into()),
                ("size", event.size.as_u64().into()),
            ],
        );
    }

    #[inline]
    fn on_admission_reject(&mut self, event: AccessEvent) {
        if !self.logger.enabled(Level::Debug) {
            return;
        }
        self.logger.debug(
            COMPONENT,
            "admission reject",
            &[
                ("index", event.index.into()),
                ("doc", event.doc.as_u64().into()),
                ("size", event.size.as_u64().into()),
            ],
        );
    }

    #[inline]
    fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
        if !self.logger.enabled(Level::Debug) {
            return;
        }
        self.logger.debug(
            COMPONENT,
            "evict",
            &[
                ("index", at.index.into()),
                ("doc_type", evicted.doc_type.label().into()),
                ("size", evicted.size.as_u64().into()),
            ],
        );
    }

    fn on_run_end(&mut self) {
        self.logger.info(COMPONENT, "run end", &[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimulationConfig, Simulator};
    use webcache_core::PolicyKind;
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

    fn trace() -> Trace {
        vec![
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Html,
                ByteSize::new(80),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Html,
                ByteSize::new(80),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(2),
                DocumentType::Image,
                ByteSize::new(80),
            ),
        ]
        .into()
    }

    fn run_at(min: Level) -> Vec<String> {
        let (logger, capture) = Logger::capture(min);
        let mut obs = LogObserver::new(logger);
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(100))
            .warmup_fraction(0.0)
            .build();
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace(), &mut obs);
        capture.lines()
    }

    #[test]
    fn trace_level_logs_every_event() {
        let lines = run_at(Level::Trace);
        // run start + 3 accesses + 2 inserts + 1 evict + run end.
        assert_eq!(lines.len(), 8, "{lines:#?}");
        assert!(lines[0].contains("\"msg\":\"run start\""));
        assert!(lines[1].contains("\"outcome\":\"miss\""));
        assert!(lines[2].contains("\"msg\":\"insert\""));
        assert!(lines[3].contains("\"outcome\":\"hit\""));
        assert!(lines.iter().any(|l| l.contains("\"msg\":\"evict\"")));
        assert!(lines.last().unwrap().contains("\"msg\":\"run end\""));
    }

    #[test]
    fn info_level_logs_only_run_boundaries() {
        let lines = run_at(Level::Info);
        assert_eq!(lines.len(), 2, "{lines:#?}");
    }

    #[test]
    fn debug_level_includes_churn_but_not_accesses() {
        let lines = run_at(Level::Debug);
        // run start + 2 inserts + 1 evict + run end.
        assert_eq!(lines.len(), 5, "{lines:#?}");
        assert!(!lines.iter().any(|l| l.contains("\"msg\":\"access\"")));
    }
}
