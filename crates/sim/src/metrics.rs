//! Hit-rate and byte-hit-rate accounting.

use std::ops::AddAssign;

use serde::{Deserialize, Serialize};

use webcache_trace::ByteSize;

/// Request/hit counters for one measurement bucket (overall or one
/// document type).
///
/// *Hit rate* is the fraction of requests served from the cache; *byte
/// hit rate* is the fraction of requested bytes served from the cache.
/// Institutional proxies optimize the former, backbone proxies the latter
/// (paper, Section 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitStats {
    /// Counted requests (excludes warm-up).
    pub requests: u64,
    /// Requests served from the cache.
    pub hits: u64,
    /// Bytes requested.
    pub bytes_requested: ByteSize,
    /// Bytes served from the cache.
    pub bytes_hit: ByteSize,
    /// Misses caused by document modifications (size change < 5%).
    pub modification_misses: u64,
}

impl HitStats {
    /// Records a request of the given transfer size.
    pub fn record(&mut self, transfer: ByteSize, hit: bool) {
        self.requests += 1;
        self.bytes_requested += transfer;
        if hit {
            self.hits += 1;
            self.bytes_hit += transfer;
        }
    }

    /// `hits / requests`, or 0 for an empty bucket.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// `bytes_hit / bytes_requested`, or 0 for an empty bucket.
    pub fn byte_hit_rate(&self) -> f64 {
        if self.bytes_requested.is_zero() {
            0.0
        } else {
            self.bytes_hit.as_f64() / self.bytes_requested.as_f64()
        }
    }
}

impl AddAssign for HitStats {
    fn add_assign(&mut self, rhs: HitStats) {
        self.requests += rhs.requests;
        self.hits += rhs.hits;
        self.bytes_requested += rhs.bytes_requested;
        self.bytes_hit += rhs.bytes_hit;
        self.modification_misses += rhs.modification_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_compute() {
        let mut s = HitStats::default();
        s.record(ByteSize::new(100), true);
        s.record(ByteSize::new(300), false);
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(s.byte_hit_rate(), 0.25);
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes_requested.as_u64(), 400);
    }

    #[test]
    fn empty_bucket_rates_are_zero() {
        let s = HitStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.byte_hit_rate(), 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = HitStats::default();
        a.record(ByteSize::new(10), true);
        let mut b = HitStats::default();
        b.record(ByteSize::new(30), false);
        b.modification_misses = 2;
        a += b;
        assert_eq!(a.requests, 2);
        assert_eq!(a.hits, 1);
        assert_eq!(a.bytes_requested.as_u64(), 40);
        assert_eq!(a.modification_misses, 2);
    }
}
