//! Simulator event hooks — the observability seam of the simulator.
//!
//! An [`Observer`] receives a callback for every cache-relevant event of
//! a replay: the access outcome (hit, miss, modification miss), document
//! insertion, admission rejection, and every eviction. Events carry the
//! document slot, transfer size, [`DocumentType`] and request index, so
//! an observer can reconstruct anything the end-of-run aggregates fold
//! away — time series, per-type churn, eviction dynamics.
//!
//! # Zero cost when unused
//!
//! The observer is a **generic parameter** of the replay loops
//! ([`Simulator::run_dense_observed`](crate::Simulator::run_dense_observed)
//! and friends), not a `dyn` object: with the [`NoopObserver`] every hook
//! monomorphizes to an empty inline function and the hot path compiles to
//! exactly the unobserved loop. The `hotpath` bench bin checks this claim
//! against the recorded baseline on every run.
//!
//! ```
//! use webcache_core::PolicyKind;
//! use webcache_sim::observe::{AccessEvent, AccessKind, Observer};
//! use webcache_sim::{SimulationConfig, Simulator};
//! use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};
//!
//! /// Counts eviction events.
//! #[derive(Debug, Default)]
//! struct EvictionCounter {
//!     evictions: u64,
//! }
//!
//! impl Observer for EvictionCounter {
//!     fn on_evict(&mut self, _at: AccessEvent, _evicted: webcache_core::Eviction) {
//!         self.evictions += 1;
//!     }
//! }
//!
//! let trace: Trace = (0..100u64)
//!     .map(|i| Request::new(
//!         Timestamp::from_millis(i),
//!         DocId::new(i % 10),
//!         DocumentType::Html,
//!         ByteSize::new(600),
//!     ))
//!     .collect();
//! let mut counter = EvictionCounter::default();
//! let config = SimulationConfig::builder()
//!     .capacity(ByteSize::new(1_800))
//!     .warmup_fraction(0.0)
//!     .build();
//! Simulator::new(PolicyKind::Lru.build(), config)
//!     .run_observed(&trace, &mut counter);
//! assert!(counter.evictions > 0, "3-document cache under 10 hot documents must evict");
//! ```

use webcache_core::Eviction;
use webcache_trace::{ByteSize, DocId, DocumentType};

/// Static facts about a run, delivered once before the first event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// Number of requests the replay will process (warm-up included).
    pub total_requests: usize,
    /// Index of the first *measured* request: requests `0..warmup_end`
    /// only warm the cache and are excluded from the report.
    pub warmup_end: usize,
    /// Configured cache capacity.
    pub capacity: ByteSize,
}

/// One request-level event.
///
/// In a dense replay ([`Simulator::run_dense_observed`](crate::Simulator::run_dense_observed))
/// `doc` **is** the dense document slot (`0..distinct_documents`); in a
/// hashed replay it is the caller's sparse document id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Index of the request in the trace (0-based, warm-up included).
    pub index: u64,
    /// Document slot (dense replay) or sparse document id (hashed replay).
    pub doc: DocId,
    /// Type of the requested document.
    pub doc_type: DocumentType,
    /// Transfer size of this request.
    pub size: ByteSize,
    /// Whether the request falls in the warm-up region (not measured).
    pub warmup: bool,
}

/// Outcome of the cache lookup for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Served from the cache.
    Hit,
    /// Not resident; the document will be fetched (and offered to the
    /// cache — watch [`Observer::on_insert`] /
    /// [`Observer::on_admission_reject`] for how that went).
    Miss,
    /// The document changed at the origin (size delta under the
    /// configured [`ModificationRule`](crate::ModificationRule)): the
    /// cached copy was invalidated and the request counts as a miss.
    ModificationMiss,
}

impl AccessKind {
    /// Whether the request was served from the cache.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessKind::Hit)
    }
}

/// Receives simulator events during a replay.
///
/// Every hook has an empty default body, so an observer implements only
/// what it needs. Hooks fire in request order; for a single request the
/// order is [`on_access`](Observer::on_access), then (on a miss) one of
/// [`on_insert`](Observer::on_insert) /
/// [`on_admission_reject`](Observer::on_admission_reject), then one
/// [`on_evict`](Observer::on_evict) per victim, in eviction order.
pub trait Observer {
    /// The replay is about to start.
    #[inline(always)]
    fn on_run_start(&mut self, meta: RunMeta) {
        let _ = meta;
    }

    /// A request was looked up in the cache.
    #[inline(always)]
    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        let _ = (event, kind);
    }

    /// The missed document was admitted into the cache.
    #[inline(always)]
    fn on_insert(&mut self, event: AccessEvent) {
        let _ = event;
    }

    /// The admission rule turned the missed document away.
    #[inline(always)]
    fn on_admission_reject(&mut self, event: AccessEvent) {
        let _ = event;
    }

    /// A resident document was evicted to make room; `at` is the request
    /// that triggered the eviction.
    #[inline(always)]
    fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
        let _ = (at, evicted);
    }

    /// The replay finished (flush any partial state).
    #[inline(always)]
    fn on_run_end(&mut self) {}
}

/// The do-nothing observer: every hook is an empty inline function, so
/// replay loops monomorphized over it are identical to unobserved loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Forwarding impl so observers can be passed down by mutable reference.
impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline(always)]
    fn on_run_start(&mut self, meta: RunMeta) {
        (**self).on_run_start(meta);
    }

    #[inline(always)]
    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        (**self).on_access(event, kind);
    }

    #[inline(always)]
    fn on_insert(&mut self, event: AccessEvent) {
        (**self).on_insert(event);
    }

    #[inline(always)]
    fn on_admission_reject(&mut self, event: AccessEvent) {
        (**self).on_admission_reject(event);
    }

    #[inline(always)]
    fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
        (**self).on_evict(at, evicted);
    }

    #[inline(always)]
    fn on_run_end(&mut self) {
        (**self).on_run_end();
    }
}

/// Pair composition: both observers receive every event, `A` first. Lets
/// callers stack independent observers (e.g. profiling + anomaly +
/// logging as `(profile, (anomaly, log))`) without a trait object.
impl<A: Observer, B: Observer> Observer for (A, B) {
    #[inline(always)]
    fn on_run_start(&mut self, meta: RunMeta) {
        self.0.on_run_start(meta);
        self.1.on_run_start(meta);
    }

    #[inline(always)]
    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        self.0.on_access(event, kind);
        self.1.on_access(event, kind);
    }

    #[inline(always)]
    fn on_insert(&mut self, event: AccessEvent) {
        self.0.on_insert(event);
        self.1.on_insert(event);
    }

    #[inline(always)]
    fn on_admission_reject(&mut self, event: AccessEvent) {
        self.0.on_admission_reject(event);
        self.1.on_admission_reject(event);
    }

    #[inline(always)]
    fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
        self.0.on_evict(at, evicted);
        self.1.on_evict(at, evicted);
    }

    #[inline(always)]
    fn on_run_end(&mut self) {
        self.0.on_run_end();
        self.1.on_run_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_core::PolicyKind;

    use crate::{SimulationConfig, Simulator};
    use webcache_trace::{Request, Timestamp, Trace};

    fn req(doc: u64, size: u64) -> Request {
        Request::new(
            Timestamp::ZERO,
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(size),
        )
    }

    /// Records the full event stream for assertion.
    #[derive(Debug, Default)]
    struct Recorder {
        started: Option<RunMeta>,
        accesses: Vec<(AccessEvent, AccessKind)>,
        inserts: Vec<AccessEvent>,
        rejects: Vec<AccessEvent>,
        evictions: Vec<(AccessEvent, Eviction)>,
        ended: bool,
    }

    impl Observer for Recorder {
        fn on_run_start(&mut self, meta: RunMeta) {
            self.started = Some(meta);
        }
        fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
            self.accesses.push((event, kind));
        }
        fn on_insert(&mut self, event: AccessEvent) {
            self.inserts.push(event);
        }
        fn on_admission_reject(&mut self, event: AccessEvent) {
            self.rejects.push(event);
        }
        fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
            self.evictions.push((at, evicted));
        }
        fn on_run_end(&mut self) {
            self.ended = true;
        }
    }

    #[test]
    fn event_stream_matches_replay() {
        // Capacity for one document; the second insert evicts the first.
        let trace: Trace = vec![req(1, 80), req(1, 80), req(2, 80)].into();
        let mut rec = Recorder::default();
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(100))
            .warmup_fraction(0.0)
            .build();
        let report = Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut rec);

        let meta = rec.started.expect("on_run_start fired");
        assert_eq!(meta.total_requests, 3);
        assert_eq!(meta.warmup_end, 0);
        assert_eq!(meta.capacity, ByteSize::new(100));
        assert!(rec.ended, "on_run_end fired");

        let kinds: Vec<AccessKind> = rec.accesses.iter().map(|&(_, k)| k).collect();
        assert_eq!(
            kinds,
            vec![AccessKind::Miss, AccessKind::Hit, AccessKind::Miss]
        );
        assert_eq!(rec.inserts.len(), 2, "both misses were admitted");
        assert!(rec.rejects.is_empty());
        assert_eq!(rec.evictions.len(), 1);
        let (at, evicted) = rec.evictions[0];
        assert_eq!(at.index, 2, "doc 2's insert evicted");
        assert_eq!(evicted.size, ByteSize::new(80));
        assert_eq!(evicted.doc_type, DocumentType::Html);
        assert_eq!(report.overall().hits, 1);
    }

    #[test]
    fn modification_miss_and_warmup_are_flagged() {
        // 100 -> 102 bytes is a <5% change: modification miss.
        let trace: Trace = vec![req(1, 100), req(1, 102)].into();
        let mut rec = Recorder::default();
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(1_000))
            .warmup_fraction(0.5)
            .build();
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut rec);
        assert_eq!(rec.accesses.len(), 2, "warm-up requests still emit events");
        assert!(rec.accesses[0].0.warmup);
        assert!(!rec.accesses[1].0.warmup);
        assert_eq!(rec.accesses[1].1, AccessKind::ModificationMiss);
    }

    #[test]
    fn admission_rejects_are_observed() {
        use webcache_core::AdmissionRule;
        let trace: Trace = vec![req(1, 100), req(1, 100)].into();
        let mut rec = Recorder::default();
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(1_000))
            .warmup_fraction(0.0)
            .admission_rule(AdmissionRule::SecondHit(16))
            .build();
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut rec);
        assert_eq!(rec.rejects.len(), 1, "first offer is filtered");
        assert_eq!(rec.inserts.len(), 1, "second offer is admitted");
    }

    #[test]
    fn dense_and_hashed_replays_emit_identical_streams() {
        let trace: Trace = (0..60u64)
            .map(|i| req(i % 7, 200 + (i % 3) * 400))
            .collect();
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(1_500))
            .warmup_fraction(0.1)
            .build();
        let mut dense = Recorder::default();
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut dense);
        let mut hashed = Recorder::default();
        Simulator::new(PolicyKind::Lru.build(), config).run_hashed_observed(&trace, &mut hashed);
        // Doc ids agree because the trace's ids are already dense.
        assert_eq!(dense.accesses, hashed.accesses);
        assert_eq!(dense.inserts, hashed.inserts);
        assert_eq!(dense.evictions, hashed.evictions);
    }
}
