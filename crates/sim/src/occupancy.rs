//! Cache-occupancy time series (the Figure 1 experiment).

use serde::{Deserialize, Serialize};

use webcache_core::Cache;
use webcache_trace::{DocumentType, TypeMap};

/// A snapshot of how the cache is shared between document types.
///
/// **Empty-cache convention:** a sample captured from an empty cache has
/// *every* fraction equal to `0.0` in both maps, rather than `NaN` from
/// the 0/0 division. Consumers (plotting, [`OccupancySeries`] summaries)
/// can therefore sum and average samples without NaN guards; it also
/// means `document_fraction` sums to 1 only for a *non-empty* cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancySample {
    /// Index of the request after which the snapshot was taken.
    pub request_index: u64,
    /// Fraction of cached *documents* per type (sums to 1 for a non-empty
    /// cache, all zero for an empty one).
    pub document_fraction: TypeMap<f64>,
    /// Fraction of cached *bytes* per type (all zero for an empty cache).
    pub byte_fraction: TypeMap<f64>,
}

impl OccupancySample {
    /// Snapshots the given cache.
    pub fn capture(request_index: u64, cache: &Cache) -> Self {
        let occ = cache.occupancy();
        let total_docs: u64 = occ.iter().map(|(_, o)| o.documents).sum();
        let total_bytes: u64 = occ.iter().map(|(_, o)| o.bytes.as_u64()).sum();
        let frac = |num: f64, den: f64| if den == 0.0 { 0.0 } else { num / den };
        OccupancySample {
            request_index,
            document_fraction: TypeMap::from_fn(|ty| {
                frac(occ[ty].documents as f64, total_docs as f64)
            }),
            byte_fraction: TypeMap::from_fn(|ty| frac(occ[ty].bytes.as_f64(), total_bytes as f64)),
        }
    }
}

/// The sampled occupancy trajectory of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OccupancySeries {
    samples: Vec<OccupancySample>,
}

impl OccupancySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        OccupancySeries::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: OccupancySample) {
        self.samples.push(sample);
    }

    /// The samples, in request order.
    pub fn samples(&self) -> &[OccupancySample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean byte fraction a type held over the series — the "is the share
    /// flat and close to the request mix?" summary used to discuss
    /// Figure 1.
    pub fn mean_byte_fraction(&self, ty: DocumentType) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.byte_fraction[ty])
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Mean document fraction a type held over the series.
    pub fn mean_document_fraction(&self, ty: DocumentType) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.document_fraction[ty])
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Peak-to-trough spread of a type's byte fraction over the *second
    /// half* of the series (steady state, excluding the fill ramp) —
    /// large spread means the policy keeps re-balancing the cache between
    /// types (GD\*(1) in Figure 1), small spread means a stable division
    /// (GD\*(P)).
    pub fn byte_fraction_spread(&self, ty: DocumentType) -> f64 {
        let steady = &self.samples[self.samples.len() / 2..];
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in steady {
            min = min.min(s.byte_fraction[ty]);
            max = max.max(s.byte_fraction[ty]);
        }
        if steady.is_empty() {
            0.0
        } else {
            max - min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_core::PolicyKind;
    use webcache_trace::{ByteSize, DocId};

    #[test]
    fn capture_computes_fractions() {
        let mut cache = Cache::new(ByteSize::new(1000), PolicyKind::Lru.instantiate());
        cache.insert(DocId::new(1), DocumentType::Image, ByteSize::new(100));
        cache.insert(DocId::new(2), DocumentType::MultiMedia, ByteSize::new(300));
        let s = OccupancySample::capture(7, &cache);
        assert_eq!(s.request_index, 7);
        assert_eq!(s.document_fraction[DocumentType::Image], 0.5);
        assert_eq!(s.byte_fraction[DocumentType::Image], 0.25);
        assert_eq!(s.byte_fraction[DocumentType::MultiMedia], 0.75);
    }

    #[test]
    fn empty_cache_has_zero_fractions() {
        // The documented convention: an empty cache yields all-zero
        // fractions (never NaN) across every type in both maps.
        let cache = Cache::new(ByteSize::new(1000), PolicyKind::Lru.instantiate());
        let s = OccupancySample::capture(0, &cache);
        for ty in DocumentType::ALL {
            assert_eq!(s.document_fraction[ty], 0.0, "{ty:?} document fraction");
            assert_eq!(s.byte_fraction[ty], 0.0, "{ty:?} byte fraction");
        }
    }

    #[test]
    fn series_summaries() {
        let mut cache = Cache::new(ByteSize::new(1000), PolicyKind::Lru.instantiate());
        let mut series = OccupancySeries::new();
        cache.insert(DocId::new(1), DocumentType::Image, ByteSize::new(100));
        series.push(OccupancySample::capture(0, &cache));
        cache.insert(DocId::new(2), DocumentType::Html, ByteSize::new(100));
        series.push(OccupancySample::capture(1, &cache));
        cache.insert(DocId::new(3), DocumentType::Html, ByteSize::new(200));
        series.push(OccupancySample::capture(2, &cache));
        assert_eq!(series.len(), 3);
        let mean = (1.0 + 0.5 + 0.25) / 3.0;
        assert!((series.mean_byte_fraction(DocumentType::Image) - mean).abs() < 1e-12);
        let doc_mean = (1.0 + 0.5 + 1.0 / 3.0) / 3.0;
        assert!((series.mean_document_fraction(DocumentType::Image) - doc_mean).abs() < 1e-12);
        // Spread is measured over the steady-state half: samples 1 and 2.
        assert_eq!(series.byte_fraction_spread(DocumentType::Image), 0.25);
    }

    #[test]
    fn empty_series_summaries_are_zero() {
        let series = OccupancySeries::new();
        assert!(series.is_empty());
        assert_eq!(series.mean_byte_fraction(DocumentType::Image), 0.0);
        assert_eq!(series.byte_fraction_spread(DocumentType::Image), 0.0);
    }
}
