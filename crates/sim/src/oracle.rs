//! Clairvoyant (Belady-style) reference point.
//!
//! An offline "policy" that knows the future: on replacement it evicts
//! the resident document whose next reference is furthest away (never
//! referenced again first, largest size as tie-break). For uniform
//! object sizes this is Belady's provably optimal MIN; with variable
//! sizes the greedy variant is no longer optimal (the problem becomes
//! NP-hard) but remains the standard upper-bound comparator in the web
//! caching literature.
//!
//! The oracle shares the online simulator's methodology (warm-up,
//! modification rule) so its hit rates are directly comparable to
//! [`Simulator`](crate::Simulator) reports — "GD\*(1) reaches 87 % of
//! clairvoyant" is a more informative statement than any absolute
//! number.

use std::collections::HashMap;

use webcache_core::pqueue::IndexedHeap;
use webcache_trace::{Trace, TypeMap};

use crate::metrics::HitStats;
use crate::simulator::{ModificationRule, SimulationConfig};

/// Runs the clairvoyant policy over `trace` under `config` (capacity,
/// warm-up and modification rule are honoured; occupancy sampling and
/// admission rules are ignored).
///
/// Returns per-type hit statistics, comparable to an online
/// [`SimulationReport`](crate::SimulationReport)'s.
pub fn clairvoyant(trace: &Trace, config: &SimulationConfig) -> TypeMap<HitStats> {
    // Precompute each request's next-reference index: next_use[i] is the
    // position of the next request to the same document, or u64::MAX.
    let n = trace.len();
    let mut next_use = vec![u64::MAX; n];
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    for (i, r) in trace.iter().enumerate() {
        if let Some(prev) = last_pos.insert(r.doc.as_u64(), i) {
            next_use[prev] = i as u64;
        }
    }

    // Max-heap on next use: evict the latest-next-use document first.
    // Key: (u64::MAX - next_use, then smaller size last). PriorityKey is
    // private to core; a plain tuple key works with IndexedHeap.
    let mut heap: IndexedHeap<u64, (i64, i64)> = IndexedHeap::new();
    let mut resident_size: HashMap<u64, u64> = HashMap::new();
    let mut used = 0u64;
    let capacity = config.capacity.as_u64();
    let warmup_end = trace.warmup_boundary(config.warmup_fraction);
    let rule: ModificationRule = config.modification_rule;
    let mut last_transfer: HashMap<u64, u64> = HashMap::new();
    let mut by_type: TypeMap<HitStats> = TypeMap::default();

    // Smaller key pops first. We want to *keep* soon-needed documents and
    // evict far-future ones, so key = -(next_use) (far future pops first),
    // tie: larger documents pop first (free more bytes per eviction).
    let key_of = |next: u64, size: u64| -> (i64, i64) {
        let next = next.min(i64::MAX as u64 - 1);
        (-(next as i64), -(size as i64))
    };

    for (i, r) in trace.iter().enumerate() {
        let doc = r.doc.as_u64();
        let transfer = r.size.as_u64();
        let prev = last_transfer.insert(doc, transfer);
        let modified = prev.is_some_and(|p| rule.is_modification(p, transfer));

        let resident = resident_size.contains_key(&doc);
        let hit = resident && !modified;

        if modified && resident {
            let size = resident_size.remove(&doc).expect("resident");
            used -= size;
            heap.remove(doc);
        }

        if hit {
            // Refresh the document's key to its new next use.
            heap.update(doc, key_of(next_use[i], resident_size[&doc]));
        } else {
            // Fetch and admit, evicting far-future documents as needed.
            let size = transfer;
            if size <= capacity {
                // A clairvoyant cache never stores a dead document.
                if next_use[i] != u64::MAX {
                    while used + size > capacity {
                        let (victim, _) = heap.pop_min().expect("over budget => non-empty");
                        used -= resident_size.remove(&victim).expect("resident");
                    }
                    resident_size.insert(doc, size);
                    used += size;
                    heap.insert(doc, key_of(next_use[i], size));
                }
            }
        }

        if i >= warmup_end {
            let stats = &mut by_type[r.doc_type];
            stats.record(r.size, hit);
            if modified {
                stats.modification_misses += 1;
            }
        }
    }
    by_type
}

/// Convenience: the overall clairvoyant hit statistics.
pub fn clairvoyant_overall(trace: &Trace, config: &SimulationConfig) -> HitStats {
    let mut total = HitStats::default();
    for (_, s) in clairvoyant(trace, config).iter() {
        total += *s;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_core::PolicyKind;
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp};

    fn trace(docs: &[u64]) -> Trace {
        docs.iter()
            .enumerate()
            .map(|(i, &d)| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(d),
                    DocumentType::Html,
                    ByteSize::new(100),
                )
            })
            .collect()
    }

    fn config(capacity: u64) -> SimulationConfig {
        SimulationConfig::new(ByteSize::new(capacity)).with_warmup_fraction(0.0)
    }

    #[test]
    fn textbook_belady_beats_lru() {
        // The classic pattern where LRU fails and MIN succeeds:
        // cyclic a b c with capacity 2 blocks.
        let t = trace(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let oracle = clairvoyant_overall(&t, &config(200));
        let lru = crate::Simulator::new(PolicyKind::Lru.instantiate(), config(200))
            .run(&t)
            .overall();
        assert_eq!(lru.hits, 0, "LRU thrashes on the cycle");
        assert!(oracle.hits >= 3, "MIN keeps one document across the cycle");
    }

    #[test]
    fn infinite_capacity_matches_compulsory_miss_bound() {
        let t = trace(&[0, 1, 0, 2, 1, 0, 3, 2, 1, 0]);
        let oracle = clairvoyant_overall(&t, &config(1_000_000));
        assert_eq!(oracle.requests - oracle.hits, t.distinct_documents() as u64);
    }

    #[test]
    fn oracle_dominates_every_online_policy_uniform_sizes() {
        // Pseudo-random uniform-size stream; clairvoyant MIN must beat or
        // match every online policy at every capacity.
        let mut state = 2024u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 40
        };
        let stream: Vec<u64> = (0..2_000).map(|_| next()).collect();
        let t = trace(&stream);
        for blocks in [5u64, 10, 20] {
            let cap = blocks * 100;
            let oracle = clairvoyant_overall(&t, &config(cap));
            for kind in PolicyKind::ALL {
                let online = crate::Simulator::new(kind.instantiate(), config(cap))
                    .run(&t)
                    .overall();
                assert!(
                    oracle.hits >= online.hits,
                    "{kind} beat the oracle at {blocks} blocks: {} vs {}",
                    online.hits,
                    oracle.hits
                );
            }
        }
    }

    #[test]
    fn dead_documents_are_never_cached() {
        // Single-shot documents waste no space: a tiny cache still hits
        // every re-reference of the one hot document.
        let t = trace(&[0, 1, 0, 2, 0, 3, 0, 4, 0]);
        let oracle = clairvoyant_overall(&t, &config(100));
        assert_eq!(oracle.hits, 4, "all re-references of doc 0 hit");
    }

    #[test]
    fn modifications_count_as_misses() {
        let t: Trace = vec![
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Html,
                ByteSize::new(100),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Html,
                ByteSize::new(102),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Html,
                ByteSize::new(102),
            ),
        ]
        .into();
        let oracle = clairvoyant_overall(&t, &config(1_000));
        assert_eq!(oracle.hits, 1);
        assert_eq!(oracle.modification_misses, 1);
    }

    #[test]
    fn warmup_is_honoured() {
        let t = trace(&[0, 0, 0, 0]);
        let stats = clairvoyant_overall(
            &t,
            &SimulationConfig::new(ByteSize::new(1_000)).with_warmup_fraction(0.5),
        );
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.hits, 2);
    }
}
