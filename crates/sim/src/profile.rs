//! The profiling observer: simulator events → metrics registry.
//!
//! [`ProfileObserver`] is an [`Observer`](crate::Observer) that folds the
//! replay's event stream into [`webcache_obs::Registry`] handles — hit /
//! miss / insert / rejection counts, evicted bytes, and a histogram of
//! the *evict-scan length* (how many victims each admitted miss had to
//! displace). Together with a
//! [`PolicyProbe`](webcache_obs::PolicyProbe)-instrumented policy it
//! backs the `webcache profile` command: the probe sees the policy from
//! the inside (heap costs, inflation), the observer from the outside
//! (request outcomes, eviction pressure), and both export through the
//! same registry snapshot.

use webcache_core::Eviction;
use webcache_obs::{Counter, Histogram, Registry};

use crate::observe::{AccessEvent, AccessKind, Observer};

/// Folds replay events into registry metrics for one run.
///
/// Metric families (all labelled `{policy="..."}`):
///
/// * `webcache_sim_hits_total`, `webcache_sim_misses_total`,
///   `webcache_sim_modification_misses_total` — access outcomes
///   (measured requests and warm-up alike);
/// * `webcache_sim_inserts_total`, `webcache_sim_admission_rejects_total`
///   — what happened to missed documents;
/// * `webcache_sim_evictions_total`, `webcache_sim_bytes_evicted_total`
///   — eviction volume;
/// * `webcache_sim_evict_scan_length` — histogram of victims displaced
///   per admitted insert (0 when the document fit without evicting).
#[derive(Debug)]
pub struct ProfileObserver {
    hits: Counter,
    misses: Counter,
    modification_misses: Counter,
    inserts: Counter,
    admission_rejects: Counter,
    evictions: Counter,
    bytes_evicted: Counter,
    evict_scan: Histogram,
    /// Victims displaced by the insert currently being processed;
    /// `None` when no insert is pending.
    open_scan: Option<u64>,
}

impl ProfileObserver {
    /// Registers the observer's metric families for `policy_label`.
    pub fn register(registry: &Registry, policy_label: &str) -> Self {
        let labels = [("policy", policy_label)];
        ProfileObserver {
            hits: registry.counter(
                "webcache_sim_hits_total",
                "Requests served from the cache.",
                &labels,
            ),
            misses: registry.counter(
                "webcache_sim_misses_total",
                "Requests not resident in the cache.",
                &labels,
            ),
            modification_misses: registry.counter(
                "webcache_sim_modification_misses_total",
                "Misses caused by document modification at the origin.",
                &labels,
            ),
            inserts: registry.counter(
                "webcache_sim_inserts_total",
                "Missed documents admitted into the cache.",
                &labels,
            ),
            admission_rejects: registry.counter(
                "webcache_sim_admission_rejects_total",
                "Missed documents turned away by the admission rule.",
                &labels,
            ),
            evictions: registry.counter(
                "webcache_sim_evictions_total",
                "Documents evicted to make room.",
                &labels,
            ),
            bytes_evicted: registry.counter(
                "webcache_sim_bytes_evicted_total",
                "Bytes evicted to make room.",
                &labels,
            ),
            evict_scan: registry.histogram(
                "webcache_sim_evict_scan_length",
                "Victims displaced per admitted insert (0 = fit without evicting).",
                &labels,
            ),
            open_scan: None,
        }
    }

    fn flush_scan(&mut self) {
        if let Some(scan) = self.open_scan.take() {
            self.evict_scan.observe(scan);
        }
    }
}

impl Observer for ProfileObserver {
    fn on_access(&mut self, _event: AccessEvent, kind: AccessKind) {
        self.flush_scan();
        match kind {
            AccessKind::Hit => self.hits.inc(),
            AccessKind::Miss => self.misses.inc(),
            AccessKind::ModificationMiss => {
                self.misses.inc();
                self.modification_misses.inc();
            }
        }
    }

    fn on_insert(&mut self, _event: AccessEvent) {
        self.inserts.inc();
        self.open_scan = Some(0);
    }

    fn on_admission_reject(&mut self, _event: AccessEvent) {
        self.admission_rejects.inc();
    }

    fn on_evict(&mut self, _at: AccessEvent, evicted: Eviction) {
        self.evictions.inc();
        self.bytes_evicted.add(evicted.size.as_u64());
        if let Some(scan) = self.open_scan.as_mut() {
            *scan += 1;
        }
    }

    fn on_run_end(&mut self) {
        self.flush_scan();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimulationConfig, Simulator};
    use webcache_core::PolicyKind;
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

    fn req(doc: u64, size: u64) -> Request {
        Request::new(
            Timestamp::ZERO,
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(size),
        )
    }

    #[test]
    fn counts_match_the_replay() {
        // Capacity for one 80-byte document: the second distinct insert
        // evicts the first.
        let trace: Trace = vec![req(1, 80), req(1, 80), req(2, 80)].into();
        let registry = Registry::new();
        let mut obs = ProfileObserver::register(&registry, "LRU");
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(100))
            .warmup_fraction(0.0)
            .build();
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut obs);

        assert_eq!(obs.hits.get(), 1);
        assert_eq!(obs.misses.get(), 2);
        assert_eq!(obs.modification_misses.get(), 0);
        assert_eq!(obs.inserts.get(), 2);
        assert_eq!(obs.admission_rejects.get(), 0);
        assert_eq!(obs.evictions.get(), 1);
        assert_eq!(obs.bytes_evicted.get(), 80);
        // Two inserts observed: one fit (scan 0), one displaced a victim
        // (scan 1).
        assert_eq!(obs.evict_scan.count(), 2);
        assert_eq!(obs.evict_scan.sum(), 1);

        let text = registry.prometheus_text();
        assert!(
            text.contains("webcache_sim_hits_total{policy=\"LRU\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("webcache_sim_evict_scan_length_count{policy=\"LRU\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn modification_misses_are_counted_separately() {
        // 100 -> 102 bytes is a <5% size change: a modification miss.
        let trace: Trace = vec![req(1, 100), req(1, 102)].into();
        let registry = Registry::new();
        let mut obs = ProfileObserver::register(&registry, "LRU");
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(1_000))
            .warmup_fraction(0.0)
            .build();
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut obs);
        assert_eq!(obs.misses.get(), 2);
        assert_eq!(obs.modification_misses.get(), 1);
    }

    #[test]
    fn trailing_insert_scan_is_flushed_at_run_end() {
        let trace: Trace = vec![req(1, 80)].into();
        let registry = Registry::new();
        let mut obs = ProfileObserver::register(&registry, "LRU");
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(100))
            .warmup_fraction(0.0)
            .build();
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut obs);
        assert_eq!(obs.evict_scan.count(), 1, "last insert's scan flushed");
    }
}
