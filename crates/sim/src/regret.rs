//! Online regret metrics: how much better could the policy have done?
//!
//! Two complementary measures, both cheap enough for live replay:
//!
//! * **Wasted evictions** — an eviction whose victim is re-requested
//!   within `window` requests was (in hindsight) a mistake: keeping the
//!   document would have turned that miss into a hit. Counted per
//!   document type, since the paper's schemes discriminate by type.
//! * **Gap to clairvoyant** — every `gap_every` requests, the last
//!   `gap_window` requests are replayed through
//!   [`oracle::clairvoyant`](crate::oracle::clairvoyant) and the
//!   oracle's hit rate over that window is compared with the live hit
//!   rate over the same window. The gap (oracle − actual, in hit-rate
//!   points) is the online analogue of the offline "fraction of
//!   clairvoyant" comparisons in EXPERIMENTS.md.
//!
//! [`RegretTracker`] is an [`Observer`], so it composes with the other
//! serve-path observers via tuple nesting, and exports through a
//! [`Registry`] when one is attached:
//!
//! * `webcache_regret_evictions_total{doc_type}`
//! * `webcache_regret_wasted_evictions_total{doc_type}`
//! * `webcache_regret_gap_to_clairvoyant` (gauge, hit-rate points)
//! * `webcache_regret_window_hit_rate` / `webcache_regret_oracle_hit_rate`

use std::collections::{HashMap, VecDeque};

use webcache_core::Eviction;
use webcache_obs::{Counter, Gauge, Registry};
use webcache_trace::{ByteSize, DocumentType, Request, Timestamp, Trace, TypeMap};

use crate::observe::{AccessEvent, AccessKind, Observer, RunMeta};
use crate::oracle;
use crate::simulator::SimulationConfig;

/// Sizing knobs for [`RegretTracker`].
#[derive(Debug, Clone, Copy)]
pub struct RegretConfig {
    /// A victim re-requested within this many requests of its eviction
    /// counts as a wasted eviction.
    pub window: u64,
    /// Trailing request count replayed through the clairvoyant oracle.
    pub gap_window: usize,
    /// Recompute the gap gauge every this many requests (0 disables the
    /// oracle entirely — wasted-eviction counting stays on).
    pub gap_every: u64,
}

impl Default for RegretConfig {
    fn default() -> Self {
        RegretConfig {
            window: 1024,
            gap_window: 4096,
            gap_every: 4096,
        }
    }
}

/// Registry handles, split out so the tracker works registry-free.
#[derive(Debug)]
struct RegretMetrics {
    evictions: [Counter; DocumentType::ALL.len()],
    wasted: [Counter; DocumentType::ALL.len()],
    gap: Gauge,
    window_hit_rate: Gauge,
    oracle_hit_rate: Gauge,
}

/// Observer computing online regret metrics. See the module docs.
#[derive(Debug)]
pub struct RegretTracker {
    config: RegretConfig,
    capacity: ByteSize,
    /// Victims awaiting (possible) re-request: doc → eviction index.
    pending: HashMap<u64, u64>,
    /// Eviction order, for lazy expiry of `pending` past `window`.
    order: VecDeque<(u64, u64)>,
    evictions: TypeMap<u64>,
    wasted: TypeMap<u64>,
    /// Trailing requests: (doc, type, size, hit).
    recent: VecDeque<(u64, DocumentType, u64, bool)>,
    seen: u64,
    last_gap: Option<f64>,
    metrics: Option<RegretMetrics>,
}

impl RegretTracker {
    /// A tracker with the given knobs and no registry export.
    pub fn new(config: RegretConfig) -> RegretTracker {
        RegretTracker {
            config,
            capacity: ByteSize::new(1),
            pending: HashMap::new(),
            order: VecDeque::new(),
            evictions: TypeMap::default(),
            wasted: TypeMap::default(),
            recent: VecDeque::new(),
            seen: 0,
            last_gap: None,
            metrics: None,
        }
    }

    /// Registers the regret metric families and routes updates to them.
    pub fn with_registry(config: RegretConfig, registry: &Registry) -> RegretTracker {
        let per_type = |name: &str, help: &str| {
            DocumentType::ALL.map(|ty| registry.counter(name, help, &[("doc_type", ty.label())]))
        };
        let metrics = RegretMetrics {
            evictions: per_type(
                "webcache_regret_evictions_total",
                "Evictions observed by the regret tracker.",
            ),
            wasted: per_type(
                "webcache_regret_wasted_evictions_total",
                "Evictions whose victim was re-requested within the regret window.",
            ),
            gap: registry.gauge(
                "webcache_regret_gap_to_clairvoyant",
                "Clairvoyant hit rate minus actual hit rate over the trailing window.",
                &[],
            ),
            window_hit_rate: registry.gauge(
                "webcache_regret_window_hit_rate",
                "Actual hit rate over the trailing regret window.",
                &[],
            ),
            oracle_hit_rate: registry.gauge(
                "webcache_regret_oracle_hit_rate",
                "Clairvoyant hit rate over the trailing regret window.",
                &[],
            ),
        };
        let mut tracker = RegretTracker::new(config);
        tracker.metrics = Some(metrics);
        tracker
    }

    /// Wasted evictions counted so far for `ty`.
    pub fn wasted(&self, ty: DocumentType) -> u64 {
        self.wasted[ty]
    }

    /// Evictions observed so far for `ty`.
    pub fn evictions(&self, ty: DocumentType) -> u64 {
        self.evictions[ty]
    }

    /// The most recent gap-to-clairvoyant value, if one was computed.
    pub fn last_gap(&self) -> Option<f64> {
        self.last_gap
    }

    /// Drops pending victims evicted more than `window` requests ago.
    fn expire_pending(&mut self, now: u64) {
        while let Some(&(at, doc)) = self.order.front() {
            if now.saturating_sub(at) <= self.config.window {
                break;
            }
            self.order.pop_front();
            // Only remove if the map still holds this eviction (the doc
            // may have been re-evicted later with a fresher index).
            if self.pending.get(&doc) == Some(&at) {
                self.pending.remove(&doc);
            }
        }
    }

    /// Replays the trailing window through the clairvoyant oracle and
    /// updates the gap gauge.
    fn recompute_gap(&mut self) {
        if self.recent.is_empty() {
            return;
        }
        let hits = self.recent.iter().filter(|&&(_, _, _, hit)| hit).count();
        let actual = hits as f64 / self.recent.len() as f64;
        let trace: Trace = self
            .recent
            .iter()
            .enumerate()
            .map(|(i, &(doc, ty, size, _))| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    webcache_trace::DocId::new(doc),
                    ty,
                    ByteSize::new(size),
                )
            })
            .collect();
        let config = SimulationConfig::builder()
            .capacity(self.capacity)
            .warmup_fraction(0.0)
            .build();
        let oracle_hr = oracle::clairvoyant_overall(&trace, &config).hit_rate();
        let gap = oracle_hr - actual;
        self.last_gap = Some(gap);
        if let Some(m) = &self.metrics {
            m.gap.set(gap);
            m.window_hit_rate.set(actual);
            m.oracle_hit_rate.set(oracle_hr);
        }
    }
}

impl Observer for RegretTracker {
    fn on_run_start(&mut self, meta: RunMeta) {
        self.capacity = meta.capacity;
        // Cross-pass state (pending victims, trailing window) persists:
        // the serve loop replays the same stream, so regret across a
        // pass boundary is still regret.
    }

    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        self.seen += 1;
        let doc = event.doc.as_u64();
        let hit = matches!(kind, AccessKind::Hit);

        // Wasted-eviction check: was this doc evicted recently?
        self.expire_pending(event.index);
        if let Some(at) = self.pending.remove(&doc) {
            if event.index.saturating_sub(at) <= self.config.window {
                self.wasted[event.doc_type] += 1;
                if let Some(m) = &self.metrics {
                    m.wasted[event.doc_type.index()].inc();
                }
            }
        }

        // Trailing window for the clairvoyant gap.
        if self.config.gap_every > 0 {
            self.recent
                .push_back((doc, event.doc_type, event.size.as_u64(), hit));
            while self.recent.len() > self.config.gap_window {
                self.recent.pop_front();
            }
            if self.seen.is_multiple_of(self.config.gap_every) {
                self.recompute_gap();
            }
        }
    }

    fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
        let doc = evicted.doc.as_u64();
        self.evictions[evicted.doc_type] += 1;
        if let Some(m) = &self.metrics {
            m.evictions[evicted.doc_type.index()].inc();
        }
        self.pending.insert(doc, at.index);
        self.order.push_back((at.index, doc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use webcache_core::PolicyKind;
    use webcache_trace::DocId;

    use crate::Simulator;

    fn req(i: u64, doc: u64, size: u64) -> Request {
        Request::new(
            Timestamp::from_millis(i),
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(size),
        )
    }

    fn run(trace: Trace, capacity: u64, config: RegretConfig) -> RegretTracker {
        let mut tracker = RegretTracker::new(config);
        let sim_config = SimulationConfig::builder()
            .capacity(ByteSize::new(capacity))
            .warmup_fraction(0.0)
            .build();
        Simulator::new(PolicyKind::Lru.build(), sim_config).run_observed(&trace, &mut tracker);
        tracker
    }

    #[test]
    fn quick_reuse_after_eviction_counts_as_wasted() {
        // Capacity one doc: 1, 2 (evicts 1), 1 (wasted!), 2 (wasted!).
        let trace: Trace = vec![req(0, 1, 80), req(1, 2, 80), req(2, 1, 80), req(3, 2, 80)].into();
        let t = run(trace, 100, RegretConfig::default());
        assert_eq!(t.evictions(DocumentType::Html), 3);
        assert_eq!(t.wasted(DocumentType::Html), 2);
    }

    #[test]
    fn reuse_beyond_window_is_not_wasted() {
        let mut reqs = vec![req(0, 1, 80), req(1, 2, 80)]; // evicts doc 1
                                                           // Fill 10 requests of unrelated churn (window = 4).
        for i in 0..10u64 {
            reqs.push(req(2 + i, 100 + i, 80));
        }
        reqs.push(req(100, 1, 80)); // doc 1 returns too late
        let t = run(
            reqs.into(),
            100,
            RegretConfig {
                window: 4,
                gap_window: 64,
                gap_every: 0,
            },
        );
        assert_eq!(t.wasted(DocumentType::Html), 0, "late reuse is not regret");
        assert!(t.last_gap().is_none(), "gap disabled with gap_every = 0");
    }

    #[test]
    fn gap_to_clairvoyant_is_nonnegative_and_bounded() {
        // Cycling 3 docs through a 1-doc cache: LRU hits 0%, the oracle
        // does strictly better, so the gap must be positive.
        let trace: Trace = (0..64u64).map(|i| req(i, i % 3, 80)).collect();
        let t = run(
            trace,
            100,
            RegretConfig {
                window: 16,
                gap_window: 32,
                gap_every: 16,
            },
        );
        let gap = t.last_gap().expect("gap computed");
        assert!(gap > 0.0, "oracle must beat LRU on a cycling trace: {gap}");
        assert!(gap <= 1.0);
    }

    #[test]
    fn registry_export_matches_internal_counters() {
        let registry = Registry::new();
        let mut tracker = RegretTracker::with_registry(
            RegretConfig {
                window: 64,
                gap_window: 32,
                gap_every: 8,
            },
            &registry,
        );
        let trace: Trace = vec![req(0, 1, 80), req(1, 2, 80), req(2, 1, 80), req(3, 2, 80)].into();
        let sim_config = SimulationConfig::builder()
            .capacity(ByteSize::new(100))
            .warmup_fraction(0.0)
            .build();
        Simulator::new(PolicyKind::Lru.build(), sim_config).run_observed(&trace, &mut tracker);
        let text = registry.prometheus_text();
        assert!(
            text.contains("webcache_regret_wasted_evictions_total{doc_type=\"HTML\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("webcache_regret_evictions_total{doc_type=\"HTML\"} 3"),
            "{text}"
        );
    }
}
