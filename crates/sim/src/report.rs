//! Rendering sweep results as tables and CSV — the textual counterpart
//! of the paper's figures.

use serde::{Deserialize, Serialize};

use webcache_stats::Table;
use webcache_trace::{DocumentType, TypeMap};

use crate::experiment::SweepReport;
use crate::metrics::HitStats;
use crate::occupancy::OccupancySeries;
use crate::windowed::{WindowSpec, WindowedMetrics};

/// Which performance measure to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Fraction of requests served from cache.
    HitRate,
    /// Fraction of requested bytes served from cache.
    ByteHitRate,
}

impl Metric {
    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            Metric::HitRate => "Hit Rate",
            Metric::ByteHitRate => "Byte Hit Rate",
        }
    }
}

/// Renders one figure panel: the chosen metric as a function of cache
/// size, one column per policy, optionally restricted to one document
/// type.
///
/// This is the textual form of a single plot of Figure 2/3 (e.g. "Images
/// / Byte Hit Rate").
pub fn figure_panel(sweep: &SweepReport, metric: Metric, ty: Option<DocumentType>) -> Table {
    let policies = sweep.policies();
    let mut headers = vec!["Cache Size".to_owned()];
    headers.extend(policies.iter().map(|p| p.label()));
    let scope = match ty {
        Some(ty) => ty.label().to_owned(),
        None => "Overall".to_owned(),
    };
    let mut table = Table::new(headers).with_title(format!("{scope}: {}", metric.label()));
    for capacity in sweep.capacities() {
        let mut row = vec![capacity.to_string()];
        for &policy in &policies {
            let series = match metric {
                Metric::HitRate => sweep.hit_rate_series(policy, ty),
                Metric::ByteHitRate => sweep.byte_hit_rate_series(policy, ty),
            };
            let value = series
                .iter()
                .find(|&&(c, _)| c == capacity)
                .map(|&(_, v)| v);
            row.push(
                value
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.push_row(row);
    }
    table
}

/// Renders a full figure: panels for every main document type crossed
/// with both metrics, matching the layout of Figures 2 and 3 (hit rate
/// left, byte hit rate right, one row of panels per document type).
pub fn figure(sweep: &SweepReport, title: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"=".repeat(title.len()));
    out.push_str("\n\n");
    for ty in DocumentType::MAIN {
        for metric in [Metric::HitRate, Metric::ByteHitRate] {
            out.push_str(&figure_panel(sweep, metric, Some(ty)).render());
            out.push('\n');
        }
    }
    for metric in [Metric::HitRate, Metric::ByteHitRate] {
        out.push_str(&figure_panel(sweep, metric, None).render());
        out.push('\n');
    }
    out
}

/// Long-format CSV of every sweep cell:
/// `policy,capacity_bytes,doc_type,requests,hits,hit_rate,byte_hit_rate`.
pub fn sweep_csv(sweep: &SweepReport) -> String {
    let mut out =
        String::from("policy,capacity_bytes,doc_type,requests,hits,hit_rate,byte_hit_rate\n");
    for point in sweep.points() {
        let mut emit = |scope: &str, stats: &crate::metrics::HitStats| {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{:.6}\n",
                point.policy.label(),
                point.capacity.as_u64(),
                scope,
                stats.requests,
                stats.hits,
                stats.hit_rate(),
                stats.byte_hit_rate(),
            ));
        };
        for (ty, stats) in point.report.by_type().iter() {
            emit(ty.label(), stats);
        }
        emit("Overall", &point.report.overall());
    }
    out
}

/// CSV of an occupancy series:
/// `request_index,<type>_doc_frac...,<type>_byte_frac...` — the data of
/// Figure 1.
pub fn occupancy_csv(series: &OccupancySeries) -> String {
    let mut out = String::from("request_index");
    for ty in DocumentType::ALL {
        out.push_str(&format!(",{}_doc_frac", ty.label().replace(' ', "_")));
    }
    for ty in DocumentType::ALL {
        out.push_str(&format!(",{}_byte_frac", ty.label().replace(' ', "_")));
    }
    out.push('\n');
    for s in series.samples() {
        out.push_str(&s.request_index.to_string());
        let fracs: TypeMap<f64> = s.document_fraction;
        for ty in DocumentType::ALL {
            out.push_str(&format!(",{:.6}", fracs[ty]));
        }
        for ty in DocumentType::ALL {
            out.push_str(&format!(",{:.6}", s.byte_fraction[ty]));
        }
        out.push('\n');
    }
    out
}

/// Long-format CSV of a windowed time series: one row per window ×
/// (document type + `Overall`). The churn columns describe the whole
/// window and are repeated on every row of it.
pub fn window_csv(metrics: &WindowedMetrics) -> String {
    let mut out = String::from(
        "window,start_index,end_index,doc_type,requests,hits,hit_rate,byte_hit_rate,\
         bytes_requested,bytes_hit,modification_misses,\
         window_evictions,window_bytes_evicted,window_admission_rejects\n",
    );
    for (w, window) in metrics.windows().iter().enumerate() {
        let mut emit = |scope: &str, stats: &HitStats| {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.6},{:.6},{},{},{},{},{},{}\n",
                w,
                window.start_index,
                window.end_index,
                scope,
                stats.requests,
                stats.hits,
                stats.hit_rate(),
                stats.byte_hit_rate(),
                stats.bytes_requested.as_u64(),
                stats.bytes_hit.as_u64(),
                stats.modification_misses,
                window.churn.evictions,
                window.churn.bytes_evicted.as_u64(),
                window.churn.admission_rejects,
            ));
        };
        for (ty, stats) in window.by_type.iter() {
            emit(ty.label(), stats);
        }
        emit("Overall", &window.overall());
    }
    out
}

/// JSON document of a windowed time series (hand-rendered; the workspace
/// is offline and carries no real serde backend).
///
/// Shape: `{ spec, warmup_end, total_requests, capacity_bytes,
/// warmup_churn, windows: [ { start_index, end_index, churn, overall,
/// by_type: { <label>: stats } } ] }`.
pub fn window_json(metrics: &WindowedMetrics) -> String {
    fn stats_json(s: &HitStats) -> String {
        format!(
            "{{\"requests\":{},\"hits\":{},\"hit_rate\":{:.6},\"byte_hit_rate\":{:.6},\
             \"bytes_requested\":{},\"bytes_hit\":{},\"modification_misses\":{}}}",
            s.requests,
            s.hits,
            s.hit_rate(),
            s.byte_hit_rate(),
            s.bytes_requested.as_u64(),
            s.bytes_hit.as_u64(),
            s.modification_misses,
        )
    }
    fn churn_json(c: &crate::windowed::ChurnCounters) -> String {
        format!(
            "{{\"evictions\":{},\"bytes_evicted\":{},\"admission_rejects\":{}}}",
            c.evictions,
            c.bytes_evicted.as_u64(),
            c.admission_rejects,
        )
    }

    let mut out = String::from("{\n");
    let spec = match metrics.spec() {
        WindowSpec::Requests(n) => format!("{{\"kind\":\"requests\",\"size\":{n}}}"),
        WindowSpec::Bytes(b) => format!("{{\"kind\":\"bytes\",\"size\":{}}}", b.as_u64()),
    };
    out.push_str(&format!("  \"spec\": {spec},\n"));
    match metrics.meta() {
        Some(meta) => {
            out.push_str(&format!("  \"warmup_end\": {},\n", meta.warmup_end));
            out.push_str(&format!("  \"total_requests\": {},\n", meta.total_requests));
            out.push_str(&format!(
                "  \"capacity_bytes\": {},\n",
                meta.capacity.as_u64()
            ));
        }
        None => {
            out.push_str("  \"warmup_end\": null,\n");
            out.push_str("  \"total_requests\": null,\n");
            out.push_str("  \"capacity_bytes\": null,\n");
        }
    }
    out.push_str(&format!(
        "  \"warmup_churn\": {},\n",
        churn_json(&metrics.warmup_churn())
    ));
    out.push_str("  \"windows\": [\n");
    let last = metrics.windows().len().saturating_sub(1);
    for (i, w) in metrics.windows().iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"start_index\":{},\"end_index\":{},\"churn\":{},\"overall\":{},\"by_type\":{{",
            w.start_index,
            w.end_index,
            churn_json(&w.churn),
            stats_json(&w.overall()),
        ));
        let mut first = true;
        for (ty, stats) in w.by_type.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", ty.label(), stats_json(stats)));
        }
        out.push_str("}}");
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::CacheSizeSweep;
    use webcache_core::PolicyKind;
    use webcache_trace::{ByteSize, DocId, Request, Timestamp, Trace};

    fn sweep() -> SweepReport {
        let trace: Trace = (0..200u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new(i % 13),
                    DocumentType::Image,
                    ByteSize::new(400),
                )
            })
            .collect();
        CacheSizeSweep::new(
            vec![PolicyKind::Lru, PolicyKind::LfuDa],
            vec![ByteSize::new(1_000), ByteSize::new(8_000)],
        )
        .run_with_threads(&trace, 2)
    }

    #[test]
    fn panel_has_one_row_per_capacity() {
        let s = sweep();
        let t = figure_panel(&s, Metric::HitRate, Some(DocumentType::Image));
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(text.contains("LRU"));
        assert!(text.contains("LFU-DA"));
        assert!(text.contains("Images"));
    }

    #[test]
    fn figure_contains_all_panels() {
        let s = sweep();
        let text = figure(&s, "Figure 2 analogue");
        for label in ["Images", "HTML", "Multi Media", "Application", "Overall"] {
            assert!(text.contains(label), "missing {label}");
        }
        assert!(text.contains("Hit Rate"));
        assert!(text.contains("Byte Hit Rate"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = sweep();
        let csv = sweep_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("policy,capacity_bytes"));
        // 2 policies × 2 capacities × (5 types + overall).
        assert_eq!(lines.len() - 1, 2 * 2 * 6);
        assert!(csv.contains("LFU-DA"));
    }

    #[test]
    fn occupancy_csv_shape() {
        use crate::occupancy::OccupancySample;
        use webcache_core::Cache;
        let mut cache = Cache::new(ByteSize::new(100), PolicyKind::Lru.instantiate());
        cache.insert(DocId::new(1), DocumentType::Html, ByteSize::new(10));
        let mut series = OccupancySeries::new();
        series.push(OccupancySample::capture(5, &cache));
        let csv = occupancy_csv(&series);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0].matches(",").count(),
            10,
            "1 index + 10 fraction columns"
        );
        assert!(lines[1].starts_with('5'));
    }

    #[test]
    fn metric_labels() {
        assert_eq!(Metric::HitRate.label(), "Hit Rate");
        assert_eq!(Metric::ByteHitRate.label(), "Byte Hit Rate");
    }

    fn windowed() -> WindowedMetrics {
        use crate::{SimulationConfig, Simulator};
        let trace: Trace = (0..200u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new(i % 13),
                    DocumentType::Image,
                    ByteSize::new(400),
                )
            })
            .collect();
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(2_000))
            .build();
        let mut metrics = WindowedMetrics::per_requests(60);
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut metrics);
        metrics
    }

    #[test]
    fn window_csv_shape() {
        let metrics = windowed();
        let csv = window_csv(&metrics);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("window,start_index,end_index,doc_type"));
        // 180 measured requests -> 3 windows, 5 types + overall per window.
        assert_eq!(metrics.windows().len(), 3);
        assert_eq!(lines.len() - 1, 3 * 6);
        assert!(csv.contains("Overall"));
        assert!(csv.contains("Images"));
    }

    #[test]
    fn window_json_is_balanced_and_carries_meta() {
        let metrics = windowed();
        let json = window_json(&metrics);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"warmup_end\": 20"));
        assert!(json.contains("\"total_requests\": 200"));
        assert!(json.contains("\"capacity_bytes\": 2000"));
        assert!(json.contains("\"kind\":\"requests\",\"size\":60"));
        assert_eq!(json.matches("\"start_index\"").count(), 3);
        assert!(json.contains("\"Images\""));
    }

    #[test]
    fn empty_window_series_renders_null_meta() {
        let metrics = WindowedMetrics::per_bytes(ByteSize::new(100));
        let json = window_json(&metrics);
        assert!(json.contains("\"warmup_end\": null"));
        assert!(json.contains("\"kind\":\"bytes\",\"size\":100"));
        assert_eq!(window_csv(&metrics).lines().count(), 1, "header only");
    }
}
