//! The trace-driven simulator.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use webcache_core::{AdmissionRule, Cache, ReplacementPolicy};
use webcache_trace::{ByteSize, DenseTrace, DocumentType, Trace, TypeMap};

use crate::metrics::HitStats;
use crate::occupancy::{OccupancySample, OccupancySeries};

/// How the simulator interprets a size change between two successive
/// requests to the same document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ModificationRule {
    /// The paper's rule (Section 4.1): a change **< 5%** is a document
    /// modification (miss, cached copy invalidated); a larger change is an
    /// interrupted transfer (cached copy stays valid).
    #[default]
    SizeDelta,
    /// The rule of Jin & Bestavros [7, 8]: **every** size change is a
    /// modification. Inflates modification rates for large multi-media
    /// and application documents (kept for the ablation experiment).
    AnyChange,
}

impl ModificationRule {
    /// Whether a transfer-size change from `prev` to `cur` bytes counts
    /// as a document modification.
    pub fn is_modification(self, prev: u64, cur: u64) -> bool {
        if prev == cur {
            return false;
        }
        match self {
            ModificationRule::AnyChange => true,
            ModificationRule::SizeDelta => {
                let rel = (cur as f64 - prev as f64).abs() / prev.max(1) as f64;
                rel < 0.05
            }
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Cache capacity in bytes.
    pub capacity: ByteSize,
    /// Fraction of the trace used to warm the cache (not counted).
    /// The paper uses 10%.
    pub warmup_fraction: f64,
    /// Modification-detection rule.
    pub modification_rule: ModificationRule,
    /// Admission rule applied in front of the store (default: admit
    /// everything, as in the paper).
    pub admission_rule: AdmissionRule,
    /// Number of occupancy snapshots to take over the measured part of
    /// the trace (0 disables the Figure 1 series).
    pub occupancy_samples: usize,
}

impl SimulationConfig {
    /// The paper's defaults: 10% warm-up, 5%-delta modification rule, no
    /// occupancy sampling.
    pub fn new(capacity: ByteSize) -> Self {
        SimulationConfig {
            capacity,
            warmup_fraction: 0.10,
            modification_rule: ModificationRule::default(),
            admission_rule: AdmissionRule::default(),
            occupancy_samples: 0,
        }
    }

    /// Overrides the admission rule.
    #[must_use]
    pub fn with_admission_rule(mut self, rule: AdmissionRule) -> Self {
        self.admission_rule = rule;
        self
    }

    /// Enables occupancy sampling with the given number of snapshots.
    #[must_use]
    pub fn with_occupancy_samples(mut self, samples: usize) -> Self {
        self.occupancy_samples = samples;
        self
    }

    /// Overrides the modification rule.
    #[must_use]
    pub fn with_modification_rule(mut self, rule: ModificationRule) -> Self {
        self.modification_rule = rule;
        self
    }

    /// Overrides the warm-up fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction < 1`.
    #[must_use]
    pub fn with_warmup_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "warm-up fraction must be in [0, 1)"
        );
        self.warmup_fraction = fraction;
        self
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Label of the replacement policy (e.g. `"GD*(P)"`).
    pub policy: String,
    /// Configuration the run used.
    pub config: SimulationConfig,
    /// Counters per document type.
    by_type: TypeMap<HitStats>,
    /// Occupancy trajectory (empty unless sampling was enabled).
    pub occupancy: OccupancySeries,
}

impl SimulationReport {
    /// Aggregated counters over all document types.
    pub fn overall(&self) -> HitStats {
        let mut total = HitStats::default();
        for (_, s) in self.by_type.iter() {
            total += *s;
        }
        total
    }

    /// Per-type counters.
    pub fn by_type(&self) -> &TypeMap<HitStats> {
        &self.by_type
    }
}

/// Sentinel in the dense last-transfer table: document never fetched.
const NO_TRANSFER: u64 = u64::MAX;

/// Drives a [`Cache`] over a [`Trace`] and accounts per-type hit rates.
///
/// See the [crate docs](crate) for the methodology. [`Simulator::run`]
/// replays through the hash-free dense path ([`DenseTrace`] +
/// [`Cache::with_dense_slots`]); [`Simulator::run_hashed`] keeps the
/// sparse-id path alive, primarily so tests can check the two agree.
#[derive(Debug)]
pub struct Simulator {
    policy: Box<dyn ReplacementPolicy>,
    config: SimulationConfig,
}

impl Simulator {
    /// Creates a simulator that will drive a fresh cache.
    pub fn new(policy: Box<dyn ReplacementPolicy>, config: SimulationConfig) -> Self {
        Simulator { policy, config }
    }

    /// How many requests to skip for warm-up and how often to sample
    /// occupancy, for a trace of `len` requests.
    fn schedule(&self, len: usize) -> (usize, usize) {
        let warmup_end = ((len as f64) * self.config.warmup_fraction).floor() as usize;
        let measured = len.saturating_sub(warmup_end);
        let sample_every = if self.config.occupancy_samples > 0 && measured > 0 {
            (measured / self.config.occupancy_samples).max(1)
        } else {
            usize::MAX
        };
        (warmup_end, sample_every)
    }

    /// Runs the full trace and produces the report.
    ///
    /// Builds the [`DenseTrace`] view and replays it. Sweeps that run one
    /// trace many times should build the view once and call
    /// [`Simulator::run_dense`] directly.
    pub fn run(self, trace: &Trace) -> SimulationReport {
        let dense = DenseTrace::build(trace);
        self.run_dense(&dense)
    }

    /// Replays a pre-built dense trace view (the sweep hot path).
    ///
    /// Per-document simulator state is vector-indexed by the trace's
    /// dense slots; no hash is computed per request.
    pub fn run_dense(self, trace: &DenseTrace) -> SimulationReport {
        let (warmup_end, sample_every) = self.schedule(trace.len());
        let mut cache = Cache::with_dense_slots(
            self.config.capacity,
            self.policy,
            self.config.admission_rule,
            trace.distinct_documents(),
        );
        let mut last_transfer: Vec<u64> = vec![NO_TRANSFER; trace.distinct_documents()];

        let mut by_type: TypeMap<HitStats> = TypeMap::default();
        let mut occupancy = OccupancySeries::new();

        let slots = trace.docs();
        let sizes = trace.sizes();
        let types = trace.type_indices();
        for index in 0..trace.len() {
            let slot = slots[index];
            let doc = DenseTrace::slot_doc(slot);
            let transfer = sizes[index];
            let size = ByteSize::new(transfer);
            let doc_type = DocumentType::from_index(types[index] as usize);

            let prev = last_transfer[slot as usize];
            last_transfer[slot as usize] = transfer;
            let modified = prev != NO_TRANSFER
                && self
                    .config
                    .modification_rule
                    .is_modification(prev, transfer);

            let hit = if modified {
                // The origin changed the document: any cached copy is
                // stale. Count a miss and fetch the new version.
                cache.invalidate(doc);
                false
            } else {
                cache.access(doc)
            };
            if !hit {
                cache.insert(doc, doc_type, size);
            }

            if index >= warmup_end {
                let stats = &mut by_type[doc_type];
                stats.record(size, hit);
                if modified {
                    stats.modification_misses += 1;
                }
                let measured_index = index - warmup_end;
                if measured_index % sample_every == sample_every - 1 {
                    occupancy.push(OccupancySample::capture(index as u64, &cache));
                }
            }
        }

        SimulationReport {
            policy: cache.policy_label(),
            config: self.config,
            by_type,
            occupancy,
        }
    }

    /// Runs the full trace through the sparse-id hashed cache path.
    ///
    /// Semantically identical to [`Simulator::run`]; kept so the dense
    /// rewrite stays checkable against the straightforward
    /// implementation (see the `dense_matches_hashed` tests).
    pub fn run_hashed(self, trace: &Trace) -> SimulationReport {
        let (warmup_end, sample_every) = self.schedule(trace.len());
        let mut cache = Cache::with_admission(
            self.config.capacity,
            self.policy,
            self.config.admission_rule,
        );
        let mut last_transfer: HashMap<u64, u64> = HashMap::new();

        let mut by_type: TypeMap<HitStats> = TypeMap::default();
        let mut occupancy = OccupancySeries::new();

        for (index, request) in trace.iter().enumerate() {
            let doc = request.doc;
            let transfer = request.size.as_u64();
            let prev = last_transfer.insert(doc.as_u64(), transfer);

            let modified =
                prev.is_some_and(|p| self.config.modification_rule.is_modification(p, transfer));

            let hit = if modified {
                cache.invalidate(doc);
                false
            } else {
                cache.access(doc)
            };
            if !hit {
                cache.insert(doc, request.doc_type, request.size);
            }

            if index >= warmup_end {
                let stats = &mut by_type[request.doc_type];
                stats.record(request.size, hit);
                if modified {
                    stats.modification_misses += 1;
                }
                let measured_index = index - warmup_end;
                if measured_index % sample_every == sample_every - 1 {
                    occupancy.push(OccupancySample::capture(index as u64, &cache));
                }
            }
        }

        SimulationReport {
            policy: cache.policy_label(),
            config: self.config,
            by_type,
            occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_core::PolicyKind;
    use webcache_trace::{DocId, DocumentType, Request, Timestamp};

    fn req(doc: u64, size: u64) -> Request {
        Request::new(
            Timestamp::ZERO,
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(size),
        )
    }

    fn run(trace: Vec<Request>, config: SimulationConfig) -> SimulationReport {
        Simulator::new(PolicyKind::Lru.instantiate(), config).run(&trace.into())
    }

    #[test]
    fn repeated_requests_hit() {
        let trace = vec![req(1, 100), req(1, 100), req(1, 100), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.requests, 4);
        assert_eq!(overall.hits, 3, "first request is a cold miss");
        assert_eq!(overall.byte_hit_rate(), 0.75);
    }

    #[test]
    fn warmup_requests_are_not_counted() {
        let trace = vec![req(1, 100), req(1, 100), req(1, 100), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.5);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.requests, 2);
        assert_eq!(overall.hits, 2, "cache was warmed by the first half");
    }

    #[test]
    fn small_size_change_is_a_modification_miss() {
        // 100 -> 102 bytes: 2% change, under the 5% threshold.
        let trace = vec![req(1, 100), req(1, 102), req(1, 102)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.hits, 1, "only the third request hits");
        assert_eq!(overall.modification_misses, 1);
    }

    #[test]
    fn large_size_change_is_an_interrupted_transfer_hit() {
        // 100 -> 30 bytes: 70% change, an interrupt; cached copy valid.
        let trace = vec![req(1, 100), req(1, 30), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.hits, 2);
        assert_eq!(overall.modification_misses, 0);
    }

    #[test]
    fn any_change_rule_counts_every_change_as_modification() {
        let trace = vec![req(1, 100), req(1, 30), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000))
            .with_warmup_fraction(0.0)
            .with_modification_rule(ModificationRule::AnyChange);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.hits, 0);
        assert_eq!(overall.modification_misses, 2);
    }

    #[test]
    fn per_type_accounting_is_separate() {
        let mut trace = vec![req(1, 100), req(1, 100)];
        trace.push(Request::new(
            Timestamp::ZERO,
            DocId::new(2),
            DocumentType::Image,
            ByteSize::new(50),
        ));
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        assert_eq!(report.by_type()[DocumentType::Html].requests, 2);
        assert_eq!(report.by_type()[DocumentType::Image].requests, 1);
        assert_eq!(report.by_type()[DocumentType::Image].hits, 0);
        assert_eq!(report.overall().requests, 3);
    }

    #[test]
    fn eviction_under_pressure_reduces_hits() {
        // Capacity for one document only; alternating docs never hit.
        let trace = vec![req(1, 80), req(2, 80), req(1, 80), req(2, 80)];
        let config = SimulationConfig::new(ByteSize::new(100)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        assert_eq!(report.overall().hits, 0);
    }

    #[test]
    fn occupancy_sampling_produces_series() {
        let trace: Vec<Request> = (0..100).map(|i| req(i % 10, 100)).collect();
        let config = SimulationConfig::new(ByteSize::new(10_000))
            .with_warmup_fraction(0.0)
            .with_occupancy_samples(10);
        let report = run(trace, config);
        assert_eq!(report.occupancy.len(), 10);
        let last = report.occupancy.samples().last().unwrap();
        assert!((last.document_fraction[DocumentType::Html] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn modification_rule_boundaries() {
        let rule = ModificationRule::SizeDelta;
        assert!(
            !rule.is_modification(100, 100),
            "no change is not a modification"
        );
        assert!(
            rule.is_modification(100, 104),
            "4% change is a modification"
        );
        assert!(
            !rule.is_modification(100, 105),
            "exactly 5% is an interrupt"
        );
        assert!(
            !rule.is_modification(100, 30),
            "large change is an interrupt"
        );
        assert!(ModificationRule::AnyChange.is_modification(100, 101));
        assert!(!ModificationRule::AnyChange.is_modification(100, 100));
    }

    #[test]
    fn oversized_documents_never_hit_but_do_not_crash() {
        let trace = vec![req(1, 5_000), req(1, 5_000)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        assert_eq!(report.overall().hits, 0);
    }

    #[test]
    fn admission_rule_reduces_first_insertions() {
        use webcache_core::AdmissionRule;
        // doc 1 appears three times; with the second-hit filter the first
        // request cannot populate the cache, so only the third hits.
        let trace = vec![req(1, 100), req(1, 100), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000))
            .with_warmup_fraction(0.0)
            .with_admission_rule(AdmissionRule::SecondHit(16));
        let report = run(trace, config);
        assert_eq!(report.overall().hits, 1);

        // The same trace without admission control hits twice.
        let trace = vec![req(1, 100), req(1, 100), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        assert_eq!(run(trace, config).overall().hits, 2);
    }

    #[test]
    fn policy_label_is_propagated() {
        let trace = vec![req(1, 10)];
        let report = Simulator::new(
            PolicyKind::GdStar(webcache_core::CostModel::Packet).instantiate(),
            SimulationConfig::new(ByteSize::new(100)),
        )
        .run(&trace.into());
        assert_eq!(report.policy, "GD*(P)");
    }
}
